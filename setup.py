"""Packaging for the ELSQ reproduction.

The package lives under ``src/`` (the ``repro`` import package) and ships a
``repro`` console script for the experiment CLI (equivalent to
``python -m repro``).  Install with::

    pip install -e .

Fully offline environments (no access to PyPI for build-isolation
requirements, no ``wheel`` package) can still do an editable install with::

    pip install -e . --no-build-isolation

Tool configuration (ruff, pytest) lives in ``pyproject.toml``; the packaging
metadata is declared here so the offline path keeps working with old
setuptools releases that predate PEP 621.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Parse the version out of src/repro/_version.py (the single source)."""
    text = (Path(__file__).parent / "src" / "repro" / "_version.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/_version.py")
    return match.group(1)


setup(
    name="repro-elsq",
    version=read_version(),
    description=(
        "Reproduction of 'A Two-Level Load/Store Queue Based on Execution "
        "Locality' (Pericas et al., ISCA 2008)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro = repro.exp.cli:main",
        ]
    },
)

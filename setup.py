"""Legacy setup shim.

The project is declared in ``pyproject.toml``; this file only exists so that
fully offline environments (no access to PyPI for build-isolation
requirements, no ``wheel`` package) can still do an editable install with::

    pip install -e . --no-build-isolation --no-use-pep517

Regular environments should simply use ``pip install -e .``.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Quickstart: compare the ELSQ-equipped FMC against the OoO-64 baseline.

This is the smallest end-to-end use of the library: build the two machines
the paper compares in Figure 7 and run them over a couple of SPEC-like
synthetic workloads through the experiment runner, which caches every
simulation under ``.repro-cache`` -- run the script twice and the second run
completes without simulating anything.

Run with::

    python examples/quickstart.py

(For the full paper figures use the CLI: ``python -m repro fig7 --jobs 4``.)
"""

from __future__ import annotations

from repro import ExperimentRunner, ResultCache, fmc_hash, ooo_64
from repro.workloads.suite import quick_fp_suite, quick_int_suite

#: Instructions simulated per workload.  Increase for smoother numbers.
INSTRUCTIONS = 12_000

#: Campaign seed: both machines replay the exact same instruction streams.
SEED = 2008


def main() -> None:
    runner = ExperimentRunner(jobs=1, cache=ResultCache(".repro-cache"))
    for label, suite in (("SPEC FP (quick)", quick_fp_suite()), ("SPEC INT (quick)", quick_int_suite())):
        baseline = runner.run_suite(ooo_64(), suite, INSTRUCTIONS, seed=SEED)
        elsq = runner.run_suite(fmc_hash(), suite, INSTRUCTIONS, seed=SEED)

        print(f"== {label} ==")
        print(f"  OoO-64 baseline IPC : {baseline.mean_ipc:.2f}")
        print(f"  FMC + ELSQ IPC      : {elsq.mean_ipc:.2f}")
        print(f"  speed-up            : {elsq.speedup_over(baseline):.2f}x")
        print(
            "  high-locality mode  : {:.0%} of cycles (LL-LSQ idle)".format(
                elsq.mean_high_locality_fraction() or 0.0
            )
        )
        print(
            "  ERT lookups / false positives per 100M instructions: {:,.0f} / {:,.0f}".format(
                elsq.mean_counter_per_100m("ert.lookups"),
                elsq.mean_counter_per_100m("ert.false_positives"),
            )
        )
        print()
    print(
        f"(runner: {runner.executed_jobs} simulations executed, "
        f"{runner.cache_hits} served from .repro-cache)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compare the ELSQ-equipped FMC against the OoO-64 baseline.

This is the smallest end-to-end use of the library: build the two machines
the paper compares in Figure 7, run them over a couple of SPEC-like synthetic
workloads, and print IPC, speed-up and the headline ELSQ statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulator, fmc_hash, ooo_64
from repro.workloads.suite import quick_fp_suite, quick_int_suite

#: Instructions simulated per workload.  Increase for smoother numbers.
INSTRUCTIONS = 12_000


def main() -> None:
    for label, suite in (("SPEC FP (quick)", quick_fp_suite()), ("SPEC INT (quick)", quick_int_suite())):
        # Generate each workload's trace once so both machines replay the
        # exact same instruction stream.
        traces = suite.generate_traces(INSTRUCTIONS, seed=2008)

        baseline = Simulator(ooo_64()).run_suite(suite, traces=traces)
        elsq = Simulator(fmc_hash()).run_suite(suite, traces=traces)

        print(f"== {label} ==")
        print(f"  OoO-64 baseline IPC : {baseline.mean_ipc:.2f}")
        print(f"  FMC + ELSQ IPC      : {elsq.mean_ipc:.2f}")
        print(f"  speed-up            : {elsq.speedup_over(baseline):.2f}x")
        print(
            "  high-locality mode  : {:.0%} of cycles (LL-LSQ idle)".format(
                elsq.mean_high_locality_fraction() or 0.0
            )
        )
        print(
            "  ERT lookups / false positives per 100M instructions: {:,.0f} / {:,.0f}".format(
                elsq.mean_counter_per_100m("ert.lookups"),
                elsq.mean_counter_per_100m("ert.false_positives"),
            )
        )
        print()


if __name__ == "__main__":
    main()

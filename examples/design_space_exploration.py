#!/usr/bin/env python3
"""Design-space exploration of the ELSQ filter and epoch sizing.

A downstream architect adopting the ELSQ has two first-order knobs:

* the **global disambiguation filter** -- line-based ERT (cheap, but coupled
  to the L1 and its line locking) versus hash-based ERT at various index
  widths (decoupled, accuracy costs SRAM), and
* the **per-epoch queue sizing**, which trades area/power against how much of
  the low-locality window each memory engine can buffer.

This example sweeps both on a SPEC-FP-like workload and prints a small
decision table: performance, false-positive traffic and estimated per-access
energy of the filter.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import EnergyModel, Simulator, fmc_elsq, ooo_64
from repro.common.config import ELSQConfig, ERTConfig, ERTKind
from repro.workloads.spec_fp import equake_like, swim_like
from repro.workloads.suite import WorkloadSuite

INSTRUCTIONS = 8_000
SUITE = WorkloadSuite(name="exploration", members=(swim_like(), equake_like()))


def sweep_filters(traces) -> None:
    print("-- ERT filter sweep (FP-like) --")
    print(f"{'filter':<14} {'IPC':>6} {'false pos / 100M':>18} {'nJ / lookup':>12}")
    baseline = Simulator(ooo_64()).run_suite(SUITE, traces=traces)
    configurations = [("line", fmc_elsq(ert_kind=ERTKind.LINE, name="line"))]
    configurations += [
        (f"hash-{bits}b", fmc_elsq(ert_kind=ERTKind.HASH, hash_bits=bits, name=f"hash-{bits}"))
        for bits in (6, 8, 10, 12, 14)
    ]
    for label, machine in configurations:
        result = Simulator(machine).run_suite(SUITE, traces=traces)
        energy = EnergyModel(machine.elsq, machine.hierarchy).per_access_energies_nj()["ert"]
        print(
            f"{label:<14} {result.mean_ipc:>6.2f} "
            f"{result.mean_counter_per_100m('ert.false_positives'):>18,.0f} "
            f"{energy:>12.5f}"
        )
    print(f"(OoO-64 baseline IPC for reference: {baseline.mean_ipc:.2f})\n")


def sweep_epoch_sizes(traces) -> None:
    print("-- per-epoch LSQ sizing sweep (FP-like) --")
    print(f"{'LQ x SQ':<12} {'IPC':>6}")
    for loads, stores in ((16, 8), (32, 16), (64, 32), (128, 64)):
        machine = fmc_elsq(
            epoch_load_entries=loads, epoch_store_entries=stores, name=f"{loads}x{stores}"
        )
        result = Simulator(machine).run_suite(SUITE, traces=traces)
        print(f"{loads:>3} x {stores:<5} {result.mean_ipc:>6.2f}")
    print()


def main() -> None:
    traces = SUITE.generate_traces(INSTRUCTIONS, seed=7)
    sweep_filters(traces)
    sweep_epoch_sizes(traces)
    print("Default ELSQ configuration used by the paper:")
    default = ELSQConfig()
    print(f"  HL-LSQ: {default.hl_load_entries} loads / {default.hl_store_entries} stores")
    print(
        f"  LL-LSQ: {default.num_epochs} epochs x "
        f"({default.epoch_load_entries} loads / {default.epoch_store_entries} stores)"
    )
    print(f"  filter: {ERTConfig().kind.value}-based, {ERTConfig().hash_bits} index bits")


if __name__ == "__main__":
    main()

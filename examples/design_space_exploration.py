#!/usr/bin/env python3
"""Design-space exploration of the ELSQ filter and epoch sizing.

A downstream architect adopting the ELSQ has two first-order knobs:

* the **global disambiguation filter** -- line-based ERT (cheap, but coupled
  to the L1 and its line locking) versus hash-based ERT at various index
  widths (decoupled, accuracy costs SRAM), and
* the **per-epoch queue sizing**, which trades area/power against how much of
  the low-locality window each memory engine can buffer.

This example sweeps both on a SPEC-FP-like workload and prints a small
decision table: performance, false-positive traffic and estimated per-access
energy of the filter.  The sweeps run through the experiment runner, so
re-running the script reuses every completed simulation from the on-disk
cache and ``--jobs N`` fans the sweep out over worker processes.

Run with::

    python examples/design_space_exploration.py [--jobs N]
"""

from __future__ import annotations

import argparse

from repro import EnergyModel, ExperimentRunner, ResultCache, fmc_elsq, ooo_64
from repro.common.config import ELSQConfig, ERTConfig, ERTKind
from repro.workloads.spec_fp import equake_like, swim_like
from repro.workloads.suite import WorkloadSuite

INSTRUCTIONS = 8_000
SEED = 7
SUITE = WorkloadSuite(name="exploration", members=(swim_like(), equake_like()))


def sweep_filters(runner: ExperimentRunner) -> None:
    print("-- ERT filter sweep (FP-like) --")
    print(f"{'filter':<14} {'IPC':>6} {'false pos / 100M':>18} {'nJ / lookup':>12}")
    baseline = runner.run_suite(ooo_64(), SUITE, INSTRUCTIONS, seed=SEED)
    configurations = [("line", fmc_elsq(ert_kind=ERTKind.LINE, name="line"))]
    configurations += [
        (f"hash-{bits}b", fmc_elsq(ert_kind=ERTKind.HASH, hash_bits=bits, name=f"hash-{bits}"))
        for bits in (6, 8, 10, 12, 14)
    ]
    for label, machine in configurations:
        result = runner.run_suite(machine, SUITE, INSTRUCTIONS, seed=SEED)
        energy = EnergyModel(machine.elsq, machine.hierarchy).per_access_energies_nj()["ert"]
        print(
            f"{label:<14} {result.mean_ipc:>6.2f} "
            f"{result.mean_counter_per_100m('ert.false_positives'):>18,.0f} "
            f"{energy:>12.5f}"
        )
    print(f"(OoO-64 baseline IPC for reference: {baseline.mean_ipc:.2f})\n")


def sweep_epoch_sizes(runner: ExperimentRunner) -> None:
    print("-- per-epoch LSQ sizing sweep (FP-like) --")
    print(f"{'LQ x SQ':<12} {'IPC':>6}")
    for loads, stores in ((16, 8), (32, 16), (64, 32), (128, 64)):
        machine = fmc_elsq(
            epoch_load_entries=loads, epoch_store_entries=stores, name=f"{loads}x{stores}"
        )
        result = runner.run_suite(machine, SUITE, INSTRUCTIONS, seed=SEED)
        print(f"{loads:>3} x {stores:<5} {result.mean_ipc:>6.2f}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default: 1)")
    args = parser.parse_args()
    runner = ExperimentRunner(jobs=args.jobs, cache=ResultCache(".repro-cache"))
    sweep_filters(runner)
    sweep_epoch_sizes(runner)
    print("Default ELSQ configuration used by the paper:")
    default = ELSQConfig()
    print(f"  HL-LSQ: {default.hl_load_entries} loads / {default.hl_store_entries} stores")
    print(
        f"  LL-LSQ: {default.num_epochs} epochs x "
        f"({default.epoch_load_entries} loads / {default.epoch_store_entries} stores)"
    )
    print(f"  filter: {ERTConfig().kind.value}-based, {ERTConfig().hash_bits} index bits")
    print(
        f"\n(runner: {runner.executed_jobs} simulations executed, "
        f"{runner.cache_hits} served from cache)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Model a custom memory-bound application and pick an LSQ organisation.

The paper's motivation is the sequential, memory-bound portion of parallel
applications: code that streams and chases pointers through data sets much
larger than the last-level cache.  This example shows how to describe such an
application with :class:`~repro.workloads.base.WorkloadParameters` directly
(rather than using the bundled SPEC-like presets), and then compares three
ways of handling its memory instructions on the large-window machine:

* the idealised central LSQ (the upper bound a monolithic queue could reach),
* the ELSQ with full disambiguation (the paper's proposal), and
* the ELSQ with restricted store address calculation (the paper's
  recommendation for a cheaper load-queue-free design),
* plus SVW load re-execution, the main alternative from prior work.

The comparison runs through the experiment runner: the custom workload is
wrapped in a one-member suite, every simulation is cached under
``.repro-cache``, and a second invocation replays entirely from the cache.

Run with::

    python examples/memory_bound_application.py
"""

from __future__ import annotations

from repro import (
    ExperimentRunner,
    ResultCache,
    fmc_central,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    ooo_64,
)
from repro.workloads.base import MemoryRegion, WorkloadParameters
from repro.workloads.suite import WorkloadSuite, generate_member_trace

KB = 1024
MB = 1024 * 1024

#: A graph-analytics-like kernel: a huge edge array is streamed, vertex data
#: is visited through loaded indices (pointer chasing), and a small frontier
#: structure stays hot.  Roughly 40% of instructions touch memory.
GRAPH_ANALYTICS = WorkloadParameters(
    name="graph_analytics",
    load_fraction=0.33,
    store_fraction=0.09,
    branch_fraction=0.14,
    fp_fraction=0.10,
    regions=(
        MemoryRegion(name="edges", size_bytes=20 * MB, weight=0.03, pattern="stream", is_far=True),
        MemoryRegion(name="vertices", size_bytes=6 * MB, weight=0.02, pattern="random", is_far=True),
        MemoryRegion(name="frontier", size_bytes=96 * KB, weight=0.55, pattern="stream"),
        MemoryRegion(name="locals", size_bytes=512 * KB, weight=0.40, pattern="random"),
    ),
    chased_load_fraction=0.15,
    chased_store_fraction=0.01,
    forwarding_fraction=0.10,
    branch_mispredict_rate=0.03,
    mispredict_depends_on_miss_fraction=0.25,
    phase_length=1500,
    memory_phase_fraction=0.5,
    seed=4242,
)

INSTRUCTIONS = 12_000
SEED = 1

#: The one-member suite the runner sweeps the machines over.
SUITE = WorkloadSuite(name="memory_bound", members=(GRAPH_ANALYTICS,))


def main() -> None:
    # The trace itself is only generated here to describe the workload; the
    # runner's workers regenerate the identical stream on demand.
    trace = generate_member_trace(GRAPH_ANALYTICS, INSTRUCTIONS, seed=SEED)
    print(f"workload: {trace.name}, {len(trace)} instructions")
    stats = trace.statistics()
    print(
        f"  {stats.load_fraction:.0%} loads, {stats.store_fraction:.0%} stores, "
        f"{stats.branch_fraction:.0%} branches, "
        f"{stats.unique_lines_touched} distinct cache lines touched\n"
    )

    runner = ExperimentRunner(jobs=1, cache=ResultCache(".repro-cache"))

    def run(machine):
        suite_result = runner.run_suite(machine, SUITE, INSTRUCTIONS, seed=SEED)
        return suite_result.results[GRAPH_ANALYTICS.name]

    baseline = run(ooo_64())
    print(f"{'configuration':<26} {'IPC':>6} {'speed-up':>9} {'round trips/100M':>17} {'re-exec/100M':>13}")
    print(f"{'OoO-64 (baseline)':<26} {baseline.ipc:>6.2f} {1.0:>8.2f}x {0:>17,} {0:>13,}")

    for machine in (fmc_central(), fmc_hash(), fmc_hash_rsac(), fmc_hash_svw(10)):
        result = run(machine)
        print(
            f"{machine.name:<26} {result.ipc:>6.2f} {result.ipc / baseline.ipc:>8.2f}x "
            f"{result.per_100m('network.round_trips'):>17,.0f} "
            f"{result.per_100m('svw.reexecutions'):>13,.0f}"
        )

    elsq = run(fmc_hash())
    print(
        "\nELSQ detail: {:.0%} of cycles in high-locality mode, "
        "{:.1f} epochs allocated on average while the Memory Processor is busy".format(
            elsq.high_locality_fraction or 0.0, elsq.mean_allocated_epochs or 0.0
        )
    )
    print(
        f"(runner: {runner.executed_jobs} simulations executed, "
        f"{runner.cache_hits} served from cache)"
    )


if __name__ == "__main__":
    main()

"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, ERTConfig, ERTKind, SVWConfig
from repro.common.stats import Histogram, StatsRegistry
from repro.core.bloom import AddressHash, CountingBloomFilter
from repro.core.ert import HashBasedERT
from repro.core.queues import StoreBuffer
from repro.core.records import Locality, StoreRecord
from repro.core.svw import StoreVulnerabilityWindow
from repro.isa.instruction import load, store
from repro.memory.cache import SetAssociativeCache
from repro.memory.replacement import LruState
from repro.uarch.resources import BandwidthAllocator, OccupancyWindow

addresses = st.integers(min_value=0, max_value=1 << 30).map(lambda value: value & ~0x7)


@given(st.lists(addresses, min_size=1, max_size=200), st.integers(min_value=1, max_value=16))
def test_bloom_filter_never_false_negative(address_list, bits):
    bloom = CountingBloomFilter(bits)
    for address in address_list:
        bloom.insert(address)
    assert all(bloom.may_contain(address) for address in address_list)


@given(st.lists(addresses, min_size=1, max_size=100), st.integers(min_value=1, max_value=16))
def test_bloom_filter_insert_remove_returns_to_empty(address_list, bits):
    bloom = CountingBloomFilter(bits)
    for address in address_list:
        bloom.insert(address)
    for address in address_list:
        bloom.remove(address)
    assert bloom.population == 0


@given(addresses, addresses)
def test_address_hash_equal_addresses_always_collide(a, b):
    hashed = AddressHash(10)
    if a == b:
        assert hashed.collides(a, b)
    if not hashed.collides(a, b):
        assert a != b


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100))
def test_lru_victim_is_always_unlocked_or_none(touch_sequence):
    lru = LruState(4)
    for way in touch_sequence:
        lru.touch(way)
    lru.lock(0)
    victim = lru.victim()
    assert victim is None or not lru.is_locked(victim)


@given(st.lists(addresses, min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_cache_hit_after_access_unless_evicted(address_list):
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=4 * 1024, associativity=4, line_size=32, latency=1, name="t")
    )
    for address in address_list:
        cache.access(address)
    # The most recently accessed address is always resident.
    assert cache.is_resident(address_list[-1])


@given(st.lists(addresses, min_size=1, max_size=200), st.integers(min_value=4, max_value=12))
@settings(max_examples=30, deadline=None)
def test_ert_candidates_only_ever_contain_live_epochs(address_list, bits):
    ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=bits), StatsRegistry())
    for index, address in enumerate(address_list):
        ert.insert_store(address, epoch_id=index % 8)
    live = {0, 1, 2}
    for address in address_list:
        candidates = ert.store_candidate_epochs(address, live_epochs=live)
        assert set(candidates) <= live
        assert candidates == sorted(candidates, reverse=True)


@given(
    st.lists(
        st.tuples(addresses, st.integers(min_value=1, max_value=500)),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=30, deadline=None)
def test_store_buffer_forwarding_store_is_older_matching_and_known(pairs):
    buffer = StoreBuffer()
    for seq, (address, commit_offset) in enumerate(pairs):
        buffer.add(
            StoreRecord(
                seq=seq,
                address=address,
                size=8,
                decode_cycle=seq,
                addr_ready_cycle=seq + 2,
                data_ready_cycle=seq + 3,
                commit_cycle=seq + 2 + commit_offset,
                locality=Locality.HIGH,
            )
        )
    probe_seq = len(pairs)
    probe_cycle = len(pairs) + 10
    for address, _ in pairs:
        result = buffer.find_any_forwarding(address, 8, before_seq=probe_seq, cycle=probe_cycle)
        if result.hit:
            found = result.store
            assert found.seq < probe_seq
            assert found.overlaps(address, 8)
            assert found.address_known_at(probe_cycle)
            assert found.in_flight_at(probe_cycle)


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=8))
def test_bandwidth_allocator_never_exceeds_width(cycles, width):
    allocator = BandwidthAllocator(width)
    allocations = [allocator.allocate(cycle) for cycle in sorted(cycles)]
    for desired, got in zip(sorted(cycles), allocations):
        assert got >= desired
    per_cycle = {}
    for cycle in allocations:
        per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
    assert max(per_cycle.values()) <= width


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_occupancy_window_constraint_is_monotonic_under_sorted_pushes(releases, capacity):
    window = OccupancyWindow(capacity)
    previous_constraint = 0
    for release in sorted(releases):
        constraint = window.constraint()
        assert constraint >= previous_constraint
        previous_constraint = constraint
        window.push(release)


@given(st.lists(st.floats(min_value=0, max_value=10_000, allow_nan=False), min_size=1, max_size=300))
def test_histogram_mass_is_conserved(values):
    histogram = Histogram("h", bin_width=30, num_bins=40)
    for value in values:
        histogram.record(value)
    assert sum(histogram.bins) + histogram.overflow == len(values)
    assert histogram.count == len(values)


@given(
    st.lists(st.tuples(addresses, st.integers(min_value=1, max_value=1000)), min_size=1, max_size=150),
    st.integers(min_value=2, max_value=14),
)
@settings(max_examples=30, deadline=None)
def test_svw_never_misses_a_truly_vulnerable_load(commits, bits):
    """A load whose address was overwritten by a store committing inside its
    vulnerability window must always re-execute (the SSBF has no false
    negatives)."""
    svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=bits), StatsRegistry())
    issue_cycle = 0
    for seq, (address, commit) in enumerate(sorted(commits, key=lambda pair: pair[1])):
        svw.store_committed(
            StoreRecord(
                seq=seq,
                address=address,
                size=8,
                decode_cycle=0,
                addr_ready_cycle=1,
                data_ready_cycle=1,
                commit_cycle=commit,
                locality=Locality.HIGH,
            )
        )
    target_address, target_commit = max(commits, key=lambda pair: pair[1])
    if target_commit > issue_cycle:
        from repro.core.records import LoadRecord

        decision = svw.check_load(
            LoadRecord(
                seq=len(commits) + 1,
                address=target_address,
                size=8,
                decode_cycle=0,
                issue_cycle=issue_cycle,
                locality=Locality.HIGH,
            )
        )
        assert decision.reexecute


# ----------------------------------------------------------------------
# Workload / trace / simulation metamorphic properties
# ----------------------------------------------------------------------

import pytest  # noqa: E402

from repro.common.config import CoreConfig  # noqa: E402
from repro.sim.configs import fmc_elsq, fmc_hash, ooo_64  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.trace.format import trace_from_bytes, trace_to_bytes  # noqa: E402
from repro.workloads.base import MemoryRegion, WorkloadParameters  # noqa: E402
from repro.workloads.families import long_phases, stream_copy  # noqa: E402
from repro.workloads.suite import generate_member_trace  # noqa: E402


def _property_workload() -> WorkloadParameters:
    """A small mixed workload for simulation-level properties (fast traces)."""
    return WorkloadParameters(
        name="property_workload",
        load_fraction=0.3,
        store_fraction=0.12,
        branch_fraction=0.14,
        regions=(
            MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.7, pattern="stream"),
            MemoryRegion(
                name="far", size_bytes=8 * 1024 * 1024, weight=0.05, pattern="random", is_far=True
            ),
            MemoryRegion(name="warm", size_bytes=256 * 1024, weight=0.25, pattern="random"),
        ),
        chased_load_fraction=0.1,
        branch_mispredict_rate=0.03,
        mispredict_depends_on_miss_fraction=0.3,
    )


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=10, deadline=None)
def test_trace_generation_is_deterministic_per_seed(seed):
    """The same (parameters, length, seed) always yields the same stream."""
    params = _property_workload()
    first = generate_member_trace(params, 400, seed=seed)
    second = generate_member_trace(params, 400, seed=seed)
    assert list(first) == list(second)
    assert first.regions == second.regions
    assert first.name == second.name


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=5, deadline=None)
def test_ipc_never_exceeds_commit_width(seed):
    """No machine can sustain more commits per cycle than its commit width."""
    trace = generate_member_trace(_property_workload(), 600, seed=seed)
    conventional = ooo_64()
    fmc = fmc_hash()
    assert Simulator(conventional).run_trace(trace).ipc <= conventional.core.commit_width
    assert Simulator(fmc).run_trace(trace).ipc <= fmc.fmc.cache_processor.commit_width
    # The bound is structural: it holds for the defaults, so it must also be
    # the configured width, not a hard-coded constant.
    assert conventional.core.commit_width == CoreConfig().commit_width


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=5, deadline=None)
def test_trace_save_load_simulate_equals_generate_simulate(seed):
    """Binary round trip is invisible to the simulator: identical CoreResult."""
    trace = generate_member_trace(_property_workload(), 600, seed=seed)
    restored = trace_from_bytes(trace_to_bytes(trace)).trace
    simulator = Simulator(fmc_hash())
    assert simulator.run_trace(restored) == simulator.run_trace(trace)


@pytest.mark.parametrize("factory", (stream_copy, long_phases), ids=lambda f: f.__name__)
def test_epoch_count_monotonicity_of_migration_stalls(factory):
    """Adding memory engines can only relieve epoch-pool pressure.

    Migration stall cycles (waiting for a free engine) must be non-increasing
    and IPC non-decreasing as the epoch count grows, on the families that
    actually saturate the pool (streaming and phased).
    """
    trace = generate_member_trace(factory(), 6_000, seed=2008)
    previous_stalls = None
    previous_ipc = None
    for epochs in (2, 4, 8, 16):
        machine = fmc_elsq(num_epochs=epochs, name=f"FMC-Hash-{epochs}E")
        result = Simulator(machine).run_trace(trace)
        stalls = result.counter("fmc.migration_stall_cycles")
        if previous_stalls is not None:
            assert stalls <= previous_stalls
            assert result.ipc >= previous_ipc
        previous_stalls = stalls
        previous_ipc = result.ipc
    # With the full 16-engine pool these workloads never wait for an epoch.
    assert previous_stalls == 0


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_trace_round_trip_property(data):
    instructions = []
    for seq in range(data.draw(st.integers(min_value=1, max_value=40))):
        if data.draw(st.booleans()):
            instructions.append(load(seq, dest=8, address=data.draw(addresses)))
        else:
            instructions.append(store(seq, address=data.draw(addresses), srcs=(1,)))
    from repro.isa.trace import Trace

    trace = Trace(instructions, name="prop")
    stats = trace.statistics()
    assert stats.num_loads + stats.num_stores == len(instructions)

"""Unit tests for the load harness (repro.load) and cross-shard merging.

The harness's measurement math runs with no server and no processes: the
request loop takes its clock and issue function as parameters, the epoch
accounting is pure, and the shard-merge functions are I/O-free by design.
The one end-to-end piece -- two in-process shard services proxying and
aggregating over real HTTP -- lives at the bottom.
"""

from __future__ import annotations

import asyncio
import statistics
import threading

import pytest

from repro.common.errors import ConfigurationError, LoadDriverError
from repro.load.bench import LoadBenchConfig, evaluate_loadbench_gate, _free_port_block
from repro.load.driver import DriverConfig, collect_fleet_samples, run_request_loop
from repro.load.epoch import EpochSeries, Sample, quantile
from repro.load.workload import Req, Workload
from repro.service.shards import (
    merge_metrics_documents,
    merge_snapshots,
    merge_stats_documents,
    render_metrics_text,
    shard_port,
    shard_ports,
)

# ----------------------------------------------------------------------
# Percentile math
# ----------------------------------------------------------------------


def test_quantile_matches_statistics_inclusive() -> None:
    """The harness quantile is the stdlib's inclusive estimator exactly."""
    import random

    rng = random.Random(7)
    for size in (2, 5, 21, 100, 137):
        values = [rng.expovariate(1.0) for _ in range(size)]
        cuts = statistics.quantiles(values, n=100, method="inclusive")
        for q in (0.50, 0.95, 0.99):
            assert quantile(values, q) == pytest.approx(cuts[int(q * 100) - 1])


def test_quantile_edge_cases() -> None:
    assert quantile([], 0.5) == 0.0
    assert quantile([3.25], 0.99) == 3.25
    assert quantile([1.0, 2.0], 0.5) == 1.5
    assert quantile([1.0, 2.0, 3.0], 0.0) == 1.0
    assert quantile([1.0, 2.0, 3.0], 1.0) == 3.0


# ----------------------------------------------------------------------
# Epoch accounting
# ----------------------------------------------------------------------


def _sample(start: float, kind: str = "submit", tenant=None, latency: float = 0.1, ok=True):
    return Sample(kind=kind, tenant=tenant, start=start, latency=latency, ok=ok)


def test_epoch_series_buckets_and_discards_warmup() -> None:
    series = EpochSeries(epoch_seconds=1.0, epochs=3, warmup_epochs=1)
    # Two warmup samples, four measured, one straggler past the window.
    series.extend(
        [
            _sample(0.1),
            _sample(0.9, kind="health"),
            _sample(1.1),
            _sample(1.9),
            _sample(2.0),
            _sample(2.5, ok=False),
            _sample(3.2),  # straggler: dropped, not folded into epoch 2
        ]
    )
    assert series.dropped_samples == 1
    document = series.document()
    assert [entry["warmup"] for entry in document["per_epoch"]] == [True, False, False]
    assert [entry["requests"] for entry in document["per_epoch"]] == [2, 2, 2]
    measured = document["measured"]
    # The measured window covers epochs 1-2 only: 4 samples over 2 seconds.
    assert measured["requests"] == 4
    assert measured["duration_seconds"] == 2.0
    assert measured["throughput_rps"] == pytest.approx(2.0)
    assert measured["errors"] == 1
    # Warmup traffic (the health sample) never leaks into the aggregate.
    assert set(measured["endpoints"]) == {"submit"}
    assert measured["endpoints"]["submit"]["requests"] == 4
    assert measured["endpoints"]["submit"]["errors"] == 1


def test_epoch_series_tenant_shares_count_ok_submits_only() -> None:
    series = EpochSeries(epoch_seconds=1.0, epochs=2, warmup_epochs=0)
    series.extend(
        [
            _sample(0.1, tenant="alpha"),
            _sample(0.2, tenant="alpha"),
            _sample(0.3, tenant="beta"),
            _sample(0.4, tenant="beta", ok=False),  # errors earn no share
            _sample(0.5, kind="stats", tenant="beta"),  # reads earn no share
            _sample(0.6),  # tenant None books under "default"
        ]
    )
    tenants = series.document()["measured"]["tenants"]
    assert tenants["alpha"] == {"completed": 2, "share": 0.5}
    assert tenants["beta"] == {"completed": 1, "share": 0.25}
    assert tenants["default"] == {"completed": 1, "share": 0.25}


def test_epoch_series_validates_configuration() -> None:
    with pytest.raises(ConfigurationError):
        EpochSeries(epoch_seconds=0.0, epochs=2)
    with pytest.raises(ConfigurationError):
        EpochSeries(epoch_seconds=1.0, epochs=0)
    with pytest.raises(ConfigurationError):
        EpochSeries(epoch_seconds=1.0, epochs=2, warmup_epochs=2)


# ----------------------------------------------------------------------
# Arrival disciplines (fake clock, no server)
# ----------------------------------------------------------------------


class _FakeClock:
    """A virtual clock: ``sleep`` advances it, ``issue`` charges service time."""

    def __init__(self, service_seconds: float) -> None:
        self.now = 0.0
        self.service_seconds = service_seconds

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds

    def issue(self, request: Req) -> bool:
        self.now += self.service_seconds
        return True


def _next_request(index: int) -> Req:
    return Req(index=index, kind="submit", tenant=None, seed=1, instructions=10)


def test_open_loop_holds_the_arrival_schedule() -> None:
    """Open loop issues on the k/rate grid even when service is slow.

    Service takes 0.3s against a 1s inter-arrival gap: arrivals still land
    at 0,1,2,3,4 -- a saturated server must show up as latency, never as a
    silently reduced offered load.
    """
    clock = _FakeClock(service_seconds=0.3)
    samples = run_request_loop(
        "open", 5.0, _next_request, clock.issue, rate=1.0,
        clock=clock.clock, sleep=clock.sleep,
    )
    assert [s.start for s in samples] == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])


def test_open_loop_issues_overdue_arrivals_back_to_back() -> None:
    """When service time exceeds the gap, overdue arrivals issue immediately
    (the schedule is fixed; the client catches up as fast as it can)."""
    clock = _FakeClock(service_seconds=2.0)
    samples = run_request_loop(
        "open", 6.0, _next_request, clock.issue, rate=1.0,
        clock=clock.clock, sleep=clock.sleep,
    )
    # Arrivals 0..5 all issue (scheduled inside the window), at 2s spacing.
    assert [s.start for s in samples] == pytest.approx([0.0, 2.0, 4.0, 6.0, 8.0, 10.0])
    assert len(samples) == 6


def test_closed_loop_adapts_to_service_time() -> None:
    clock = _FakeClock(service_seconds=0.3)
    samples = run_request_loop(
        "closed", 1.0, _next_request, clock.issue,
        clock=clock.clock, sleep=clock.sleep,
    )
    assert [s.start for s in samples] == pytest.approx([0.0, 0.3, 0.6, 0.9])
    assert all(s.latency == pytest.approx(0.3) for s in samples)


def test_driver_config_validation() -> None:
    with pytest.raises(ConfigurationError):
        DriverConfig(urls=())
    with pytest.raises(ConfigurationError):
        DriverConfig(urls=("http://x",), mode="burst")
    with pytest.raises(ConfigurationError):
        DriverConfig(urls=("http://x",), mode="open", rate=0.0)


class _FakeReportQueue:
    """Duck-typed report queue: scripted ``get`` outcomes, then Empty."""

    def __init__(self, outcomes) -> None:
        self._outcomes = list(outcomes)

    def get(self, timeout=None):
        import queue as queue_module

        if not self._outcomes:
            raise queue_module.Empty
        outcome = self._outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def empty(self) -> bool:
        return not self._outcomes


class _FakeProcess:
    def __init__(self, name: str, alive: bool = True, exitcode=None) -> None:
        self.name = name
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self) -> bool:
        return self._alive


def test_collect_fleet_samples_gathers_every_report() -> None:
    sample = Sample(kind="submit", tenant="t", start=0.0, latency=0.1, ok=True)
    report_queue = _FakeReportQueue([(0, [sample]), (1, [sample, sample])])
    processes = [_FakeProcess("c0"), _FakeProcess("c1")]
    collected = collect_fleet_samples(report_queue, processes, 2, deadline=10.0, clock=lambda: 0.0)
    assert len(collected) == 3


def test_collect_fleet_samples_propagates_real_queue_errors() -> None:
    """Only queue.Empty means "keep waiting"; a broken queue is a failure.

    Regression: the driver used to catch bare ``Exception`` around the
    queue get, so an OSError from a torn-down multiprocessing queue was
    silently treated as "no report yet" until the deadline.
    """
    report_queue = _FakeReportQueue([OSError("handle is closed")])
    processes = [_FakeProcess("c0")]
    with pytest.raises(OSError):
        collect_fleet_samples(report_queue, processes, 1, deadline=10.0, clock=lambda: 0.0)


def test_collect_fleet_samples_raises_for_dead_unreported_client() -> None:
    """A client that crashed without reporting fails the stage loudly.

    Regression: a crashed worker used to mean silently waiting out the
    full deadline and then undercounting the offered load.
    """
    report_queue = _FakeReportQueue([])
    processes = [
        _FakeProcess("repro-load-client-0", alive=False, exitcode=1),
        _FakeProcess("repro-load-client-1", alive=True),
    ]
    with pytest.raises(LoadDriverError, match="repro-load-client-0"):
        collect_fleet_samples(report_queue, processes, 2, deadline=10.0, clock=lambda: 0.0)


def test_collect_fleet_samples_stops_when_fleet_exits_cleanly() -> None:
    """All clients gone with exit 0 ends the wait instead of spinning."""
    sample = Sample(kind="submit", tenant="t", start=0.0, latency=0.1, ok=True)
    report_queue = _FakeReportQueue([(0, [sample])])
    processes = [
        _FakeProcess("c0", alive=False, exitcode=0),
        _FakeProcess("c1", alive=False, exitcode=0),
    ]
    collected = collect_fleet_samples(report_queue, processes, 2, deadline=10.0, clock=lambda: 0.0)
    assert len(collected) == 1


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------


def test_reqgen_is_deterministic_and_seed_distinct() -> None:
    workload = Workload(tenants=(("alpha", 2.0), ("beta", 1.0)))
    first = [workload.engine(3).request(i) for i in range(50)]
    second = [workload.engine(3).request(i) for i in range(50)]
    assert first == second
    # Distinct (client, index) pairs must yield distinct simulation seeds,
    # or the server coalesces the whole fleet into one job.
    other_client = [workload.engine(4).request(i) for i in range(50)]
    seeds = {r.seed for r in first} | {r.seed for r in other_client}
    assert len(seeds) == 100
    assert all(r.kind in ("submit", "health", "stats") for r in first)
    assert all(r.tenant in ("alpha", "beta") for r in first)


def test_workload_validation() -> None:
    with pytest.raises(ConfigurationError):
        Workload(mix=())
    with pytest.raises(ConfigurationError):
        Workload(mix=(("fetch", 1.0),))
    with pytest.raises(ConfigurationError):
        Workload(mix=(("submit", 0.0),))
    with pytest.raises(ConfigurationError):
        Workload(tenants=(("alpha", -1.0),))
    with pytest.raises(ConfigurationError):
        Workload(instructions=0)


# ----------------------------------------------------------------------
# Cross-shard merge semantics
# ----------------------------------------------------------------------


def test_merge_snapshots_is_count_weighted() -> None:
    merged = merge_snapshots(
        [
            {"count": 3, "mean": 1.0, "p50": 1.0, "p95": 2.0, "p99": 2.0, "max": 2.0},
            {"count": 1, "mean": 5.0, "p50": 5.0, "p95": 5.0, "p99": 5.0, "max": 6.0},
        ]
    )
    assert merged["count"] == 4
    assert merged["mean"] == pytest.approx(2.0)  # (3*1 + 1*5) / 4: exact
    assert merged["p50"] == pytest.approx(2.0)  # count-weighted approximation
    assert merged["max"] == 6.0
    empty = merge_snapshots([{"count": 0}, {}])
    assert empty == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


def _stats_document(shard: int, submitted: int, dispatched: dict) -> dict:
    return {
        "schema_version": 2,
        "uptime_seconds": 10.0 * (shard + 1),
        "shard": {"index": shard, "count": 2},
        "queue": {"depth": shard, "limit": 8, "running": 1, "workers": 2},
        "totals": {
            "submitted": submitted,
            "coalesced": 0,
            "completed": submitted,
            "failed": 0,
            "rejections": {"overloaded": shard, "tenant_quota_exceeded": 0},
        },
        "default_tenant": "default",
        "tenants": {
            name: {
                "jobs": {"admitted": count, "dispatched": count},
                "sims": {"executed": count, "cache_hits": 0},
                "queue_wait_seconds": {"count": count, "mean": 0.1, "p50": 0.1,
                                       "p95": 0.1, "p99": 0.1, "max": 0.1},
                "service_seconds": {"count": count, "mean": 0.2, "p50": 0.2,
                                    "p95": 0.2, "p99": 0.2, "max": 0.2},
                "weight": 2.0 if name == "alpha" else 1.0,
                "max_queued": None,
                "max_inflight": None,
                "auth_required": False,
                "queued": 0,
                "queued_by_lane": {"interactive": 0, "batch": 0},
                "inflight": 0,
                "work_share": 1.0,  # deliberately wrong locally; merge recomputes
            }
            for name, count in dispatched.items()
        },
    }


def test_merge_stats_documents_sums_and_recomputes_shares() -> None:
    merged = merge_stats_documents(
        [
            _stats_document(0, submitted=6, dispatched={"alpha": 4, "beta": 2}),
            _stats_document(1, submitted=4, dispatched={"alpha": 2, "beta": 2}),
        ],
        expected=2,
    )
    assert merged["totals"]["submitted"] == 10
    assert merged["totals"]["rejections"]["overloaded"] == 1
    assert merged["uptime_seconds"] == 20.0  # the oldest shard, not a sum
    assert merged["queue"]["workers"] == 4
    # Work shares are exact: recomputed over the summed dispatch counts.
    assert merged["tenants"]["alpha"]["work_share"] == pytest.approx(0.6)
    assert merged["tenants"]["beta"]["work_share"] == pytest.approx(0.4)
    assert merged["tenants"]["alpha"]["jobs"]["dispatched"] == 6
    assert merged["tenants"]["alpha"]["queue_wait_seconds"]["count"] == 6
    shards = merged["shards"]
    assert shards["count"] == 2 and shards["responding"] == 2
    assert [entry["shard"] for entry in shards["per_shard"]] == [0, 1]
    assert [entry["submitted"] for entry in shards["per_shard"]] == [6, 4]


def test_merge_stats_documents_reports_partial_merges() -> None:
    merged = merge_stats_documents(
        [_stats_document(0, submitted=6, dispatched={"alpha": 4})], expected=2
    )
    assert merged["shards"] == {
        "count": 2,
        "responding": 1,
        "per_shard": merged["shards"]["per_shard"],
    }
    with pytest.raises(ConfigurationError):
        merge_stats_documents([], expected=2)


def test_merge_metrics_documents_by_type_and_labels() -> None:
    def doc(uptime, submitted, latency_count):
        return {
            "metrics": [
                {
                    "name": "repro_uptime_seconds",
                    "type": "gauge",
                    "help": "up",
                    "samples": [{"labels": {}, "value": uptime}],
                },
                {
                    "name": "repro_jobs_submitted",
                    "type": "counter",
                    "help": "j",
                    "samples": [
                        {"labels": {"tenant": "alpha"}, "value": submitted},
                        {"labels": {"tenant": "beta"}, "value": 1.0},
                    ],
                },
                {
                    "name": "repro_service_seconds",
                    "type": "summary",
                    "help": "s",
                    "samples": [
                        {"labels": {}, "count": latency_count, "mean": 0.5,
                         "p50": 0.5, "p95": 0.5, "p99": 0.5, "max": 1.0}
                    ],
                },
            ]
        }

    merged = merge_metrics_documents([doc(12.0, 3.0, 4), doc(7.0, 2.0, 6)])
    families = {family["name"]: family for family in merged["metrics"]}
    # Uptime merges by max (a property of the group, not a sum).
    assert families["repro_uptime_seconds"]["samples"][0]["value"] == 12.0
    # Counters sum per label set.
    by_labels = {
        tuple(sorted(sample["labels"].items())): sample["value"]
        for sample in families["repro_jobs_submitted"]["samples"]
    }
    assert by_labels[(("tenant", "alpha"),)] == 5.0
    assert by_labels[(("tenant", "beta"),)] == 2.0
    # Summaries merge count-weighted.
    summary = families["repro_service_seconds"]["samples"][0]
    assert summary["count"] == 10 and summary["max"] == 1.0
    # The merged document renders to valid-looking Prometheus text.
    text = render_metrics_text(merged)
    assert "# TYPE repro_jobs_submitted counter" in text
    assert 'repro_jobs_submitted{tenant="alpha"} 5' in text
    assert 'repro_service_seconds{quantile="0.5"} 0.5' in text
    assert "repro_service_seconds_count 10" in text
    assert "repro_service_seconds_sum 5" in text


def test_shard_port_layout() -> None:
    assert shard_port(8080, 0) == 8081
    assert shard_ports(8080, 3) == [8081, 8082, 8083]


# ----------------------------------------------------------------------
# Loadbench config and gate
# ----------------------------------------------------------------------


def test_loadbench_config_validation_and_workload() -> None:
    with pytest.raises(ConfigurationError):
        LoadBenchConfig(clients=())
    with pytest.raises(ConfigurationError):
        LoadBenchConfig(shards=0)
    with pytest.raises(ConfigurationError):
        LoadBenchConfig(tenant_mix=(("alpha", 2.0),))  # a mix of one is no mix
    config = LoadBenchConfig(tenant_mix=(("alpha", 3.0), ("beta", 1.0)))
    assert config.expected_shares() == {"alpha": 0.75, "beta": 0.25}
    # The driver offers EQUAL per-tenant traffic; the weighted shares must
    # come from the server's scheduler, or the check proves nothing.
    assert config.workload().tenants == (("alpha", 1.0), ("beta", 1.0))
    assert config.stage_duration() == pytest.approx(config.epochs * config.epoch_seconds)


def _gate_artifact(throughput: float, p99_ms: float, share_error=None) -> dict:
    stage = {
        "clients": 2,
        "series": {
            "measured": {
                "throughput_rps": throughput,
                "endpoints": {
                    "submit": {"requests": 10, "errors": 0, "p99_ms": p99_ms}
                },
            }
        },
    }
    if share_error is not None:
        stage["tenant_shares"] = {"expected": {}, "observed": {},
                                  "max_abs_error": share_error}
    return {"stages": [stage]}


def test_gate_thresholds() -> None:
    ok, lines = evaluate_loadbench_gate(
        _gate_artifact(5.0, 400.0, share_error=0.05),
        min_throughput=1.0, max_p99_ms=1000.0, share_tolerance=0.1,
    )
    assert ok and len(lines) == 3
    ok, _ = evaluate_loadbench_gate(_gate_artifact(0.5, 400.0), min_throughput=1.0)
    assert not ok
    ok, _ = evaluate_loadbench_gate(_gate_artifact(5.0, 2000.0), max_p99_ms=1000.0)
    assert not ok
    # A share tolerance against a run without a tenant mix must fail loudly,
    # not silently pass a check that never ran.
    ok, lines = evaluate_loadbench_gate(_gate_artifact(5.0, 400.0), share_tolerance=0.1)
    assert not ok and "no tenant mix" in lines[-1]
    ok, lines = evaluate_loadbench_gate({"stages": []})
    assert not ok
    # Zero thresholds disable every check.
    ok, lines = evaluate_loadbench_gate(_gate_artifact(0.0, 1e9))
    assert ok and lines == []


def test_gate_fails_on_stage_without_submits() -> None:
    artifact = _gate_artifact(5.0, 400.0)
    artifact["stages"][0]["series"]["measured"]["endpoints"] = {}
    ok, lines = evaluate_loadbench_gate(artifact, max_p99_ms=1000.0)
    assert not ok and "no submit requests" in lines[0].replace("\n", " ")


# ----------------------------------------------------------------------
# Two in-process shards over real HTTP: proxying and aggregation
# ----------------------------------------------------------------------


@pytest.fixture()
def shard_pair(tmp_path):
    """Two ReproService shards of one group, each on its own loop thread."""
    from repro.service.client import ServiceClient
    from repro.service.server import ReproService, ServiceConfig

    base = _free_port_block(3)
    services, loops, threads = [], [], []
    try:
        for index in range(2):
            config = ServiceConfig(
                host="127.0.0.1",
                port=base,
                cache_dir=str(tmp_path / "cache"),  # shared, like real shards
                workers=1,
                sim_jobs=1,
                queue_limit=8,
                history_limit=64,
                shard_index=index,
                shard_count=2,
            )
            loop = asyncio.new_event_loop()
            thread = threading.Thread(target=loop.run_forever, daemon=True)
            thread.start()
            service = ReproService(config)
            asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=10)
            services.append(service)
            loops.append(loop)
            threads.append(thread)
        clients = [
            ServiceClient(f"http://127.0.0.1:{shard_port(base, index)}", timeout=30.0)
            for index in range(2)
        ]
        yield services, clients
    finally:
        for service, loop, thread in zip(services, loops, threads):
            asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.close()


def test_sharded_service_proxies_and_aggregates(shard_pair) -> None:
    from _helpers import TEST_INSTRUCTIONS, TEST_SEED

    from repro.exp.runner import SimJob
    from repro.sim.configs import fmc_hash
    from repro.workloads.suite import quick_fp_suite

    services, clients = shard_pair
    job = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    receipt = clients[0].submit(cases=[job])
    assert receipt.job_id.startswith("job-s0-")
    completed = clients[0].wait(
        receipt.job_id, timeout=120.0, request_key=receipt.request_key
    )
    assert completed["status"] == "completed"
    # Shard 1 does not own the job but proxies the poll to shard 0.
    proxied = clients[1].status(receipt.job_id)
    assert proxied["status"] == "completed"
    assert proxied["job_id"] == receipt.job_id
    # A result lookup on the non-owning shard fans out to its peers.
    assert clients[1].result(receipt.request_key) == completed["result"]
    # Either shard serves the merged stats document for the whole group.
    stats = clients[1].stats()
    assert stats["shards"]["count"] == 2
    assert stats["shards"]["responding"] == 2
    assert stats["totals"]["submitted"] == 1
    assert stats["totals"]["completed"] == 1
    # The merged metrics text carries group-wide counters.
    merged_metrics = clients[1].metrics()
    families = {family["name"] for family in merged_metrics["metrics"]}
    assert "repro_uptime_seconds" in families

"""The miss-ratio-curve profiler and its Belady OPT lower bound."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.memory.mrc import (
    DEFAULT_SIZES_BYTES,
    check_opt_lower_bound,
    line_stream,
    miss_ratio_curve,
    next_use_positions,
    policy_sweep,
    profile_trace,
    simulate_miss_ratio,
)
from repro.memory.replacement import POLICY_NAMES
from repro.sim.experiments import campaign_context, experiment_by_name
from repro.workloads.families import FAMILY_NAMES, family_suite
from repro.workloads.suite import generate_member_trace

INSTRUCTIONS = 1_500
SEED = 2008

#: A smaller sweep keeps the full-matrix tests quick.
SIZES = (1024, 2048, 4096)


def _family_streams():
    streams = []
    for family in FAMILY_NAMES:
        member = family_suite(family).members[0]
        trace = generate_member_trace(member, INSTRUCTIONS, seed=SEED)
        streams.append((family, line_stream(trace)))
    return streams


def test_line_stream_extracts_loads_and_stores() -> None:
    member = family_suite("streaming").members[0]
    trace = generate_member_trace(member, INSTRUCTIONS, seed=SEED)
    lines = line_stream(trace)
    assert lines, "a streaming workload must issue memory operations"
    memory_ops = sum(
        1 for instruction in trace if instruction.is_load or instruction.is_store
    )
    assert len(lines) == memory_ops


def test_next_use_positions() -> None:
    lines = [10, 20, 10, 30, 20]
    assert next_use_positions(lines) == [2, 4, float("inf"), float("inf"), float("inf")]
    assert next_use_positions([]) == []


@pytest.mark.parametrize(
    "family,lines", _family_streams(), ids=[family for family, _ in _family_streams()]
)
def test_opt_is_a_lower_bound_for_every_policy(family, lines) -> None:
    """Belady with the true future beats every online policy, per size."""
    curves = {
        policy: miss_ratio_curve(lines, policy, SIZES) for policy in POLICY_NAMES
    }
    for size_index in range(len(SIZES)):
        opt = curves["opt"][size_index]
        for policy in POLICY_NAMES:
            assert opt <= curves[policy][size_index] + 1e-12, (
                f"{family}: OPT above {policy} at {SIZES[size_index]}B"
            )


@pytest.mark.parametrize(
    "family,lines", _family_streams(), ids=[family for family, _ in _family_streams()]
)
@pytest.mark.parametrize("policy", ("lru", "opt"))
def test_stack_policy_curves_are_non_increasing(family, lines, policy) -> None:
    """More capacity never hurts LRU or OPT on the family traces."""
    curve = miss_ratio_curve(lines, policy, DEFAULT_SIZES_BYTES)
    for smaller, larger in zip(curve, curve[1:]):
        assert larger <= smaller + 1e-12


def test_simulate_miss_ratio_degenerate_cases() -> None:
    assert simulate_miss_ratio([], "lru", 1024) == 0.0
    # A single line always misses once, then hits.
    assert simulate_miss_ratio([5] * 10, "lru", 1024) == pytest.approx(0.1)
    with pytest.raises(ConfigurationError):
        miss_ratio_curve([1, 2, 3], "lru", ())


def test_check_opt_lower_bound_flags_violations() -> None:
    from repro.common.errors import SimulationError

    good = {"trace": "t", "miss_ratios": {"opt": [0.1], "lru": [0.2]}}
    check_opt_lower_bound(good)
    bad = {"trace": "t", "miss_ratios": {"opt": [0.3], "lru": [0.2]}}
    with pytest.raises(SimulationError):
        check_opt_lower_bound(bad)


def test_policy_sweep_artifact_schema() -> None:
    """One MRC per family per policy, with the documented schema."""
    context = campaign_context(instructions=800)
    artifact = policy_sweep(context)
    assert artifact["artifact"] == "repro-mrc"
    assert artifact["policies"] == list(POLICY_NAMES)
    assert set(artifact["families"]) == set(FAMILY_NAMES)
    for family_block in artifact["families"].values():
        assert set(family_block["curves"]) == set(POLICY_NAMES)
        for curve in family_block["curves"].values():
            assert len(curve) == len(artifact["sizes_bytes"])
            assert all(0.0 <= ratio <= 1.0 for ratio in curve)
        for member in family_block["members"].values():
            assert member["accesses"] > 0
            assert set(member["miss_ratios"]) == set(POLICY_NAMES)


def test_policy_sweep_is_a_registered_experiment() -> None:
    spec = experiment_by_name("policy-sweep")
    assert spec.suites == FAMILY_NAMES
    context = campaign_context(instructions=500)
    artifact = spec.run(context)
    assert set(artifact["families"]) == set(FAMILY_NAMES)


def test_profile_trace_names_the_trace() -> None:
    member = family_suite("phased").members[0]
    trace = generate_member_trace(member, 500, seed=SEED)
    document = profile_trace(trace, policies=("lru",), sizes_bytes=(1024,))
    assert document["trace"] == trace.name
    assert document["unique_lines"] <= document["accesses"]

"""Shared plain-Python test helpers (importable, unlike conftest fixtures).

Lives in its own uniquely named module because ``from conftest import ...``
is ambiguous when the repo has more than one conftest (``benchmarks/``
defines its own): pytest imports conftests by basename, so whichever loads
first wins.  Everything here is deduplicated setup that used to be
copy-pasted across ``test_sim.py``, ``test_exp.py``, ``test_cli.py`` and
``test_service.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"

#: Short traces keep orchestration/service tests fast; determinism does not
#: depend on the length.
TEST_INSTRUCTIONS = 1_000
TEST_SEED = 7


def subprocess_env() -> dict:
    """Environment for child Pythons: the src tree on PYTHONPATH."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, cwd):
    """Run ``python -m repro <args>`` in ``cwd`` and capture its output."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=subprocess_env(),
        capture_output=True,
        text=True,
    )


def one_member_suite():
    """A single-member suite (swim_like) for minimal orchestration tests."""
    from repro.workloads.suite import quick_fp_suite

    return quick_fp_suite().subset(["swim_like"], suite_name="one")

"""Tests for the fixed parallel dispatch of :class:`ExperimentRunner`.

The historical failure mode (BENCH_pr1: parallel fig7 at 0.83x of serial)
had three causes: a fresh pool per batch, one pickled task per job, and
oversubscription on small hosts.  These tests pin the fixes:

* worker count is capped at the available CPUs, and a single effective
  worker runs inline (no pool at all),
* parallel execution returns bit-identical results to serial execution,
* the pool is reused across batches and torn down by ``close()``, and
* on a synthetic slow job (sleep-based, so concurrency is real even on a
  single-CPU host) the pool actually delivers wall-clock speedup.
"""

from __future__ import annotations

import multiprocessing
import sys
import time

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED

import repro.exp.runner as runner_module
from repro.exp.runner import ExperimentRunner, SimJob
from repro.sim.configs import fmc_hash, ooo_64
from repro.uarch.result import CoreResult
from repro.workloads.suite import quick_int_suite

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="monkeypatched workers need the fork start method"
)


def _jobs(count: int = 4):
    suite = quick_int_suite()
    machines = (ooo_64(), fmc_hash())
    members = list(suite)
    return [
        SimJob(machines[i % 2], members[i % len(members)], TEST_INSTRUCTIONS, TEST_SEED + i)
        for i in range(count)
    ]


def test_effective_workers_capped_at_available_cpus(monkeypatch):
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    assert ExperimentRunner(jobs=8).effective_workers() == 2
    assert ExperimentRunner(jobs=1).effective_workers() == 1


def test_single_effective_worker_runs_inline(monkeypatch):
    """With one usable CPU no pool is ever created -- no fork overhead."""
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 1)
    with ExperimentRunner(jobs=8) as runner:
        results = runner.run_batch(_jobs(3))
        assert len(results) == 3
        assert runner._pool is None


@needs_fork
def test_parallel_results_bit_identical_to_serial(monkeypatch):
    jobs = _jobs(4)
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    with ExperimentRunner(jobs=2, start_method="fork") as parallel_runner:
        parallel = parallel_runner.run_batch(jobs)
        assert parallel_runner._pool is not None
    assert serial.keys() == parallel.keys()
    for key, result in serial.items():
        assert parallel[key] == result


@needs_fork
def test_pool_is_reused_across_batches_and_closed(monkeypatch):
    """One pool serves batches of different sizes -- including batches
    smaller than the worker cap, which must not trigger a re-fork."""
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 3)
    runner = ExperimentRunner(jobs=3, start_method="fork")
    try:
        runner.run_batch(_jobs(4))
        first_pool = runner._pool
        assert first_pool is not None
        # A batch smaller than the worker cap reuses the same (full) pool.
        runner.run_batch(_jobs(6)[4:])
        assert runner._pool is first_pool
    finally:
        runner.close()
    assert runner._pool is None
    # close() is idempotent.
    runner.close()


def _sleeping_run_job(job: SimJob) -> CoreResult:
    time.sleep(0.25)
    from repro.common.stats import StatsRegistry

    return CoreResult(
        trace_name=job.workload.name,
        config_name=job.machine.name,
        cycles=1,
        committed_instructions=0,
        stats=StatsRegistry().snapshot(),
    )


@needs_fork
@pytest.mark.skipif(sys.platform == "win32", reason="fork-only test")
def test_synthetic_slow_job_sees_parallel_speedup(monkeypatch):
    """Sleep-based jobs overlap even on one CPU: the pool must deliver > 1x.

    A forked worker inherits the monkeypatched ``run_job``, so each job
    sleeps 0.25s wherever it executes.  Four jobs serial therefore take
    >= 1s; across 4 workers they must take well under that -- this is the
    regression test for the dispatch overhead that used to make parallel
    runs slower than serial ones.
    """
    monkeypatch.setattr(runner_module, "run_job", _sleeping_run_job)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 4)
    jobs = _jobs(4)

    started = time.perf_counter()
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    serial_seconds = time.perf_counter() - started

    with ExperimentRunner(jobs=4, start_method="fork") as runner:
        started = time.perf_counter()
        parallel = runner.run_batch(jobs)
        parallel_seconds = time.perf_counter() - started

    assert serial.keys() == parallel.keys()
    assert serial_seconds >= 1.0
    assert parallel_seconds < serial_seconds
    speedup = serial_seconds / parallel_seconds
    assert speedup > 1.5, f"pool dispatch overhead ate the speedup ({speedup:.2f}x)"


@needs_fork
def test_chunked_dispatch_groups_jobs_by_workload(monkeypatch):
    """The batch is sorted by workload before chunking (trace reuse per worker)."""
    captured = {}

    class _FakePool:
        def map(self, func, iterable, chunksize=None):
            captured["order"] = list(iterable)
            captured["chunksize"] = chunksize
            return [func(job) for job in iterable]

    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    runner = ExperimentRunner(jobs=2)
    monkeypatch.setattr(runner, "_ensure_pool", lambda workers: _FakePool())
    jobs = _jobs(6)
    runner.run_batch(jobs)
    names = [job.workload.name for job in captured["order"]]
    assert names == sorted(names)
    assert captured["chunksize"] == 3

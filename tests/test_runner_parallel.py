"""Tests for the fixed parallel dispatch of :class:`ExperimentRunner`.

The historical failure mode (BENCH_pr1: parallel fig7 at 0.83x of serial)
had three causes: a fresh pool per batch, one pickled task per job, and
oversubscription on small hosts.  These tests pin the fixes:

* worker count is capped at the available CPUs, and a single effective
  worker runs inline (no pool at all),
* parallel execution returns bit-identical results to serial execution,
* the pool is reused across batches and torn down by ``close()``, and
* on a synthetic slow job (sleep-based, so concurrency is real even on a
  single-CPU host) the pool actually delivers wall-clock speedup.
"""

from __future__ import annotations

import multiprocessing
import sys
import time

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED

import repro.exp.runner as runner_module
from repro.exp.runner import ExperimentRunner, SimJob
from repro.sim.configs import fmc_hash, ooo_64
from repro.uarch.result import CoreResult
from repro.workloads.suite import quick_int_suite

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="monkeypatched workers need the fork start method"
)


def _jobs(count: int = 4):
    suite = quick_int_suite()
    machines = (ooo_64(), fmc_hash())
    members = list(suite)
    return [
        SimJob(machines[i % 2], members[i % len(members)], TEST_INSTRUCTIONS, TEST_SEED + i)
        for i in range(count)
    ]


def test_effective_workers_capped_at_available_cpus(monkeypatch):
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    assert ExperimentRunner(jobs=8).effective_workers() == 2
    assert ExperimentRunner(jobs=1).effective_workers() == 1


def test_single_effective_worker_runs_inline(monkeypatch):
    """With one usable CPU no pool is ever created -- no fork overhead."""
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 1)
    with ExperimentRunner(jobs=8) as runner:
        results = runner.run_batch(_jobs(3))
        assert len(results) == 3
        assert runner._pool is None


@needs_fork
def test_parallel_results_bit_identical_to_serial(monkeypatch):
    jobs = _jobs(4)
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    with ExperimentRunner(jobs=2, start_method="fork") as parallel_runner:
        parallel = parallel_runner.run_batch(jobs)
        assert parallel_runner._pool is not None
    assert serial.keys() == parallel.keys()
    for key, result in serial.items():
        assert parallel[key] == result


@needs_fork
def test_pool_is_reused_across_batches_and_closed(monkeypatch):
    """One pool serves batches of different sizes -- including batches
    smaller than the worker cap, which must not trigger a re-fork."""
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 3)
    runner = ExperimentRunner(jobs=3, start_method="fork")
    try:
        runner.run_batch(_jobs(4))
        first_pool = runner._pool
        assert first_pool is not None
        # A batch smaller than the worker cap reuses the same (full) pool.
        runner.run_batch(_jobs(6)[4:])
        assert runner._pool is first_pool
    finally:
        runner.close()
    assert runner._pool is None
    # close() is idempotent.
    runner.close()


def _sleeping_run_job(job: SimJob) -> CoreResult:
    time.sleep(0.25)
    from repro.common.stats import StatsRegistry

    return CoreResult(
        trace_name=job.workload.name,
        config_name=job.machine.name,
        cycles=1,
        committed_instructions=0,
        stats=StatsRegistry().snapshot(),
    )


@needs_fork
@pytest.mark.skipif(sys.platform == "win32", reason="fork-only test")
def test_synthetic_slow_job_sees_parallel_speedup(monkeypatch):
    """Sleep-based jobs overlap even on one CPU: the pool must deliver > 1x.

    A forked worker inherits the monkeypatched ``run_job``, so each job
    sleeps 0.25s wherever it executes.  Four jobs serial therefore take
    >= 1s; across 4 workers they must take well under that -- this is the
    regression test for the dispatch overhead that used to make parallel
    runs slower than serial ones.
    """
    monkeypatch.setattr(runner_module, "run_job", _sleeping_run_job)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 4)
    jobs = _jobs(4)

    started = time.perf_counter()
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    serial_seconds = time.perf_counter() - started

    with ExperimentRunner(jobs=4, start_method="fork") as runner:
        started = time.perf_counter()
        parallel = runner.run_batch(jobs)
        parallel_seconds = time.perf_counter() - started

    assert serial.keys() == parallel.keys()
    assert serial_seconds >= 1.0
    assert parallel_seconds < serial_seconds
    speedup = serial_seconds / parallel_seconds
    assert speedup > 1.5, f"pool dispatch overhead ate the speedup ({speedup:.2f}x)"


@needs_fork
def test_shared_memory_handoff_matches_serial(monkeypatch):
    """Traces shipped to workers as shared-memory columnar bytes simulate
    bit-identically to inline (regenerate-in-process) execution."""
    jobs = _jobs(4)
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    monkeypatch.delenv(runner_module.SHM_ENV, raising=False)
    with ExperimentRunner(jobs=2, start_method="fork") as runner:
        parallel = runner.run_batch(jobs)
    assert serial.keys() == parallel.keys()
    for key, result in serial.items():
        assert parallel[key] == result


@needs_fork
def test_pickled_bytes_fallback_matches_serial(monkeypatch):
    """REPRO_SHM=0 ships container bytes through the task pickle instead of
    shared memory; results stay bit-identical."""
    jobs = _jobs(4)
    serial = ExperimentRunner(jobs=1).run_batch(jobs)
    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    monkeypatch.setenv(runner_module.SHM_ENV, "0")
    assert not runner_module._shm_enabled()
    with ExperimentRunner(jobs=2, start_method="fork") as runner:
        parallel = runner.run_batch(jobs)
    for key, result in serial.items():
        assert parallel[key] == result


def test_shipped_payload_preempts_worker_generation(monkeypatch):
    """A worker receiving a trace payload must not regenerate the stream."""
    captured = {}

    def _forbid_generation(*_args, **_kwargs):
        raise AssertionError("worker regenerated a shipped trace")

    class _FakePool:
        def map(self, func, iterable, chunksize=None):
            captured["tasks"] = list(iterable)
            # Payloads are fully built by now: from here on, any generation
            # call means the handoff was dropped on the floor.
            monkeypatch.setattr(runner_module, "generate_member_trace", _forbid_generation)
            results = []
            for task in iterable:
                runner_module.clear_trace_memo()  # simulate a cold worker
                results.append(func(task))
            return results

    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    runner = ExperimentRunner(jobs=2)
    monkeypatch.setattr(runner, "_ensure_pool", lambda workers: _FakePool())
    jobs = _jobs(4)
    expected = ExperimentRunner(jobs=1).run_batch(jobs)
    results = runner.run_batch(jobs)
    assert {task.payload[0] for task in captured["tasks"]} <= {"shm", "bytes"}
    for key, result in expected.items():
        assert results[key] == result
    runner_module.clear_trace_memo()


def test_failed_shm_attach_closes_the_segment(monkeypatch):
    """A segment that attaches but does not parse must be unmapped, not
    leaked: nothing else ever learns about it in a long-lived worker."""
    from multiprocessing import shared_memory

    from repro.common.errors import TraceError

    created = {}
    real_cls = shared_memory.SharedMemory

    class _Tracking(real_cls):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created["segment"] = self

    garbage = real_cls(create=True, size=32)  # not a trace container
    try:
        monkeypatch.setattr(shared_memory, "SharedMemory", _Tracking)
        ledger_before = len(runner_module._ATTACHED_SEGMENTS)
        with pytest.raises(TraceError):
            runner_module._attach_shipped_trace(("shm", garbage.name))
        attached = created["segment"]
        # Either the mapping closed outright, or (when the in-flight
        # traceback still pinned buffer views) it was parked on the sweep
        # ledger with a dead ref; the next sweep must then reclaim it.
        runner_module._sweep_attached_segments()
        assert attached._mmap is None  # unmapped either way
        assert len(runner_module._ATTACHED_SEGMENTS) <= ledger_before
        assert all(seg is not attached for _ref, seg in runner_module._ATTACHED_SEGMENTS)
    finally:
        monkeypatch.undo()
        # _attach_shipped_trace unregistered the name from the resource
        # tracker (the parent normally owns cleanup); re-register so this
        # test's own unlink() keeps the tracker's books balanced.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(garbage._name, "shared_memory")
        except Exception:
            pass
        garbage.close()
        garbage.unlink()


@needs_fork
def test_chunked_dispatch_groups_jobs_by_workload(monkeypatch):
    """The batch is sorted by workload before chunking (trace reuse per worker)."""
    captured = {}

    class _FakePool:
        def map(self, func, iterable, chunksize=None):
            captured["order"] = list(iterable)
            captured["chunksize"] = chunksize
            return [func(job) for job in iterable]

    monkeypatch.setattr(runner_module, "available_cpus", lambda: 2)
    runner = ExperimentRunner(jobs=2)
    monkeypatch.setattr(runner, "_ensure_pool", lambda workers: _FakePool())
    jobs = _jobs(6)
    runner.run_batch(jobs)
    names = [job.workload.name for job in captured["order"]]
    assert names == sorted(names)
    assert captured["chunksize"] == 3

"""Tests for the machine configurations, simulator driver and suite results."""

from __future__ import annotations

import pytest

from repro.common.config import DisambiguationModel, ERTKind, LoadQueueScheme
from repro.common.errors import ConfigurationError, SimulationError
from repro.core.conventional import ConventionalLSQ, IdealCentralLSQ
from repro.core.elsq import EpochBasedLSQ
from repro.fmc.processor import FMCProcessor
from repro.sim.configs import (
    PAPER_CONFIGS,
    MachineKind,
    fmc_central,
    fmc_elsq,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    fmc_line,
    machine_by_name,
    ooo_64,
    ooo_64_svw,
)
from repro.sim.simulator import Simulator, SuiteResult
from repro.uarch.ooo_core import OutOfOrderCore
from repro.workloads.spec_fp import swim_like
from repro.workloads.suite import quick_fp_suite, quick_int_suite


class TestMachineConfigs:
    def test_paper_registry_names(self):
        assert set(PAPER_CONFIGS) == {
            "OoO-64",
            "OoO-64-SVW",
            "FMC-Central",
            "FMC-Line",
            "FMC-Hash",
            "FMC-Hash-SVW",
            "FMC-Hash-RSAC",
        }

    def test_machine_by_name(self):
        assert machine_by_name("OoO-64").kind is MachineKind.CONVENTIONAL
        with pytest.raises(ConfigurationError):
            machine_by_name("not-a-machine")

    def test_ooo_builds_conventional_core(self):
        core = ooo_64().build()
        assert isinstance(core, OutOfOrderCore)
        assert isinstance(core.policy, ConventionalLSQ)

    def test_ooo_svw_policy(self):
        core = ooo_64_svw(8, check_stores=True).build()
        assert isinstance(core.policy, ConventionalLSQ)
        assert core.policy.load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION

    def test_fmc_central_hosts_ideal_lsq(self):
        processor = fmc_central().build()
        assert isinstance(processor, FMCProcessor)
        assert isinstance(processor.policy, IdealCentralLSQ)

    def test_fmc_hash_hosts_elsq(self):
        processor = fmc_hash().build()
        assert isinstance(processor.policy, EpochBasedLSQ)
        assert processor.policy.config.ert.kind is ERTKind.HASH

    def test_fmc_line_uses_line_ert(self):
        assert fmc_line().elsq.ert.kind is ERTKind.LINE

    def test_fmc_hash_rsac_model(self):
        assert fmc_hash_rsac().elsq.disambiguation is DisambiguationModel.RESTRICTED_SAC

    def test_fmc_hash_svw_scheme(self):
        config = fmc_hash_svw(8)
        assert config.elsq.load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION
        assert config.elsq.svw.ssbf_index_bits == 8

    def test_fmc_elsq_epoch_sizing_override(self):
        config = fmc_elsq(epoch_load_entries=16, epoch_store_entries=8)
        assert config.elsq.epoch_load_entries == 16
        assert config.elsq.epoch_store_entries == 8

    def test_naming_defaults(self):
        assert fmc_hash(store_queue_mirror=False).name == "FMC-Hash-noSQM"
        assert fmc_line().name == "FMC-Line"

    def test_with_hierarchy_derivation(self):
        from repro.common.config import MemoryHierarchyConfig

        derived = fmc_hash().with_hierarchy(
            MemoryHierarchyConfig().with_l2_size(1024 * 1024), name="FMC-1MB"
        )
        assert derived.name == "FMC-1MB"
        assert derived.hierarchy.l2.size_bytes == 1024 * 1024

    def test_invalid_kind_lsq_combination_rejected(self):
        from repro.sim.configs import LSQKind, MachineConfig

        bad = MachineConfig(name="bad", kind=MachineKind.CONVENTIONAL, lsq=LSQKind.ELSQ)
        with pytest.raises(ConfigurationError):
            bad.build()


class TestSimulator:
    def test_run_trace(self, small_trace):
        result = Simulator(ooo_64()).run_trace(small_trace)
        assert result.committed_instructions == len(small_trace)

    def test_run_workload(self):
        result = Simulator(ooo_64()).run_workload(swim_like(), num_instructions=1200, seed=2)
        assert result.committed_instructions == 1200

    def test_run_suite_aggregates(self):
        suite = quick_fp_suite()
        result = Simulator(ooo_64()).run_suite(suite, num_instructions=1200, seed=2)
        assert isinstance(result, SuiteResult)
        assert result.workload_names() == suite.member_names()
        assert result.mean_ipc > 0

    def test_run_suite_with_shared_traces(self):
        suite = quick_int_suite()
        traces = suite.generate_traces(1000, seed=3)
        a = Simulator(ooo_64()).run_suite(suite, traces=traces)
        b = Simulator(ooo_64()).run_suite(suite, traces=traces)
        assert a.mean_ipc == pytest.approx(b.mean_ipc)

    def test_speedup_over(self):
        suite = quick_fp_suite()
        traces = suite.generate_traces(1500, seed=4)
        baseline = Simulator(ooo_64()).run_suite(suite, traces=traces)
        fmc = Simulator(fmc_hash()).run_suite(suite, traces=traces)
        assert fmc.speedup_over(baseline) > 1.0

    def test_mean_counter_per_100m(self):
        suite = quick_fp_suite()
        result = Simulator(ooo_64()).run_suite(suite, num_instructions=1200, seed=2)
        assert result.mean_counter_per_100m("hl_sq.searches") > 0
        assert result.mean_counter_per_100m_millions("hl_sq.searches") == pytest.approx(
            result.mean_counter_per_100m("hl_sq.searches") / 1e6
        )

    def test_high_locality_fraction_only_for_fmc(self):
        suite = quick_fp_suite()
        traces = suite.generate_traces(1200, seed=2)
        conventional = Simulator(ooo_64()).run_suite(suite, traces=traces)
        fmc = Simulator(fmc_hash()).run_suite(suite, traces=traces)
        assert conventional.mean_high_locality_fraction() is None
        assert fmc.mean_high_locality_fraction() is not None
        assert conventional.mean_allocated_epochs() is None
        assert fmc.mean_allocated_epochs() is not None

    def test_empty_suite_result_rejected(self):
        with pytest.raises(SimulationError):
            SuiteResult(machine_name="x", suite_name="y", results={})

"""Tests for counters, histograms and the statistics registry."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.stats import Counter, Histogram, RatePer100M, StatsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add_accumulates(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_bins_by_width(self):
        histogram = Histogram("h", bin_width=30, num_bins=4)
        histogram.record(0)
        histogram.record(29)
        histogram.record(30)
        histogram.record(119)
        assert histogram.bins == [2, 1, 0, 1]

    def test_overflow_bin(self):
        histogram = Histogram("h", bin_width=10, num_bins=2)
        histogram.record(25)
        assert histogram.overflow == 1

    def test_mean(self):
        histogram = Histogram("h", bin_width=10, num_bins=4)
        histogram.record(10)
        histogram.record(30)
        assert histogram.mean() == pytest.approx(20.0)

    def test_fraction_below(self):
        histogram = Histogram("h", bin_width=30, num_bins=4)
        for value in (1, 2, 3, 40):
            histogram.record(value)
        assert histogram.fraction_below(30) == pytest.approx(0.75)

    def test_percentile_bound(self):
        histogram = Histogram("h", bin_width=30, num_bins=10)
        for value in [5] * 95 + [100] * 5:
            histogram.record(value)
        assert histogram.percentile_bin_upper_bound(0.95) == 30
        assert histogram.percentile_bin_upper_bound(0.99) == 120

    def test_as_series_includes_overflow(self):
        histogram = Histogram("h", bin_width=10, num_bins=2)
        histogram.record(25)
        series = histogram.as_series()
        assert series[-1] == (20, 1)

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", 10, 2).record(-1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", 0, 4)
        with pytest.raises(ConfigurationError):
            Histogram("h", 4, 0)

    def test_weighted_record(self):
        histogram = Histogram("h", bin_width=10, num_bins=4)
        histogram.record(5, weight=10)
        assert histogram.bins[0] == 10
        assert histogram.count == 10


class TestStatsRegistry:
    def test_counter_created_lazily(self):
        registry = StatsRegistry()
        registry.bump("a.b", 3)
        assert registry.value("a.b") == 3

    def test_value_of_unknown_counter_is_zero(self):
        assert StatsRegistry().value("missing") == 0

    def test_counter_identity_is_stable(self):
        registry = StatsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_histogram_first_declaration_wins(self):
        registry = StatsRegistry()
        first = registry.histogram("h", bin_width=30, num_bins=4)
        second = registry.histogram("h", bin_width=99, num_bins=1)
        assert first is second
        assert second.bin_width == 30

    def test_snapshot_is_plain_data(self):
        registry = StatsRegistry()
        registry.bump("events", 2)
        registry.histogram("h", 10, 2).record(5)
        snapshot = registry.snapshot()
        assert snapshot.counters["events"] == 2
        assert snapshot.histograms["h"][0] == (0, 1)
        assert snapshot.get("missing", 7) == 7

    def test_merge_adds_counters(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a.value("x") == 3
        assert a.value("y") == 3

    def test_merge_rejects_duplicate_histograms(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.histogram("h", 10, 2)
        b.histogram("h", 10, 2)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_as_dict_sorted(self):
        registry = StatsRegistry()
        registry.bump("z")
        registry.bump("a")
        assert list(registry.as_dict()) == ["a", "z"]


class TestRatePer100M:
    def test_scaling(self):
        rate = RatePer100M(committed_instructions=1_000_000)
        assert rate.scale(10) == pytest.approx(1000)
        assert rate.scale_millions(10) == pytest.approx(0.001)

    def test_rejects_zero_instructions(self):
        with pytest.raises(ConfigurationError):
            RatePer100M(committed_instructions=0)

"""Tests for the cache hierarchy substrate (LRU, line locking, warm-up)."""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig, MemoryHierarchyConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import StatsRegistry
from repro.isa.trace import RegionFootprint
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel
from repro.memory.replacement import LruState


def _tiny_cache(associativity: int = 2, sets: int = 4, line: int = 32) -> SetAssociativeCache:
    config = CacheConfig(
        size_bytes=associativity * sets * line,
        associativity=associativity,
        line_size=line,
        latency=1,
        name="tiny",
    )
    return SetAssociativeCache(config, StatsRegistry())


class TestLruState:
    def test_victim_is_least_recently_used(self):
        lru = LruState(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        assert lru.victim() == 0

    def test_touch_moves_to_front(self):
        lru = LruState(2)
        lru.touch(0)
        lru.touch(1)
        lru.touch(0)
        assert lru.victim() == 1

    def test_locked_way_never_victim(self):
        lru = LruState(2)
        lru.touch(0)
        lru.touch(1)
        lru.lock(0)
        assert lru.victim() == 1

    def test_all_locked_has_no_victim(self):
        lru = LruState(2)
        lru.lock(0)
        lru.lock(1)
        assert lru.all_locked()
        assert lru.victim() is None

    def test_unlock_restores_eligibility(self):
        lru = LruState(1)
        lru.lock(0)
        lru.unlock(0)
        assert lru.victim() == 0

    def test_out_of_range_way_rejected(self):
        with pytest.raises(SimulationError):
            LruState(2).touch(5)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            LruState(0)


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = _tiny_cache()
        assert cache.access(0x1000).hit is False
        assert cache.access(0x1000).hit is True

    def test_same_line_different_offset_hits(self):
        cache = _tiny_cache()
        cache.access(0x1000)
        assert cache.access(0x1008).hit is True

    def test_eviction_on_conflict(self):
        cache = _tiny_cache(associativity=1, sets=4)
        set_stride = 4 * 32  # addresses one "set wrap" apart map to the same set
        cache.access(0x0)
        result = cache.access(set_stride)
        assert result.hit is False
        assert result.evicted_line == 0

    def test_probe_does_not_allocate(self):
        cache = _tiny_cache()
        assert cache.probe(0x2000) is False
        assert cache.is_resident(0x2000) is False

    def test_lock_allocates_and_pins(self):
        cache = _tiny_cache(associativity=2, sets=2)
        result = cache.lock_line(0x40, owner=3)
        assert result.locked and result.allocated
        assert cache.is_locked(0x40)
        assert cache.locked_line_count() == 1

    def test_locked_lines_survive_conflicting_fills(self):
        cache = _tiny_cache(associativity=2, sets=1)
        cache.lock_line(0x0, owner=1)
        # Fill the other way and then force a conflict: the locked line stays.
        cache.access(0x20)
        cache.access(0x40)
        assert cache.is_resident(0x0)

    def test_lock_conflict_when_set_fully_locked(self):
        cache = _tiny_cache(associativity=2, sets=1)
        assert cache.lock_line(0x00, owner=1).locked
        assert cache.lock_line(0x20, owner=1).locked
        result = cache.lock_line(0x40, owner=2)
        assert result.conflict and not result.locked
        assert cache.set_fully_locked(0x40)

    def test_unlock_owner_releases_everything(self):
        cache = _tiny_cache(associativity=2, sets=2)
        cache.lock_line(0x00, owner=7)
        cache.lock_line(0x20, owner=7)
        released = cache.unlock_owner(7)
        assert released == 2
        assert cache.locked_line_count() == 0
        assert not cache.is_locked(0x00)

    def test_line_locked_by_two_owners_needs_both_released(self):
        cache = _tiny_cache()
        cache.lock_line(0x100, owner=1)
        cache.lock_line(0x100, owner=2)
        cache.unlock_owner(1)
        assert cache.is_locked(0x100)
        cache.unlock_owner(2)
        assert not cache.is_locked(0x100)

    def test_stats_disabled_suppresses_counters(self):
        stats = StatsRegistry()
        config = CacheConfig(size_bytes=2 * 4 * 32, associativity=2, line_size=32, latency=1, name="c")
        cache = SetAssociativeCache(config, stats)
        cache.stats_enabled = False
        cache.access(0x0)
        assert stats.value("c.misses") == 0
        cache.stats_enabled = True
        cache.access(0x1000)
        assert stats.value("c.misses") == 1


class TestMemoryHierarchy:
    def test_latencies_accumulate(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access(0x1234)
        assert first.level is MemoryLevel.MAIN_MEMORY
        assert first.latency == 1 + 10 + 400
        second = hierarchy.access(0x1234)
        assert second.level is MemoryLevel.L1
        assert second.latency == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0x0)
        # Evict 0x0 from L1 by filling its set (L1 is 4-way, 256 sets).
        set_stride = 256 * 32
        for way in range(1, 6):
            hierarchy.access(way * set_stride)
        result = hierarchy.access(0x0)
        assert result.level is MemoryLevel.L2
        assert result.latency == 11

    def test_probe_level_does_not_modify(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.probe_level(0x999000) is MemoryLevel.MAIN_MEMORY
        assert hierarchy.probe_level(0x999000) is MemoryLevel.MAIN_MEMORY

    def test_latency_for_level(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.latency_for_level(MemoryLevel.L1) == 1
        assert hierarchy.latency_for_level(MemoryLevel.L2) == 11
        assert hierarchy.latency_for_level(MemoryLevel.MAIN_MEMORY) == 411

    def test_lock_passthrough(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.lock_l1_line(0x40, owner=1).locked
        assert hierarchy.unlock_l1_owner(1) == 1

    def test_warm_up_addresses_is_silent(self):
        stats = StatsRegistry()
        hierarchy = MemoryHierarchy(stats=stats)
        count = hierarchy.warm_up([0x1000, 0x2000, 0x1000])
        assert count == 3
        assert stats.value("L1.misses") == 0
        assert hierarchy.access(0x1000).level is MemoryLevel.L1

    def test_warm_up_regions_small_region_becomes_resident(self):
        hierarchy = MemoryHierarchy()
        small = RegionFootprint(name="hot", base_address=0, size_bytes=16 * 1024, weight=0.9, pattern="stream")
        hierarchy.warm_up_regions([small])
        assert hierarchy.access(0x0).level is MemoryLevel.L1

    def test_warm_up_regions_huge_region_still_misses_at_start(self):
        hierarchy = MemoryHierarchy()
        huge = RegionFootprint(
            name="far", base_address=0x10_000_000, size_bytes=16 * 1024 * 1024, weight=0.1, pattern="stream"
        )
        hierarchy.warm_up_regions([huge])
        # The resident tail is the end of the region; its beginning still misses.
        assert hierarchy.access(0x10_000_000).level is MemoryLevel.MAIN_MEMORY

    def test_warm_up_regions_orders_by_density(self):
        hierarchy = MemoryHierarchy()
        # The dense small region must win L1 residency over the sparse one.
        dense = RegionFootprint(name="dense", base_address=0, size_bytes=16 * 1024, weight=0.9, pattern="stream")
        sparse = RegionFootprint(
            name="sparse", base_address=0x1_000_000, size_bytes=32 * 1024, weight=0.01, pattern="stream"
        )
        hierarchy.warm_up_regions([sparse, dense])
        assert hierarchy.access(0x0).level is MemoryLevel.L1

    def test_with_l2_size_changes_capacity_behaviour(self):
        small = MemoryHierarchy(MemoryHierarchyConfig().with_l2_size(1024 * 1024))
        large = MemoryHierarchy(MemoryHierarchyConfig().with_l2_size(8 * 1024 * 1024))
        region = RegionFootprint(
            name="mid", base_address=0, size_bytes=3 * 1024 * 1024, weight=0.5, pattern="stream"
        )
        small.warm_up_regions([region])
        large.warm_up_regions([region])
        assert large.probe_level(0x0) is not MemoryLevel.MAIN_MEMORY
        assert small.probe_level(0x0) is MemoryLevel.MAIN_MEMORY

"""Tests for the experiment orchestration layer (repro.exp).

Covers the ISSUE's acceptance surface: configuration serialization round
trips, content-address (cache key) stability across processes and hash
seeds, cache hit/miss behaviour, and bit-identical results between serial
and parallel execution of the same sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED, one_member_suite, subprocess_env

from repro.common.serialize import canonical_json, from_jsonable, stable_hash, to_jsonable
from repro.exp.cache import ResultCache
from repro.exp.runner import ExperimentRunner, SimJob, SweepCase, job_key, run_job
from repro.sim.configs import PAPER_CONFIGS, MachineConfig, fmc_hash, ooo_64
from repro.sim.experiments import ExperimentContext, sec52_epoch_sizing
from repro.workloads.base import WorkloadParameters
from repro.workloads.suite import quick_fp_suite, quick_int_suite

# ----------------------------------------------------------------------
# Serialization round trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("config_name", sorted(PAPER_CONFIGS))
def test_machine_config_roundtrip(config_name: str) -> None:
    machine = PAPER_CONFIGS[config_name]()
    lowered = json.loads(json.dumps(to_jsonable(machine)))
    rebuilt = from_jsonable(MachineConfig, lowered)
    assert rebuilt == machine


def test_workload_parameters_roundtrip() -> None:
    for member in tuple(quick_fp_suite()) + tuple(quick_int_suite()):
        lowered = json.loads(json.dumps(to_jsonable(member)))
        rebuilt = from_jsonable(WorkloadParameters, lowered)
        assert rebuilt == member


def test_core_result_roundtrip() -> None:
    member = quick_fp_suite().members[0]
    result = run_job(SimJob(ooo_64(), member, TEST_INSTRUCTIONS, TEST_SEED))
    lowered = json.loads(json.dumps(result.to_dict()))
    rebuilt = type(result).from_dict(lowered)
    assert rebuilt == result
    assert rebuilt.ipc == result.ipc
    assert dict(rebuilt.stats.counters) == dict(result.stats.counters)
    assert dict(rebuilt.stats.histograms) == dict(result.stats.histograms)


# ----------------------------------------------------------------------
# Content addresses (cache keys)
# ----------------------------------------------------------------------


def test_job_key_covers_every_input() -> None:
    member = quick_fp_suite().members[0]
    base = SimJob(fmc_hash(), member, TEST_INSTRUCTIONS, TEST_SEED)
    assert job_key(base) == job_key(SimJob(fmc_hash(), member, TEST_INSTRUCTIONS, TEST_SEED))
    variants = [
        SimJob(fmc_hash(hash_bits=12), member, TEST_INSTRUCTIONS, TEST_SEED),
        SimJob(fmc_hash(), quick_fp_suite().members[1], TEST_INSTRUCTIONS, TEST_SEED),
        SimJob(fmc_hash(), member, TEST_INSTRUCTIONS + 1, TEST_SEED),
        SimJob(fmc_hash(), member, TEST_INSTRUCTIONS, TEST_SEED + 1),
        SimJob(fmc_hash(), member, TEST_INSTRUCTIONS, None),
    ]
    keys = {job_key(variant) for variant in variants}
    assert len(keys) == len(variants)
    assert job_key(base) not in keys
    # The display name is NOT part of the physics: renaming must reuse the key.
    assert job_key(SimJob(fmc_hash(name="renamed"), member, TEST_INSTRUCTIONS, TEST_SEED)) == (
        job_key(base)
    )


def test_identically_configured_machines_share_simulations(tmp_path: Path) -> None:
    """Renamed-but-identical machines dedupe, and aggregates keep their labels."""
    suite = one_member_suite()
    runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path / "cache"))
    first = runner.run_suite(fmc_hash(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    second = runner.run_suite(
        fmc_hash(name="ELSQ Hash ERT + SQM"), suite, TEST_INSTRUCTIONS, seed=TEST_SEED
    )
    assert runner.executed_jobs == 1
    assert runner.cache_hits == 1
    assert first.machine_name == "FMC-Hash"
    assert second.machine_name == "ELSQ Hash ERT + SQM"
    assert second.results["swim_like"].config_name == "ELSQ Hash ERT + SQM"
    assert second.results["swim_like"].cycles == first.results["swim_like"].cycles
    assert dict(second.results["swim_like"].stats.counters) == dict(
        first.results["swim_like"].stats.counters
    )


def test_config_hash_stable_across_processes() -> None:
    """The content address must not depend on the process or the hash seed."""
    member = quick_fp_suite().members[0]
    expected = SimJob(fmc_hash(), member, TEST_INSTRUCTIONS, TEST_SEED).key()
    script = (
        "from repro.exp.runner import SimJob;"
        "from repro.sim.configs import fmc_hash;"
        "from repro.workloads.suite import quick_fp_suite;"
        f"job = SimJob(fmc_hash(), quick_fp_suite().members[0], {TEST_INSTRUCTIONS}, {TEST_SEED});"
        "print(job.key())"
    )
    for hash_seed in ("0", "12345"):
        env = subprocess_env()
        env["PYTHONHASHSEED"] = hash_seed
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == expected


def test_canonical_json_is_sorted_and_compact() -> None:
    machine = ooo_64()
    text = canonical_json(machine)
    assert ": " not in text and ", " not in text
    assert json.loads(text) == to_jsonable(machine)
    assert stable_hash(machine) == stable_hash(ooo_64())


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------


def test_cache_miss_then_hit(result_cache: ResultCache) -> None:
    suite = one_member_suite()
    cold_runner = ExperimentRunner(jobs=1, cache=result_cache)
    cold = cold_runner.run_suite(fmc_hash(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert cold_runner.executed_jobs == 1
    assert cold_runner.cache_hits == 0

    warm_runner = ExperimentRunner(jobs=1, cache=ResultCache(result_cache.root))
    warm = warm_runner.run_suite(fmc_hash(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert warm_runner.executed_jobs == 0
    assert warm_runner.cache_hits == 1
    assert warm == cold

    entries = list(result_cache.entries())
    assert len(entries) == 1
    assert entries[0].machine == "FMC-Hash"
    assert entries[0].workload == "swim_like"
    assert entries[0].num_instructions == TEST_INSTRUCTIONS


def test_cache_corrupt_entry_is_a_miss(result_cache: ResultCache) -> None:
    cache = result_cache
    suite = one_member_suite()
    runner = ExperimentRunner(jobs=1, cache=cache)
    runner.run_suite(ooo_64(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    (entry,) = cache.entries()
    entry.path.write_text("{ not json")
    rerun = ExperimentRunner(jobs=1, cache=cache)
    rerun.run_suite(ooo_64(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert rerun.executed_jobs == 1
    assert rerun.cache_hits == 0
    # The corrupt entry was overwritten with a readable one.
    assert cache.get(entry.key) is not None

    # Valid JSON with semantically impossible values is also a miss, not a crash.
    payload = json.loads(entry.path.read_text())
    payload["result"]["cycles"] = 0
    entry.path.write_text(json.dumps(payload))
    assert cache.get(entry.key) is None
    again = ExperimentRunner(jobs=1, cache=cache)
    again.run_suite(ooo_64(), suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert again.executed_jobs == 1


def test_cache_clear(result_cache: ResultCache) -> None:
    runner = ExperimentRunner(jobs=1, cache=result_cache)
    runner.run_suite(ooo_64(), one_member_suite(), TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert result_cache.clear() == 1
    assert list(result_cache.entries()) == []


def _set_entry_created(entry, created: float) -> None:
    """Rewrite one cache entry's creation timestamp (test clock control)."""
    payload = json.loads(entry.path.read_text())
    payload["created"] = created
    entry.path.write_text(json.dumps(payload, sort_keys=True))


def populated_cache(tmp_path: Path, seeds=(1, 2, 3)) -> ResultCache:
    """A cache with one entry per seed, with created stamps 100, 200, 300..."""
    cache = ResultCache(tmp_path / "cache")
    runner = ExperimentRunner(jobs=1, cache=cache)
    for seed in seeds:
        runner.run_suite(ooo_64(), one_member_suite(), TEST_INSTRUCTIONS, seed=seed)
    entries = sorted(cache.entries(), key=lambda entry: entry.seed)
    for index, entry in enumerate(entries):
        _set_entry_created(entry, 100.0 * (index + 1))
    return cache


def test_cache_prune_older_than(tmp_path: Path) -> None:
    cache = populated_cache(tmp_path)
    # At now=450, entries created at 100 and 200 are >= 250s old.
    report = cache.prune(older_than_seconds=250.0, now=450.0)
    assert report.removed == 2
    assert report.remaining == 1
    assert report.freed_bytes > 0
    (survivor,) = cache.entries()
    assert survivor.seed == 3  # the newest entry survived


def test_cache_prune_max_size_evicts_oldest_first(tmp_path: Path) -> None:
    cache = populated_cache(tmp_path)
    entries = list(cache.entries())
    keep_bytes = max(entry.size_bytes for entry in entries)
    report = cache.prune(max_size_bytes=keep_bytes)
    assert report.removed == 2
    assert report.remaining == 1
    assert report.remaining_bytes <= keep_bytes
    (survivor,) = cache.entries()
    assert survivor.seed == 3
    # A no-op prune removes nothing (now pinned: created stamps are synthetic).
    untouched = cache.prune(older_than_seconds=1e9, max_size_bytes=10**9, now=450.0)
    assert untouched.removed == 0
    assert untouched.remaining == 1


def test_cache_put_is_atomic_and_cleans_up_on_failure(
    tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    cache = ResultCache(tmp_path / "cache")
    job = SimJob(ooo_64(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    result = run_job(job)
    cache.put(job.key(), result)
    # The committed entry is complete and no temporary survives the rename.
    assert cache.get(job.key()) == result
    assert list((tmp_path / "cache").rglob("*.tmp")) == []

    # A writer dying at the rename must not leave a torn temporary either.
    import repro.exp.cache as cache_module

    def broken_replace(_source, _target):
        raise OSError("injected rename failure")

    monkeypatch.setattr(cache_module.os, "replace", broken_replace)
    with pytest.raises(OSError, match="injected rename failure"):
        cache.put(job.key(), result)
    monkeypatch.undo()
    assert list((tmp_path / "cache").rglob("*.tmp")) == []
    # The previously committed entry is still intact.
    assert cache.get(job.key()) == result


def test_clear_spares_live_temp_files_but_sweeps_orphans(tmp_path: Path) -> None:
    """clear() must not delete a concurrent writer's in-flight temporary."""
    cache = ResultCache(tmp_path / "cache")
    job = SimJob(ooo_64(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    cache.put(job.key(), run_job(job))
    bucket = cache.path_for(job.key()).parent
    temp = bucket / f".{job.key()}.json.12345.99.tmp"
    temp.write_text("{ partial write")
    assert cache.clear() == 1
    # A fresh temp (a writer may be mid-put) survives the sweep ...
    assert temp.exists()
    # ... but an orphan from a long-dead writer is collected.
    ancient = temp.stat().st_mtime - 7200
    os.utime(temp, (ancient, ancient))
    cache.clear()
    assert not temp.exists()


def test_job_key_covers_the_trace_format_version(monkeypatch: pytest.MonkeyPatch) -> None:
    """Bumping the trace format must change every content address."""
    from repro.exp import runner as runner_module

    member = quick_fp_suite().members[0]
    job = SimJob(ooo_64(), member, TEST_INSTRUCTIONS, TEST_SEED)
    job_key.cache_clear()
    before = job_key(job)
    monkeypatch.setattr(
        runner_module, "TRACE_FORMAT_VERSION", runner_module.TRACE_FORMAT_VERSION + 1
    )
    job_key.cache_clear()
    after = job_key(job)
    monkeypatch.undo()
    job_key.cache_clear()
    assert after != before


def test_stale_trace_format_entry_is_never_a_hit(result_cache: ResultCache) -> None:
    """An entry recorded under an older trace format reads as a miss and can
    be swept selectively with ``clear(stale_only=True)``."""
    cache = result_cache
    runner = ExperimentRunner(jobs=1, cache=cache)
    runner.run_suite(ooo_64(), one_member_suite(), TEST_INSTRUCTIONS, seed=TEST_SEED)
    runner.run_suite(ooo_64(), one_member_suite(), TEST_INSTRUCTIONS, seed=TEST_SEED + 1)
    fresh_entry, stale_entry = sorted(cache.entries(), key=lambda entry: entry.seed or 0)
    assert not fresh_entry.is_stale and not stale_entry.is_stale

    # Forge an entry from an older format generation.
    payload = json.loads(stale_entry.path.read_text())
    payload["trace_format"] = payload["trace_format"] - 1
    stale_entry.path.write_text(json.dumps(payload, sort_keys=True))

    assert cache.get(stale_entry.key) is None  # belt-and-braces miss
    assert cache.get(fresh_entry.key) is not None
    refetched = {entry.key: entry for entry in cache.entries()}
    assert refetched[stale_entry.key].is_stale
    assert not refetched[fresh_entry.key].is_stale

    # A rerun under the stale key re-executes instead of serving the entry.
    rerun = ExperimentRunner(jobs=1, cache=cache)
    rerun.run_suite(ooo_64(), one_member_suite(), TEST_INSTRUCTIONS, seed=TEST_SEED + 1)
    assert rerun.executed_jobs == 1 and rerun.cache_hits == 0

    # Selective sweep: re-forge, then clear only the stale entry.
    stale_entry.path.write_text(json.dumps(payload, sort_keys=True))
    assert cache.clear(stale_only=True) == 1
    assert cache.get(fresh_entry.key) is not None
    assert not stale_entry.path.exists()


def test_runner_dedupes_identical_jobs() -> None:
    member = quick_fp_suite().members[0]
    job = SimJob(ooo_64(), member, TEST_INSTRUCTIONS, TEST_SEED)
    runner = ExperimentRunner(jobs=1)
    batch = runner.run_batch([job, job, job])
    assert runner.executed_jobs == 1
    assert set(batch) == {job.key()}


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------


def test_parallel_execution_is_bit_identical_to_serial() -> None:
    """The same sweep must produce identical results serially and in a pool."""
    suite = quick_fp_suite()
    machines = [ooo_64(), fmc_hash()]
    serial_context = ExperimentContext(
        fp_suite=suite,
        int_suite=quick_int_suite(),
        instructions_per_workload=TEST_INSTRUCTIONS,
        seed=TEST_SEED,
    )
    parallel_runner = ExperimentRunner(jobs=2)
    for machine in machines:
        serial = serial_context.run(machine, suite)
        parallel = parallel_runner.run_suite(machine, suite, TEST_INSTRUCTIONS, seed=TEST_SEED)
        assert parallel == serial  # CoreResult equality covers cycles, stats, extras
    assert parallel_runner.executed_jobs == len(machines) * len(suite)


def test_run_sweep_matches_between_serial_and_parallel_contexts() -> None:
    """A whole declared figure produces identical series through both paths."""
    sizings = ((16, 8), (64, 32), (1024, 1024))
    serial_context = ExperimentContext(
        fp_suite=quick_fp_suite(),
        int_suite=quick_int_suite(),
        instructions_per_workload=TEST_INSTRUCTIONS,
        seed=TEST_SEED,
    )
    parallel_context = ExperimentContext(
        fp_suite=quick_fp_suite(),
        int_suite=quick_int_suite(),
        instructions_per_workload=TEST_INSTRUCTIONS,
        seed=TEST_SEED,
        runner=ExperimentRunner(jobs=2),
    )
    serial_points = sec52_epoch_sizing(serial_context, sizings=sizings)
    parallel_points = sec52_epoch_sizing(parallel_context, sizings=sizings)
    assert parallel_points == serial_points


def test_run_cases_rejects_duplicate_case_ids() -> None:
    from repro.common.errors import ConfigurationError

    runner = ExperimentRunner(jobs=1)
    cases = [
        SweepCase("dup", ooo_64(), "SPEC FP"),
        SweepCase("dup", fmc_hash(), "SPEC FP"),
    ]
    with pytest.raises(ConfigurationError):
        runner.run_cases(cases, {"SPEC FP": one_member_suite()}, TEST_INSTRUCTIONS, TEST_SEED)

"""Tests for the synthetic workload generators and suites."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.base import MemoryRegion, SyntheticWorkload, WorkloadParameters
from repro.workloads.spec_fp import SPEC_FP_KERNELS, equake_like, fp_kernel, swim_like
from repro.workloads.spec_int import SPEC_INT_KERNELS, int_kernel, mcf_like
from repro.workloads.suite import (
    quick_fp_suite,
    quick_int_suite,
    spec_fp_suite,
    spec_int_suite,
    suite_by_name,
)


class TestMemoryRegion:
    def test_rejects_bad_pattern(self):
        with pytest.raises(WorkloadError):
            MemoryRegion(name="x", size_bytes=1024, weight=1.0, pattern="zigzag")

    def test_rejects_non_positive_size(self):
        with pytest.raises(WorkloadError):
            MemoryRegion(name="x", size_bytes=0, weight=1.0)


class TestWorkloadParameters:
    def test_rejects_fraction_sum_above_one(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(load_fraction=0.6, store_fraction=0.3, branch_fraction=0.2)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(chased_load_fraction=1.5)

    def test_rejects_empty_regions(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(regions=())

    def test_rejects_all_zero_region_weights(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(
                regions=(MemoryRegion(name="a", size_bytes=64, weight=0.0),)
            )

    def test_rejects_non_power_of_two_access_size(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(access_sizes=((3, 1.0),))

    def test_with_name(self):
        renamed = WorkloadParameters().with_name("other")
        assert renamed.name == "other"


class TestSyntheticWorkload:
    def test_exact_instruction_count(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params).generate(500)
        assert len(trace) == 500

    def test_zero_instructions(self, small_workload_params):
        assert len(SyntheticWorkload(small_workload_params).generate(0)) == 0

    def test_negative_count_rejected(self, small_workload_params):
        with pytest.raises(WorkloadError):
            SyntheticWorkload(small_workload_params).generate(-1)

    def test_deterministic_given_seed(self, small_workload_params):
        a = SyntheticWorkload(small_workload_params, seed=5).generate(400)
        b = SyntheticWorkload(small_workload_params, seed=5).generate(400)
        assert list(a) == list(b)

    def test_different_seeds_differ(self, small_workload_params):
        a = SyntheticWorkload(small_workload_params, seed=5).generate(400)
        b = SyntheticWorkload(small_workload_params, seed=6).generate(400)
        assert list(a) != list(b)

    def test_instruction_mix_roughly_matches(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params, seed=2).generate(6000)
        stats = trace.statistics()
        assert stats.load_fraction == pytest.approx(0.3, abs=0.05)
        assert stats.store_fraction == pytest.approx(0.1, abs=0.04)
        assert stats.branch_fraction == pytest.approx(0.1, abs=0.04)

    def test_mispredict_rate_roughly_matches(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params, seed=2).generate(8000)
        stats = trace.statistics()
        assert 0.0 < stats.branch_mispredict_rate < 0.08

    def test_addresses_fall_inside_regions(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params, seed=3).generate(2000)
        regions = trace.regions
        assert regions, "synthetic traces must carry region footprints"
        bounds = [
            (region.base_address, region.base_address + region.size_bytes)
            for region in regions
        ]
        for op in trace.memory_operations():
            assert any(low <= op.address < high for low, high in bounds)

    def test_memory_ops_have_sources(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params, seed=3).generate(1000)
        for op in trace.memory_operations():
            assert op.srcs, "memory operations must carry address operands"

    def test_store_data_operand_is_last_source(self, small_workload_params):
        trace = SyntheticWorkload(small_workload_params, seed=3).generate(1000)
        stores = [op for op in trace.memory_operations() if op.is_store]
        assert stores
        assert all(len(op.srcs) >= 2 for op in stores)

    def test_phase_mechanism_restricts_far_accesses(self):
        params = WorkloadParameters(
            name="phased",
            load_fraction=0.4,
            store_fraction=0.1,
            branch_fraction=0.05,
            regions=(
                MemoryRegion(name="far", size_bytes=8 * 1024 * 1024, weight=0.5, pattern="random", is_far=True),
                MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.5, pattern="stream"),
            ),
            phase_length=100,
            memory_phase_fraction=0.5,
            seed=7,
        )
        trace = SyntheticWorkload(params, seed=7).generate(4000)
        far_base = next(r.base_address for r in trace.regions if r.name == "far")
        far_end = far_base + 8 * 1024 * 1024
        compute_phase_far_accesses = 0
        memory_ops = 0
        generator = SyntheticWorkload(params, seed=7)
        for op in trace.memory_operations():
            memory_ops += 1
            if far_base <= op.address < far_end and not generator._in_memory_phase(op.seq):
                compute_phase_far_accesses += 1
        # Fresh far accesses only happen in memory phases; the few exceptions
        # are forwarding loads that re-read an address stored during an
        # earlier memory phase.
        assert compute_phase_far_accesses < 0.02 * memory_ops

    def test_memory_phase_fraction_zero_disables_far_regions(self):
        params = WorkloadParameters(
            name="no_mem_phase",
            regions=(
                MemoryRegion(name="far", size_bytes=4 * 1024 * 1024, weight=0.9, pattern="random", is_far=True),
                MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.1, pattern="stream"),
            ),
            phase_length=50,
            memory_phase_fraction=0.0,
            seed=9,
        )
        trace = SyntheticWorkload(params, seed=9).generate(2000)
        far_base = next(r.base_address for r in trace.regions if r.name == "far")
        far_end = far_base + 4 * 1024 * 1024
        assert all(not (far_base <= op.address < far_end) for op in trace.memory_operations())


class TestKernels:
    @pytest.mark.parametrize("name", sorted(SPEC_FP_KERNELS))
    def test_fp_kernels_construct_and_generate(self, name):
        params = fp_kernel(name)
        trace = SyntheticWorkload(params, seed=1).generate(300)
        assert len(trace) == 300

    @pytest.mark.parametrize("name", sorted(SPEC_INT_KERNELS))
    def test_int_kernels_construct_and_generate(self, name):
        params = int_kernel(name)
        trace = SyntheticWorkload(params, seed=1).generate(300)
        assert len(trace) == 300

    def test_unknown_kernel_rejected(self):
        with pytest.raises(WorkloadError):
            fp_kernel("does_not_exist")
        with pytest.raises(WorkloadError):
            int_kernel("does_not_exist")

    def test_equake_has_chased_stores(self):
        # Section 5.5: equake's smvp() computes store addresses by pointer
        # dereferencing, which is what punishes restricted SAC.
        assert equake_like().chased_store_fraction > 0.05
        assert swim_like().chased_store_fraction < 0.01

    def test_int_kernels_are_branchier_than_fp(self):
        assert mcf_like().branch_fraction > swim_like().branch_fraction
        assert mcf_like().branch_mispredict_rate > swim_like().branch_mispredict_rate


class TestSuites:
    def test_fp_suite_members(self):
        suite = spec_fp_suite()
        assert len(suite) == 6
        assert "equake_like" in suite.member_names()

    def test_int_suite_members(self):
        suite = spec_int_suite()
        assert len(suite) == 6
        assert "mcf_like" in suite.member_names()

    def test_quick_suites_are_subsets(self):
        assert set(quick_fp_suite().member_names()) <= set(spec_fp_suite().member_names())
        assert set(quick_int_suite().member_names()) <= set(spec_int_suite().member_names())

    def test_suite_by_name(self):
        assert suite_by_name("spec_fp_like").name == "spec_fp_like"
        with pytest.raises(WorkloadError):
            suite_by_name("nope")

    def test_member_lookup(self):
        suite = spec_fp_suite()
        assert suite.member("swim_like").name == "swim_like"
        with pytest.raises(WorkloadError):
            suite.member("missing")

    def test_generate_traces(self):
        traces = quick_fp_suite().generate_traces(200, seed=4)
        assert len(traces) == 2
        assert all(len(trace) == 200 for trace in traces)

    def test_subset_preserves_order(self):
        suite = spec_int_suite().subset(["vpr_like", "gcc_like"])
        assert suite.member_names() == ["vpr_like", "gcc_like"]

"""Tests for the LSQ policies: conventional, idealised central, and the ELSQ."""

from __future__ import annotations

import pytest

from repro.common.config import (
    DisambiguationModel,
    ELSQConfig,
    ERTConfig,
    ERTKind,
    LoadQueueScheme,
    SVWConfig,
)
from repro.common.stats import StatsRegistry
from repro.core.conventional import ConventionalLSQ, IdealCentralLSQ
from repro.core.elsq import EpochBasedLSQ
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.memory.hierarchy import MemoryHierarchy


def make_store(
    seq,
    address,
    *,
    decode=0,
    addr_ready=5,
    data_ready=6,
    commit=1000,
    locality=Locality.HIGH,
    epoch=None,
    migration=None,
):
    return StoreRecord(
        seq=seq,
        address=address,
        size=8,
        decode_cycle=decode,
        addr_ready_cycle=addr_ready,
        data_ready_cycle=data_ready,
        commit_cycle=commit,
        locality=locality,
        epoch_id=epoch,
        migration_cycle=migration,
    )


def make_load(seq, address, issue, *, locality=Locality.HIGH, epoch=None, migration=None):
    return LoadRecord(
        seq=seq,
        address=address,
        size=8,
        decode_cycle=0,
        issue_cycle=issue,
        locality=locality,
        epoch_id=epoch,
        migration_cycle=migration,
    )


@pytest.fixture
def env():
    stats = StatsRegistry()
    hierarchy = MemoryHierarchy(stats=stats)
    return stats, hierarchy


class TestConventionalLSQ:
    def test_forwarding_beats_cache(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100))
        outcome = policy.load_issued(make_load(2, 0x100, issue=20))
        assert outcome.forwarded
        assert outcome.latency <= 2
        assert stats.value("lsq.forwarded_loads") == 1

    def test_cache_access_when_no_store_matches(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        outcome = policy.load_issued(make_load(2, 0x2000, issue=20))
        assert not outcome.forwarded
        assert outcome.latency >= hierarchy.config.l1.latency
        assert stats.value("cache.accesses") == 1

    def test_forwarding_waits_for_store_data(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100, data_ready=60))
        outcome = policy.load_issued(make_load(2, 0x100, issue=20))
        assert outcome.forwarded
        assert outcome.latency >= 40

    def test_violation_detected_for_unresolved_matching_store(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100, addr_ready=90, data_ready=90))
        outcome = policy.load_issued(make_load(2, 0x100, issue=20))
        assert outcome.violation
        assert stats.value("lsq.violations") == 1

    def test_store_search_counters(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100))
        policy.load_issued(make_load(2, 0x100, issue=20))
        assert stats.value("hl_sq.searches") == 1
        assert stats.value("hl_lq.searches") == 1

    def test_store_commit_writes_cache(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.store_committed(make_store(1, 0x100))
        assert stats.value("cache.store_writebacks") == 1

    def test_svw_variant_removes_load_queue_and_reexecutes(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(
            stats,
            hierarchy,
            load_queue_scheme=LoadQueueScheme.SVW_REEXECUTION,
            svw_config=SVWConfig(ssbf_index_bits=12),
        )
        # The store's address resolves only at cycle 90, after the load issued
        # at cycle 10: the load reads a stale cache value and must re-execute.
        store = make_store(1, 0x100, addr_ready=90, data_ready=90, commit=95)
        policy.store_issued(store)
        assert stats.value("hl_lq.searches") == 0
        load = make_load(2, 0x100, issue=10)
        outcome = policy.load_issued(load)
        assert not outcome.violation  # SVW repairs at commit instead of squashing
        policy.store_committed(store)
        load.commit_cycle = 100
        commit = policy.load_committed(load)
        assert commit.reexecuted
        assert commit.extra_latency >= 1
        assert stats.value("svw.reexecutions") == 1

    def test_wrong_path_accounting(self, env):
        stats, hierarchy = env
        policy = ConventionalLSQ(stats, hierarchy)
        policy.record_wrong_path_activity(wrong_path_loads=10, wrong_path_stores=4)
        assert stats.value("hl_sq.searches") == 10
        assert stats.value("hl_lq.searches") == 4


class TestIdealCentralLSQ:
    def test_low_locality_load_pays_round_trip(self, env):
        stats, hierarchy = env
        policy = IdealCentralLSQ(stats, hierarchy, round_trip_latency=8)
        hierarchy.warm_up([0x3000])  # make both accesses L1 hits
        near = policy.load_issued(make_load(2, 0x3000, issue=20))
        far = policy.load_issued(make_load(3, 0x3000, issue=30, locality=Locality.LOW, epoch=0))
        assert far.latency == near.latency + 8
        assert stats.value("network.round_trips") == 1

    def test_forwarding_from_any_store(self, env):
        stats, hierarchy = env
        policy = IdealCentralLSQ(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10))
        outcome = policy.load_issued(make_load(2, 0x100, issue=20))
        assert outcome.forwarded


def elsq_policy(stats, hierarchy, **overrides) -> EpochBasedLSQ:
    config = ELSQConfig(**overrides) if overrides else ELSQConfig()
    return EpochBasedLSQ(config, stats, hierarchy)


class TestEpochBasedLSQ:
    def test_hl_load_forwards_locally_from_hl_store(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.store_issued(make_store(1, 0x100))
        outcome = policy.load_issued(make_load(2, 0x100, issue=20))
        assert outcome.forwarded
        assert stats.value("hl_sq.searches") == 1
        assert stats.value("ert.lookups") == 0, "no live epochs, the ERT stays idle"

    def test_hl_load_finds_ll_store_through_ert_and_sqm(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10, addr_ready=12)
        )
        before = stats.value("ert.lookups")
        outcome = policy.load_issued(make_load(2, 0x100, issue=30))
        assert outcome.forwarded
        assert stats.value("ert.lookups") == before + 1
        assert stats.value("ll_sq.searches") == 1
        assert stats.value("sqm.accesses") >= 1
        assert stats.value("network.round_trips") == 0, "the SQM avoids the round trip"

    def test_without_sqm_the_global_forward_costs_a_round_trip(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy, store_queue_mirror=False)
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10, addr_ready=12)
        )
        outcome = policy.load_issued(make_load(2, 0x100, issue=30))
        assert outcome.forwarded
        assert stats.value("network.round_trips") == 1
        assert outcome.latency >= 8

    def test_sqm_forward_is_faster_than_round_trip(self, env):
        stats, hierarchy = env
        with_sqm = elsq_policy(StatsRegistry(), hierarchy)
        without_sqm = elsq_policy(StatsRegistry(), hierarchy, store_queue_mirror=False)
        for policy in (with_sqm, without_sqm):
            policy.epoch_opened(0, cycle=5)
            policy.store_issued(
                make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10, addr_ready=12)
            )
        fast = with_sqm.load_issued(make_load(2, 0x100, issue=30))
        slow = without_sqm.load_issued(make_load(2, 0x100, issue=30))
        assert fast.latency < slow.latency

    def test_ll_load_local_epoch_forwarding_is_cheap(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.epoch_opened(3, cycle=5)
        policy.store_issued(
            make_store(1, 0x100, locality=Locality.LOW, epoch=3, migration=10, addr_ready=12)
        )
        outcome = policy.load_issued(
            make_load(2, 0x100, issue=40, locality=Locality.LOW, epoch=3, migration=15)
        )
        assert outcome.forwarded
        assert outcome.latency <= 4
        assert stats.value("elsq.local_ll_forwards") == 1

    def test_ll_load_cache_access_pays_round_trip(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.epoch_opened(3, cycle=5)
        outcome = policy.load_issued(
            make_load(2, 0x8000, issue=40, locality=Locality.LOW, epoch=3, migration=15)
        )
        assert not outcome.forwarded
        assert outcome.latency >= hierarchy.config.l1.latency + 8
        assert stats.value("network.round_trips") == 1

    def test_false_positive_counted_for_aliased_hash(self, env):
        stats, hierarchy = env
        policy = EpochBasedLSQ(
            ELSQConfig(ert=ERTConfig(kind=ERTKind.HASH, hash_bits=4)), stats, hierarchy
        )
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10, addr_ready=12)
        )
        aliased_address = 0x100 + (16 << 3)
        outcome = policy.load_issued(make_load(2, aliased_address, issue=30))
        assert not outcome.forwarded
        assert stats.value("ert.false_positives") == 1

    def test_committed_epoch_no_longer_searched(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x100, locality=Locality.LOW, epoch=0, migration=10, addr_ready=12, commit=50)
        )
        policy.epoch_committed(0, cycle=50)
        outcome = policy.load_issued(make_load(2, 0x100, issue=100))
        assert not outcome.forwarded

    def test_rsac_removes_load_ert_and_global_store_searches(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy, disambiguation=DisambiguationModel.RESTRICTED_SAC)
        assert not policy._needs_load_ert
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x900, locality=Locality.LOW, epoch=0, migration=10, addr_ready=8)
        )
        # The store searched only its local epoch LQ, never the Load-ERT.
        assert stats.value("ll_lq.searches") == 1
        assert stats.value("ert.lookups") == 0

    def test_full_model_store_does_global_load_search(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.epoch_opened(0, cycle=5)
        policy.store_issued(
            make_store(1, 0x900, locality=Locality.LOW, epoch=0, migration=10, addr_ready=40)
        )
        assert stats.value("ert.lookups") == 1
        assert stats.value("hl_lq.searches") == 1

    def test_hl_store_only_searches_hl_lq(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        policy.store_issued(make_store(1, 0x900))
        assert stats.value("hl_lq.searches") == 1
        assert stats.value("ll_lq.searches") == 0

    def test_svw_scheme_counts_reexecutions_instead_of_violations(self, env):
        stats, hierarchy = env
        policy = elsq_policy(
            stats, hierarchy, load_queue_scheme=LoadQueueScheme.SVW_REEXECUTION,
            svw=SVWConfig(ssbf_index_bits=12),
        )
        store = make_store(1, 0x100, addr_ready=90, data_ready=90, commit=95)
        policy.store_issued(store)
        load = make_load(2, 0x100, issue=20)
        outcome = policy.load_issued(load)
        assert not outcome.violation
        policy.store_committed(store)
        load.commit_cycle = 120
        commit = policy.load_committed(load)
        assert commit.reexecuted
        assert stats.value("hl_lq.searches") == 0

    def test_line_based_lock_squash_for_ll_resolved_store(self, env):
        stats, hierarchy = env
        policy = EpochBasedLSQ(
            ELSQConfig(ert=ERTConfig(kind=ERTKind.LINE)), stats, hierarchy
        )
        policy.epoch_opened(0, cycle=0)
        l1 = hierarchy.config.l1
        set_stride = l1.num_sets * l1.line_size
        # Fill one L1 set with locked lines from address-known insertions.
        for way in range(l1.associativity):
            policy.store_issued(
                make_store(
                    way + 1,
                    way * set_stride,
                    locality=Locality.LOW,
                    epoch=0,
                    migration=10,
                    addr_ready=5,
                )
            )
        # A store resolving its address inside the LL-LSQ now conflicts.
        outcome = policy.store_issued(
            make_store(
                99,
                l1.associativity * set_stride,
                locality=Locality.LOW,
                epoch=0,
                migration=10,
                addr_ready=50,
            )
        )
        assert outcome.squash_penalty > 0
        assert stats.value("elsq.lock_squashes") == 1

    def test_line_based_lock_stall_for_hl_inserted_store(self, env):
        stats, hierarchy = env
        policy = EpochBasedLSQ(
            ELSQConfig(ert=ERTConfig(kind=ERTKind.LINE)), stats, hierarchy
        )
        policy.epoch_opened(0, cycle=0)
        l1 = hierarchy.config.l1
        set_stride = l1.num_sets * l1.line_size
        for way in range(l1.associativity):
            policy.store_issued(
                make_store(way + 1, way * set_stride, locality=Locality.LOW, epoch=0,
                           migration=10, addr_ready=5)
            )
        outcome = policy.store_issued(
            make_store(99, l1.associativity * set_stride, locality=Locality.LOW, epoch=0,
                       migration=20, addr_ready=5)
        )
        assert outcome.insertion_stall > 0
        assert stats.value("elsq.lock_stalls") == 1

    def test_introspection_properties(self, env):
        stats, hierarchy = env
        policy = elsq_policy(stats, hierarchy)
        assert policy.uses_store_queue_mirror
        assert not policy.uses_line_locking
        assert policy.disambiguation is DisambiguationModel.FULL
        assert policy.ert is not None

"""Regression tests for the PR-8 job-lifecycle bugfixes.

Three bugs, three tests, each of which fails on the pre-fix code:

* ``JobManager._trim_history`` counted *all* jobs (queued included) against
  the history limit and evicted in dict-insertion order, so a backlog
  evicted recently finished jobs -- pollers saw "unknown job" for work that
  had succeeded.
* ``ServiceClient.wait`` had no fallback when the job aged out of the
  bounded history between two polls; the receipt's request key now resolves
  the payload via ``GET /v1/results/{key}``.
* Durations (queue wait, service time, elapsed, uptime) were computed from
  the wall clock, so an NTP step produced negative latency samples; they
  now come from ``time.monotonic()`` while ``submitted_at`` stays
  wall-clock in the wire form.
"""

from __future__ import annotations

import asyncio
import time as real_time

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED

from repro.common.errors import JobNotFoundError
from repro.exp.request import JobRequest
from repro.exp.runner import SimJob
from repro.service.jobs import JobManager, JobStatus
from repro.sim.configs import fmc_hash
from repro.workloads.suite import quick_fp_suite

from test_service import running_service

WAIT_TIMEOUT = 120.0


def _request(seed: int) -> JobRequest:
    """A small batch request with a seed-distinct content address."""
    case = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, seed)
    return JobRequest(cases=(case,))


def _submit_queued(manager: JobManager, count: int, start_seed: int = 100):
    """Submit ``count`` distinct requests; no workers run, so all stay queued."""
    return [manager.submit(_request(start_seed + index))[0] for index in range(count)]


# ----------------------------------------------------------------------
# Bug 1: history trimming under a backlog
# ----------------------------------------------------------------------


def test_trim_history_ignores_queued_jobs() -> None:
    """A backlog of queued jobs must never force finished ones out.

    The pre-fix trim computed the excess over *every* job in the store
    (queued included), so a backlog of five with two finished jobs and a
    history limit of two evicted both finished jobs -- their pollers then
    saw "unknown job" for work that had succeeded.
    """
    manager = JobManager(queue_limit=100, history_limit=2)
    states = _submit_queued(manager, 5)
    for position, state in enumerate(states[:2]):
        state.status = JobStatus.COMPLETED
        state.finished_monotonic = float(position)
    manager._trim_history()
    # Two finished jobs fit the limit of two exactly: the queued backlog
    # must not count against them.
    assert set(manager.jobs) == {state.job_id for state in states}


def test_trim_history_evicts_by_completion_time() -> None:
    """Eviction counts only finished jobs and drops the oldest *completion*.

    The first-submitted job finishes last: it is the newest history and
    must survive, while the earliest completions go.  The pre-fix code
    evicted by dict-insertion order, which would have dropped it first.
    """
    manager = JobManager(queue_limit=100, history_limit=2)
    states = _submit_queued(manager, 4)
    # Finish jobs 1..3 in submission order, then job 0 last of all.
    for position, state in enumerate(states[1:], start=1):
        state.status = JobStatus.COMPLETED
        state.finished_monotonic = float(position)
    states[0].status = JobStatus.COMPLETED
    states[0].finished_monotonic = 10.0
    manager._trim_history()
    survivors = set(manager.jobs)
    # Limit 2 over 4 finished jobs: the two oldest completions (states 1
    # and 2) are evicted; the early submission that finished last stays.
    assert states[0].job_id in survivors
    assert states[3].job_id in survivors
    assert states[1].job_id not in survivors
    assert states[2].job_id not in survivors


# ----------------------------------------------------------------------
# Bug 2: wait() surviving a history trim via the request key
# ----------------------------------------------------------------------


def test_wait_resolves_trimmed_job_via_request_key(tmp_path) -> None:
    with running_service(tmp_path / "cache") as (svc, client):
        receipt = client.submit(
            cases=[
                SimJob(
                    fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED
                )
            ]
        )
        completed = client.wait(
            receipt.job_id, timeout=WAIT_TIMEOUT, request_key=receipt.request_key
        )
        assert completed["status"] == "completed"
        # Simulate the job aging out of the bounded history between polls.
        del svc.manager.jobs[receipt.job_id]
        # Without the request key the 404 is terminal...
        with pytest.raises(JobNotFoundError):
            client.wait(receipt.job_id, timeout=5.0)
        # ...but the receipt's key resolves the payload that the manager
        # retained past the trim, as a synthesized completed view.
        view = client.wait(
            receipt.job_id, timeout=WAIT_TIMEOUT, request_key=receipt.request_key
        )
        assert view["status"] == "completed"
        assert view["trimmed"] is True
        assert view["request_key"] == receipt.request_key
        assert view["result"] == completed["result"]


def test_manager_retains_results_past_history_trim() -> None:
    """The manager-level half of trim survival: ``result_for`` serves a
    finished request's payload even after its job left the store."""
    manager = JobManager(queue_limit=100, history_limit=4)
    (state,) = _submit_queued(manager, 1)
    state.status = JobStatus.COMPLETED
    state.result = {"answer": 42}
    state.finished_monotonic = 1.0
    manager._remember_result(state)
    del manager.jobs[state.job_id]
    assert manager.result_for(state.key) == {"answer": 42}
    # Malformed keys (anything but 64 hex digits) never hit the store.
    assert manager.result_for("../../etc/passwd") is None


# ----------------------------------------------------------------------
# Bug 3: durations from the monotonic clock
# ----------------------------------------------------------------------


class _SteppingClock:
    """A wall clock that steps one hour backwards on every read (an NTP
    correction caricature); the monotonic clock passes through."""

    def __init__(self) -> None:
        self._offset = 0.0

    def time(self) -> float:
        value = real_time.time() - self._offset
        self._offset += 3600.0
        return value

    def monotonic(self) -> float:
        return real_time.monotonic()


def test_durations_survive_wall_clock_steps(monkeypatch) -> None:
    """Queue wait, service time, elapsed and uptime must stay non-negative
    while the wall clock steps backwards between every read.

    Pre-fix, these were wall-clock differences and would come out around
    minus one hour per intervening read.
    """
    monkeypatch.setattr("repro.service.jobs.time", _SteppingClock())

    async def drive():
        manager = JobManager(workers=1, queue_limit=4, history_limit=8)
        await manager.start()
        state, _ = manager.submit(_request(TEST_SEED))
        deadline = real_time.monotonic() + WAIT_TIMEOUT
        while state.status not in (JobStatus.COMPLETED, JobStatus.FAILED):
            assert real_time.monotonic() < deadline, "job never finished"
            await asyncio.sleep(0.01)
        await manager.stop()
        return manager, state

    manager, state = asyncio.run(drive())
    assert state.status is JobStatus.COMPLETED
    # The wire form keeps wall-clock timestamps (stepped here, by design of
    # the fake), but every *duration* is monotonic and non-negative.
    view = state.view()
    assert view["elapsed_seconds"] >= 0.0
    assert state.started_monotonic >= state.submitted_monotonic
    assert state.finished_monotonic >= state.started_monotonic
    assert manager.uptime_seconds() >= 0.0
    assert manager._service_time_sum >= 0.0
    accounting = manager.scheduler.accounting(state.tenant)
    queue_wait = accounting.queue_wait.snapshot()
    service_time = accounting.service_time.snapshot()
    assert queue_wait["count"] == 1
    assert queue_wait["mean"] >= 0.0
    assert service_time["count"] == 1
    assert service_time["mean"] >= 0.0
    # Retry-After hints are derived from the recorded service times and
    # must stay in their documented [1, 60] clamp.
    assert 1 <= manager.retry_after_hint(3) <= 60

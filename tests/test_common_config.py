"""Tests for the configuration dataclasses (Table 1 defaults and validation)."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DisambiguationModel,
    ELSQConfig,
    ERTConfig,
    ERTKind,
    FMCConfig,
    InterconnectConfig,
    LoadQueueScheme,
    MemoryEngineConfig,
    MemoryHierarchyConfig,
    SVWConfig,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_table1_l1_geometry(self):
        l1 = MemoryHierarchyConfig().l1
        assert l1.size_bytes == 32 * 1024
        assert l1.associativity == 4
        assert l1.line_size == 32
        assert l1.latency == 1
        assert l1.num_sets == 256
        assert l1.num_lines == 1024

    def test_table1_l2_geometry(self):
        l2 = MemoryHierarchyConfig().l2
        assert l2.size_bytes == 2 * 1024 * 1024
        assert l2.latency == 10

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=32 * 1024, associativity=4, line_size=48, latency=1)

    def test_rejects_inconsistent_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, associativity=4, line_size=32, latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=3 * 32 * 128, associativity=1, line_size=32, latency=1)


class TestMemoryHierarchyConfig:
    def test_table1_defaults(self):
        config = MemoryHierarchyConfig()
        assert config.main_memory_latency == 400
        assert config.cache_ports == 2

    def test_with_l2_size(self):
        resized = MemoryHierarchyConfig().with_l2_size(8 * 1024 * 1024)
        assert resized.l2.size_bytes == 8 * 1024 * 1024
        assert resized.l1.size_bytes == 32 * 1024

    def test_with_l1(self):
        resized = MemoryHierarchyConfig().with_l1(64 * 1024, 8)
        assert resized.l1.size_bytes == 64 * 1024
        assert resized.l1.associativity == 8

    def test_rejects_l2_smaller_line_than_l1(self):
        small_line_l2 = CacheConfig(
            size_bytes=2 * 1024 * 1024, associativity=4, line_size=16, latency=10, name="L2"
        )
        with pytest.raises(ConfigurationError):
            MemoryHierarchyConfig(l2=small_line_l2)


class TestCoreConfig:
    def test_table1_defaults(self):
        core = CoreConfig()
        assert core.fetch_width == 4
        assert core.rob_size == 64
        assert core.int_issue_queue_entries == 40
        assert core.int_registers == 96
        assert core.load_queue_entries == 32
        assert core.store_queue_entries == 24

    def test_rejects_zero_rob(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(rob_size=0)


class TestMemoryEngineConfig:
    def test_table1_defaults(self):
        engine = MemoryEngineConfig()
        assert engine.max_instructions == 128
        assert engine.max_loads == 64
        assert engine.max_stores == 32
        assert engine.issue_width == 2

    def test_rejects_loads_exceeding_instructions(self):
        with pytest.raises(ConfigurationError):
            MemoryEngineConfig(max_instructions=32, max_loads=64)


class TestInterconnectConfig:
    def test_round_trip(self):
        assert InterconnectConfig().round_trip_latency == 8

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(cp_to_mp_latency=-1)


class TestERTConfig:
    def test_default_is_10_bit_hash(self):
        config = ERTConfig()
        assert config.kind is ERTKind.HASH
        assert config.hash_bits == 10
        assert config.hash_entries == 1024

    def test_hash_storage_is_2kb_per_table(self):
        # 1024 entries x 16 bits = 2 KB, matching the paper's 4 KB total.
        assert ERTConfig().storage_bytes() == 2 * 1024

    def test_line_storage_requires_l1(self):
        config = ERTConfig(kind=ERTKind.LINE)
        with pytest.raises(ConfigurationError):
            config.storage_bytes()
        l1 = MemoryHierarchyConfig().l1
        assert config.storage_bytes(l1) == l1.num_lines * 2

    def test_rejects_bad_hash_bits(self):
        with pytest.raises(ConfigurationError):
            ERTConfig(hash_bits=0)


class TestSVWConfig:
    def test_default(self):
        config = SVWConfig()
        assert config.ssbf_index_bits == 10
        assert config.ssbf_entries == 1024
        assert config.check_stores is False

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            SVWConfig(ssbf_index_bits=40)


class TestELSQConfig:
    def test_defaults_match_paper(self):
        config = ELSQConfig()
        assert config.hl_load_entries == 32
        assert config.hl_store_entries == 24
        assert config.num_epochs == 16
        assert config.epoch_load_entries == 64
        assert config.epoch_store_entries == 32
        assert config.disambiguation is DisambiguationModel.FULL

    def test_svw_with_rlac_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ELSQConfig(
                load_queue_scheme=LoadQueueScheme.SVW_REEXECUTION,
                disambiguation=DisambiguationModel.RESTRICTED_LAC,
            )


class TestDisambiguationModel:
    def test_restriction_flags(self):
        assert DisambiguationModel.RESTRICTED_SAC.restricts_store_address_calculation
        assert not DisambiguationModel.RESTRICTED_SAC.restricts_load_address_calculation
        assert DisambiguationModel.RESTRICTED_LAC.restricts_load_address_calculation
        assert DisambiguationModel.RESTRICTED_SAC_LAC.restricts_store_address_calculation
        assert DisambiguationModel.RESTRICTED_SAC_LAC.restricts_load_address_calculation
        assert not DisambiguationModel.FULL.restricts_store_address_calculation


class TestFMCConfig:
    def test_window_size(self):
        config = FMCConfig()
        assert config.num_memory_engines == 16
        assert config.max_in_flight_instructions == 64 + 16 * 128

"""Tests for Store Vulnerability Window re-execution (Section 3.5 / 5.6)."""

from __future__ import annotations


from repro.common.config import SVWConfig
from repro.common.stats import StatsRegistry
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.core.svw import StoreVulnerabilityWindow


def make_store(seq: int, address: int, commit: int) -> StoreRecord:
    return StoreRecord(
        seq=seq,
        address=address,
        size=8,
        decode_cycle=0,
        addr_ready_cycle=1,
        data_ready_cycle=1,
        commit_cycle=commit,
        locality=Locality.HIGH,
    )


def make_load(
    seq: int,
    address: int,
    issue: int,
    *,
    forwarded_from: int = None,
    unresolved: bool = False,
) -> LoadRecord:
    return LoadRecord(
        seq=seq,
        address=address,
        size=8,
        decode_cycle=0,
        issue_cycle=issue,
        locality=Locality.HIGH,
        forwarded_from=forwarded_from,
        unresolved_older_store_at_issue=unresolved,
    )


class TestSVW:
    def test_no_reexecution_without_matching_store(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), StatsRegistry())
        decision = svw.check_load(make_load(5, 0x100, issue=10))
        assert not decision.reexecute

    def test_reexecution_when_older_store_commits_after_load_issue(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), StatsRegistry())
        # Store 3 commits at cycle 50 -- after the load issued at 10, so the
        # load may have read stale data from the cache.
        svw.store_committed(make_store(3, 0x100, commit=50))
        decision = svw.check_load(make_load(5, 0x100, issue=10))
        assert decision.reexecute

    def test_no_reexecution_when_store_committed_before_load_issue(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), StatsRegistry())
        svw.store_committed(make_store(3, 0x100, commit=5))
        decision = svw.check_load(make_load(5, 0x100, issue=10))
        assert not decision.reexecute

    def test_forwarded_load_protected_by_forwarding_store(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), StatsRegistry())
        svw.store_committed(make_store(3, 0x100, commit=50))
        decision = svw.check_load(make_load(5, 0x100, issue=10, forwarded_from=3))
        assert not decision.reexecute

    def test_forwarded_load_vulnerable_to_younger_intervening_store(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), StatsRegistry())
        svw.store_committed(make_store(3, 0x100, commit=40))
        svw.store_committed(make_store(4, 0x100, commit=50))
        decision = svw.check_load(make_load(6, 0x100, issue=10, forwarded_from=3, unresolved=True))
        assert decision.reexecute

    def test_aliasing_causes_false_reexecution(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=2), StatsRegistry())
        aliased = 0x100 + (4 << 3)
        svw.store_committed(make_store(3, aliased, commit=50))
        decision = svw.check_load(make_load(5, 0x100, issue=10))
        assert decision.reexecute, "a tiny SSBF must alias"

    def test_more_bits_avoid_that_alias(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=16), StatsRegistry())
        aliased = 0x100 + (4 << 3)
        svw.store_committed(make_store(3, aliased, commit=50))
        assert not svw.check_load(make_load(5, 0x100, issue=10)).reexecute

    def test_check_stores_filter_suppresses_reexecution(self):
        config = SVWConfig(ssbf_index_bits=12, check_stores=True)
        svw = StoreVulnerabilityWindow(config, StatsRegistry())
        svw.store_committed(make_store(3, 0x100, commit=50))
        blind_like = svw.check_load(make_load(5, 0x100, issue=10, unresolved=False))
        assert not blind_like.reexecute
        vulnerable = svw.check_load(make_load(6, 0x100, issue=10, unresolved=True))
        assert vulnerable.reexecute

    def test_reexecution_counter(self):
        stats = StatsRegistry()
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=12), stats)
        svw.store_committed(make_store(3, 0x100, commit=50))
        svw.check_load(make_load(5, 0x100, issue=10))
        assert stats.value("svw.reexecutions") == 1
        assert stats.value("ssbf.lookups") == 1

    def test_youngest_store_committed_before(self):
        svw = StoreVulnerabilityWindow(SVWConfig(), StatsRegistry())
        svw.store_committed(make_store(1, 0x100, commit=10))
        svw.store_committed(make_store(2, 0x200, commit=20))
        svw.store_committed(make_store(3, 0x300, commit=30))
        assert svw.youngest_store_committed_before(25) == 2
        assert svw.youngest_store_committed_before(5) == -1

    def test_bucket_helpers(self):
        svw = StoreVulnerabilityWindow(SVWConfig(ssbf_index_bits=10), StatsRegistry())
        assert svw.ssbf_entries == 1024
        assert svw.bucket_entry(0x100) is None
        svw.store_committed(make_store(7, 0x100, commit=10))
        assert svw.bucket_entry(0x100) == 7
        assert svw.bucket_of(0x100) == svw.bucket_of(0x104)

"""Property/fuzz tests for the engine pair.

Deterministic pseudo-random draws (no external fuzzing dependency) sample
machine configurations and workload descriptions inside their validation
envelopes and push each draw through both engines, asserting

* bit-identical results (the differential property, on configurations no
  hand-written matrix would think of),
* structural invariants that must hold for *any* valid machine: IPC bounded
  by the commit width, every counter non-negative, cycle counts positive,
  and
* monotonicity: simulating a longer prefix of the same instruction stream
  can never finish earlier than a shorter prefix.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import DisambiguationModel, ERTKind, LoadQueueScheme
from repro.isa.trace import Trace
from repro.sim.configs import MachineConfig, fmc_central, fmc_elsq, ooo_64, ooo_64_svw
from repro.sim.engine import engine_by_name
from repro.workloads.base import MemoryRegion, SyntheticWorkload, WorkloadParameters

#: Number of fuzz draws; each runs reference + fast once.
DRAWS = 10

INSTRUCTIONS = 900


def _draw_workload(rng: random.Random, index: int) -> WorkloadParameters:
    """A random workload description bounded by the validation rules."""
    load_fraction = rng.uniform(0.05, 0.4)
    store_fraction = rng.uniform(0.02, min(0.3, 0.95 - load_fraction))
    branch_fraction = rng.uniform(0.02, min(0.25, 0.98 - load_fraction - store_fraction))
    regions = [
        MemoryRegion(
            name="hot",
            size_bytes=rng.choice((8, 16, 32)) * 1024,
            weight=rng.uniform(0.3, 0.8),
            pattern=rng.choice(("stream", "random")),
        ),
        MemoryRegion(
            name="far",
            size_bytes=rng.choice((4, 8, 16)) * 1024 * 1024,
            weight=rng.uniform(0.01, 0.2),
            pattern=rng.choice(("stream", "random")),
            is_far=True,
        ),
    ]
    if rng.random() < 0.5:
        regions.append(
            MemoryRegion(
                name="warm",
                size_bytes=rng.choice((128, 256, 512)) * 1024,
                weight=rng.uniform(0.05, 0.4),
                pattern="random",
            )
        )
    return WorkloadParameters(
        name=f"fuzz_{index}",
        load_fraction=load_fraction,
        store_fraction=store_fraction,
        branch_fraction=branch_fraction,
        fp_fraction=rng.uniform(0.0, 0.3),
        regions=tuple(regions),
        chased_load_fraction=rng.uniform(0.0, 0.15),
        chased_store_fraction=rng.uniform(0.0, 0.05),
        forwarding_fraction=rng.uniform(0.0, 0.2),
        forwarding_distance_mean=rng.uniform(2.0, 24.0),
        miss_consumer_fraction=rng.uniform(0.0, 0.15),
        dependence_distance_mean=rng.uniform(2.0, 12.0),
        branch_mispredict_rate=rng.uniform(0.0, 0.08),
        mispredict_depends_on_miss_fraction=rng.uniform(0.0, 0.4),
        phase_length=rng.choice((0, 0, 500, 1500)),
        memory_phase_fraction=rng.uniform(0.2, 0.8),
        seed=rng.randrange(1_000),
    )


def _draw_machine(rng: random.Random) -> MachineConfig:
    """A random valid machine: conventional, SVW, central or an ELSQ variant."""
    choice = rng.random()
    if choice < 0.15:
        return ooo_64()
    if choice < 0.3:
        return ooo_64_svw(ssbf_index_bits=rng.choice((6, 8, 10, 12)))
    if choice < 0.4:
        return fmc_central()
    load_queue_scheme = rng.choice(
        (LoadQueueScheme.ASSOCIATIVE, LoadQueueScheme.SVW_REEXECUTION)
    )
    if load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION:
        # SVW removes the load queue; restricted LAC would remove it twice.
        disambiguation = rng.choice(
            (DisambiguationModel.FULL, DisambiguationModel.RESTRICTED_SAC)
        )
    else:
        disambiguation = rng.choice(list(DisambiguationModel))
    return fmc_elsq(
        ert_kind=rng.choice((ERTKind.HASH, ERTKind.LINE)),
        hash_bits=rng.choice((6, 8, 10, 12)),
        store_queue_mirror=rng.random() < 0.5,
        disambiguation=disambiguation,
        load_queue_scheme=load_queue_scheme,
        ssbf_index_bits=rng.choice((8, 10)),
        epoch_load_entries=rng.choice((32, 64, 128)),
        epoch_store_entries=rng.choice((16, 32, 64)),
        num_epochs=rng.choice((2, 4, 8, 16, 32)),
        locality_threshold_cycles=rng.choice((5, 15, 30, 60, 90)),
    )


def _commit_width(machine: MachineConfig) -> int:
    from repro.sim.configs import MachineKind

    if machine.kind is MachineKind.CONVENTIONAL:
        return machine.core.commit_width
    return machine.fmc.cache_processor.commit_width


@pytest.mark.parametrize("draw", range(DRAWS))
def test_fuzzed_configurations_are_identical_and_sane(draw: int) -> None:
    rng = random.Random(0xE15C0 + draw)
    workload = _draw_workload(rng, draw)
    machine = _draw_machine(rng)
    trace = SyntheticWorkload(workload, seed=rng.randrange(10_000)).generate(INSTRUCTIONS)

    reference = engine_by_name("reference").run(machine, trace)
    fast = engine_by_name("fast").run(machine, trace)

    # Differential property: bit-identical results.
    assert fast.to_dict() == reference.to_dict(), (workload.name, machine.name)

    # Invariants that must hold for any valid machine/workload pair.
    assert fast.cycles >= 1
    assert fast.committed_instructions == INSTRUCTIONS
    assert fast.ipc <= _commit_width(machine)
    for name, value in fast.stats.counters.items():
        assert value >= 0, name
    if fast.high_locality_fraction is not None:
        assert 0.0 <= fast.high_locality_fraction <= 1.0
    if fast.mean_allocated_epochs is not None:
        assert fast.mean_allocated_epochs >= 0.0


@pytest.mark.parametrize("draw", range(3))
def test_cycles_are_monotone_in_trace_length(draw: int) -> None:
    """A longer prefix of the same stream never commits earlier."""
    rng = random.Random(0xCAFE + draw)
    workload = _draw_workload(rng, 100 + draw)
    machine = _draw_machine(rng)
    full = SyntheticWorkload(workload, seed=13).generate(INSTRUCTIONS)
    fast = engine_by_name("fast")
    previous_cycles = 0
    for length in (INSTRUCTIONS // 3, 2 * INSTRUCTIONS // 3, INSTRUCTIONS):
        # Keep the region footprints: Trace.prefix drops them, and the cache
        # warm-up must see the same steady state for the comparison to mean
        # anything.
        prefix = Trace(full.instructions()[:length], name=full.name, regions=full.regions)
        result = fast.run(machine, prefix)
        assert result.cycles >= previous_cycles
        previous_cycles = result.cycles

"""Differential verification: the fast engine is bit-identical to reference.

The ``fast`` engine (:mod:`repro.sim.engine.fast`) re-implements the
reference per-instruction walk with interpreter-friendly data structures.
The only acceptable difference is wall-clock time: every
:class:`~repro.uarch.result.CoreResult` field -- cycles, committed
instructions, **every counter**, every histogram bin, and the derived floats
-- must match the ``reference`` engine bit for bit.

The matrix runs every workload family and both quick SPEC-like suites, each
under at least three seeds, rotating through all seven paper machine
configurations so that every LSQ organisation's code path (conventional,
SVW, central, ELSQ line/hash, restricted SAC) is exercised by both engines.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.sim.configs import (
    MachineConfig,
    fmc_central,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    fmc_line,
    ooo_64,
    ooo_64_svw,
)
from repro.sim.engine import engine_by_name
from repro.workloads.base import WorkloadParameters
from repro.workloads.families import FAMILY_NAMES, family_suite
from repro.workloads.suite import generate_member_trace, quick_fp_suite, quick_int_suite

#: Trace length: long enough for epoch turnover, SVW windows and ERT
#: population; short enough that the reference runs stay affordable.
INSTRUCTIONS = 1_500

#: At least three seeds per workload family (satellite requirement).
SEEDS = (2008, 7, 123)

#: Every paper configuration, in rotation order.
PAPER_MACHINES: Tuple[MachineConfig, ...] = (
    ooo_64(),
    ooo_64_svw(),
    fmc_central(),
    fmc_line(),
    fmc_hash(),
    fmc_hash_svw(),
    fmc_hash_rsac(),
)


def _family_cases() -> List[Tuple[str, WorkloadParameters, int, MachineConfig]]:
    """Every family x seed, rotating members and machines deterministically."""
    cases = []
    index = 0
    for family_index, family in enumerate(FAMILY_NAMES):
        members = list(family_suite(family))
        for seed_index, seed in enumerate(SEEDS):
            member = members[(family_index + seed_index) % len(members)]
            machine = PAPER_MACHINES[index % len(PAPER_MACHINES)]
            cases.append((family, member, seed, machine))
            index += 1
    return cases


def _suite_cases() -> List[Tuple[str, WorkloadParameters, int, MachineConfig]]:
    """Every quick-suite member under the baseline and the headline machine."""
    cases = []
    for suite in (quick_fp_suite(), quick_int_suite()):
        for member_index, member in enumerate(suite):
            for machine in (ooo_64(), fmc_hash()):
                seed = SEEDS[member_index % len(SEEDS)]
                cases.append((suite.name, member, seed, machine))
    return cases


ALL_CASES = _family_cases() + _suite_cases()


def test_rotation_covers_every_paper_machine() -> None:
    """The family matrix alone exercises all seven paper configurations."""
    used = {machine.name for _, _, _, machine in _family_cases()}
    assert used == {machine.name for machine in PAPER_MACHINES}


@pytest.mark.parametrize(
    "scope,member,seed,machine",
    ALL_CASES,
    ids=[f"{scope}-{member.name}-s{seed}-{machine.name}" for scope, member, seed, machine in ALL_CASES],
)
def test_fast_engine_is_bit_identical(scope, member, seed, machine) -> None:
    trace = generate_member_trace(member, INSTRUCTIONS, seed=seed)
    reference = engine_by_name("reference").run(machine, trace)
    fast = engine_by_name("fast").run(machine, trace)

    # Compare the lowered form first: on mismatch pytest shows exactly which
    # counter / histogram / field drifted.
    assert fast.to_dict() == reference.to_dict()
    # And the full dataclass equality, covering every field at once.
    assert fast == reference

    # Spell the satellite requirement out explicitly: every counter (not just
    # IPC) is bit-identical, and both engines produced the same counter set.
    assert set(fast.stats.counters) == set(reference.stats.counters)
    for name, value in reference.stats.counters.items():
        assert fast.stats.counters[name] == value, name


def _policy_cases() -> List[Tuple[str, MachineConfig]]:
    """Every timing replacement policy on the baseline and headline machines."""
    from repro.memory.replacement import TIMING_POLICY_NAMES

    return [
        (policy, machine.with_policy(policy))
        for policy in TIMING_POLICY_NAMES
        for machine in (ooo_64(), fmc_hash())
    ]


@pytest.mark.parametrize(
    "policy,machine",
    _policy_cases(),
    ids=[f"{policy}-{machine.name}" for policy, machine in _policy_cases()],
)
def test_fast_engine_is_bit_identical_per_policy(policy, machine) -> None:
    """The engines agree for every *replacement policy*, not just LRU.

    The engines never touch replacement state directly (victims come from
    the policy object), but the fast engine's warm-up memoisation captures
    and restores policy state -- this matrix pins that protocol for each
    implementation in the registry.
    """
    assert machine.hierarchy.l1.replacement_policy == policy
    member = list(family_suite("pointer_chase"))[0]
    trace = generate_member_trace(member, INSTRUCTIONS, seed=SEEDS[0])
    reference = engine_by_name("reference").run(machine, trace)
    fast = engine_by_name("fast").run(machine, trace)
    assert fast.to_dict() == reference.to_dict()
    assert fast == reference


@pytest.mark.parametrize(
    "machine", [ooo_64(), fmc_hash()], ids=lambda machine: machine.name
)
def test_storage_form_never_changes_the_result(machine) -> None:
    """fast-on-columns == fast-on-objects == reference, for the same stream.

    Generated traces are natively column-backed; a trace rebuilt from its
    materialised instruction objects (deriving fresh columns on demand) and
    a trace whose objects were never materialised must produce the same
    CoreResult under both engines.
    """
    from repro.isa.trace import Trace

    member = list(quick_int_suite())[0]
    columnar = generate_member_trace(member, INSTRUCTIONS, seed=SEEDS[0])
    object_built = Trace(
        list(columnar), name=columnar.name, regions=columnar.regions
    )
    fresh_columnar = generate_member_trace(member, INSTRUCTIONS, seed=SEEDS[0])
    assert fresh_columnar._instructions is None  # objects never materialised

    results = [
        engine_by_name("fast").run(machine, fresh_columnar),
        engine_by_name("fast").run(machine, object_built),
        engine_by_name("reference").run(machine, object_built),
        engine_by_name("reference").run(machine, columnar),
    ]
    for other in results[1:]:
        assert other.to_dict() == results[0].to_dict()
        assert other == results[0]

"""Tests for the columnar trace layer (repro.isa.columns).

Covers the PR's acceptance surface: columnar <-> object conversion is
faithful for every column (fuzzed streams), the generator's native columnar
emission is bit-identical to the forced object path, zero-copy buffer-backed
columns behave like array-backed ones, and streams outside the columnar
envelope (more than four sources) fall back to the reference walk instead of
mis-simulating.
"""

from __future__ import annotations

import random

import pytest
from _helpers import TEST_SEED

from repro.common.errors import TraceError
from repro.isa.columns import COLUMN_LAYOUT, MAX_SRCS, TraceColumns
from repro.isa.instruction import InstrClass, Instruction
from repro.isa.trace import Trace
from repro.sim.configs import fmc_hash, ooo_64
from repro.sim.simulator import Simulator
from repro.trace import trace_to_bytes
from repro.trace.format import trace_from_buffer
from repro.workloads.base import TRACE_OBJECTS_ENV
from repro.workloads.families import family_suites
from repro.workloads.suite import generate_member_trace, quick_fp_suite, quick_int_suite


def _fuzzed_instructions(rng: random.Random, count: int) -> list:
    """A random stream exercising every field and edge value of the layout."""
    instructions = []
    for seq in range(count):
        iclass = rng.choice(list(InstrClass))
        dest = rng.choice([None, 0, 5, 63, 64, 127])
        srcs = tuple(
            rng.randrange(128) for _ in range(rng.randrange(MAX_SRCS + 1))
        )
        if iclass in (InstrClass.LOAD, InstrClass.STORE):
            if iclass is InstrClass.STORE:
                dest = None
            elif dest is None:
                dest = rng.randrange(128)
            instructions.append(
                Instruction(
                    seq=seq,
                    iclass=iclass,
                    dest=dest,
                    srcs=srcs,
                    address=rng.choice([0, 8, 1 << 20, (1 << 44) + 16]),
                    size=rng.choice([1, 4, 8, 64]),
                )
            )
        elif iclass is InstrClass.BRANCH:
            instructions.append(
                Instruction(
                    seq=seq,
                    iclass=iclass,
                    dest=None,
                    srcs=srcs,
                    mispredicted=rng.random() < 0.5,
                )
            )
        else:
            instructions.append(
                Instruction(
                    seq=seq,
                    iclass=iclass,
                    dest=dest,
                    srcs=srcs,
                    latency=rng.choice([None, 0, 1, 17, 4000]),
                )
            )
    return instructions


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_columnar_object_round_trip_is_faithful(seed: int) -> None:
    """columns(objects) -> objects reproduces every field of every record."""
    instructions = _fuzzed_instructions(random.Random(seed), 300)
    columns = TraceColumns.from_instructions(instructions)
    assert len(columns) == len(instructions)
    assert columns.to_instructions() == instructions
    # Single-row materialisation agrees with the bulk path.
    for seq in (0, len(instructions) // 2, len(instructions) - 1):
        assert columns.instruction(seq) == instructions[seq]


def test_generated_traces_are_column_backed_and_lazy() -> None:
    member = list(quick_int_suite())[0]
    trace = generate_member_trace(member, 400, seed=TEST_SEED)
    assert trace._instructions is None  # nothing materialised yet
    assert len(trace) == 400
    assert trace.statistics().num_instructions == 400
    assert trace._instructions is None  # statistics ran off the columns
    materialized = list(trace)
    assert [instr.seq for instr in materialized] == list(range(400))


@pytest.mark.parametrize(
    "member_factory",
    [
        lambda: list(quick_int_suite())[0],
        lambda: list(quick_fp_suite())[1],
        lambda: list(family_suites()["phased"])[0],
        lambda: list(family_suites()["pointer_chase"])[0],
    ],
    ids=["int", "fp", "phased", "pointer_chase"],
)
def test_columnar_generation_matches_forced_object_path(
    member_factory, monkeypatch: pytest.MonkeyPatch
) -> None:
    """The object-path knob changes storage eagerness, never the stream."""
    member = member_factory()
    columnar = generate_member_trace(member, 700, seed=TEST_SEED)
    monkeypatch.setenv(TRACE_OBJECTS_ENV, "1")
    eager = generate_member_trace(member, 700, seed=TEST_SEED)
    assert eager._instructions is not None  # the knob materialised eagerly
    assert list(columnar) == list(eager)
    assert columnar.regions == eager.regions
    assert columnar.columns() == eager.columns()


def test_object_built_trace_derives_identical_columns() -> None:
    """Trace(list) -> columns() -> objects round-trips through the Trace API."""
    member = list(quick_int_suite())[1]
    generated = generate_member_trace(member, 300, seed=TEST_SEED)
    rebuilt = Trace(list(generated), name=generated.name, regions=generated.regions)
    assert rebuilt.columns() == generated.columns()
    result_columns = Simulator(fmc_hash()).run_trace(generated)
    result_objects = Simulator(fmc_hash()).run_trace(rebuilt)
    assert result_columns == result_objects


def test_buffer_backed_columns_simulate_identically() -> None:
    """Zero-copy memoryview columns drive the engine bit-identically."""
    member = list(quick_fp_suite())[0]
    trace = generate_member_trace(member, 500, seed=TEST_SEED)
    blob = trace_to_bytes(trace)
    view_trace = trace_from_buffer(blob).trace
    from array import array

    assert not isinstance(view_trace.columns().iclass, array)  # really zero-copy
    assert list(view_trace) == list(trace)
    for machine in (fmc_hash(), ooo_64()):
        assert Simulator(machine).run_trace(view_trace) == Simulator(machine).run_trace(trace)


def test_buffer_backed_columns_survive_pickling() -> None:
    import pickle

    member = list(quick_int_suite())[0]
    trace = generate_member_trace(member, 120, seed=TEST_SEED)
    view_trace = trace_from_buffer(trace_to_bytes(trace)).trace
    clone = pickle.loads(pickle.dumps(view_trace))
    assert list(clone) == list(trace)


def test_too_many_sources_rejected_by_columns() -> None:
    crowded = [Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, srcs=(1, 2, 3, 4, 5))]
    with pytest.raises(TraceError, match="at most 4"):
        TraceColumns.from_instructions(crowded)


@pytest.mark.parametrize(
    "oddball",
    [
        # More than four sources: rejected by the columnar layout.
        Instruction(seq=1, iclass=InstrClass.INT_ALU, dest=2, srcs=(1, 1, 1, 1, 1)),
        # Access size above the u16 column: overflows array.append.
        Instruction(seq=1, iclass=InstrClass.LOAD, dest=2, srcs=(1,), address=0, size=70_000),
        # Latency above the u32 column.
        Instruction(seq=1, iclass=InstrClass.INT_ALU, dest=2, srcs=(1,), latency=2**32),
    ],
    ids=["five-sources", "huge-size", "huge-latency"],
)
def test_fast_engine_falls_back_for_uncolumnable_traces(oddball) -> None:
    """Streams outside the columnar envelope (too many sources, fields
    overflowing the fixed column widths) must still simulate under the
    default engine, bit-identically, via the reference walk."""
    trace = Trace(
        [
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, srcs=()),
            oddball,
            Instruction(seq=2, iclass=InstrClass.LOAD, dest=3, srcs=(2,), address=64),
        ],
        name="oddball",
    )
    fast = Simulator(ooo_64()).run_trace(trace)
    reference = Simulator(ooo_64().with_engine("reference")).run_trace(trace)
    assert fast == reference


def test_column_layout_is_stable() -> None:
    """The serialised column order is a format contract; changing it requires
    a trace-format version bump (this test is the tripwire)."""
    assert [name for name, _tc, _sz in COLUMN_LAYOUT] == [
        "iclass", "dest", "src0", "src1", "src2", "src3",
        "address", "size", "flags", "latency",
    ]
    assert sum(size for _n, _tc, size in COLUMN_LAYOUT) == 21

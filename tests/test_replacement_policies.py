"""The replacement-policy registry: contracts every implementation obeys.

Three layers of guarantees:

* **Registry contract** -- every policy respects locks (``victim()`` never
  names a locked way, an all-locked set yields ``None``), survives
  capture/restore round-trips, and validates way indices.  The lock
  property is checked under *randomised* access/lock interleavings shared
  across all six implementations, OPT included (driven by a deterministic
  fake oracle).
* **Cache integration** -- the policy is part of cache identity: it flows
  into the job content address, the request coalescing key, and the CLI
  campaign; ``lines_locked`` counts first-lock transitions only.
* **MRC profiler** -- Belady's OPT lower-bounds every policy on every
  workload family, and the LRU/OPT curves are non-increasing in capacity.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import StatsRegistry
from repro.exp.request import JobRequest
from repro.exp.runner import SimJob, job_key
from repro.memory.cache import SetAssociativeCache
from repro.memory.replacement import (
    POLICY_NAMES,
    TIMING_POLICY_NAMES,
    create_policy,
    validate_policy_name,
)
from repro.sim.configs import fmc_hash
from repro.workloads.suite import quick_fp_suite

ASSOCIATIVITY = 4


def _make_policy(name: str, associativity: int = ASSOCIATIVITY):
    """Instantiate any registry policy; OPT gets a deterministic fake oracle."""
    if name == "opt":
        # Reuse distance proportional to the line number: line 0 is reused
        # soonest, high lines latest -- deterministic and discriminating.
        return create_policy(name, associativity, next_use=lambda line: float(line))
    return create_policy(name, associativity)


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------


def test_registry_names_and_validation() -> None:
    assert set(TIMING_POLICY_NAMES) < set(POLICY_NAMES)
    assert "opt" in POLICY_NAMES and "opt" not in TIMING_POLICY_NAMES
    for name in POLICY_NAMES:
        assert validate_policy_name(name) == name
    with pytest.raises(ConfigurationError):
        validate_policy_name("mru")
    with pytest.raises(ConfigurationError):
        validate_policy_name("opt", timing_only=True)
    with pytest.raises(ConfigurationError):
        create_policy("opt", ASSOCIATIVITY)  # no oracle -> offline only


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_victim_never_locked_under_random_interleavings(name: str) -> None:
    """Shared lock-safety property, same harness for every implementation."""
    rng = random.Random(hash(name) & 0xFFFF)
    policy = _make_policy(name)
    locked = set()
    for step in range(600):
        action = rng.random()
        way = rng.randrange(ASSOCIATIVITY)
        if action < 0.4:
            policy.touch(way)
        elif action < 0.6:
            policy.insert(way, line=rng.randrange(64))
        elif action < 0.8:
            policy.lock(way)
            locked.add(way)
        elif locked:
            unlock = rng.choice(sorted(locked))
            policy.unlock(unlock)
            locked.discard(unlock)
        victim = policy.victim()
        if len(locked) == ASSOCIATIVITY:
            assert victim is None
        else:
            assert victim is not None
            assert victim not in locked, f"{name} evicted locked way at step {step}"


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_all_locked_set_yields_no_victim(name: str) -> None:
    policy = _make_policy(name)
    for way in range(ASSOCIATIVITY):
        policy.lock(way)
    assert policy.victim() is None
    policy.unlock(2)
    assert policy.victim() == 2


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_capture_restore_round_trip(name: str) -> None:
    """Restoring a snapshot reproduces the victim sequence exactly."""
    rng = random.Random(99)
    policy = _make_policy(name)
    for _ in range(200):
        if rng.random() < 0.5:
            policy.touch(rng.randrange(ASSOCIATIVITY))
        else:
            policy.insert(rng.randrange(ASSOCIATIVITY), line=rng.randrange(64))
    snapshot = policy.capture()
    before = policy.victim()
    # Perturb, then restore: the victim decision must come back.
    for way in range(ASSOCIATIVITY):
        policy.insert(way, line=way)
    restored = _make_policy(name)
    restored.restore(snapshot)
    assert restored.victim() == before


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_way_validation(name: str) -> None:
    policy = _make_policy(name)
    with pytest.raises(SimulationError):
        policy.touch(ASSOCIATIVITY)
    with pytest.raises(SimulationError):
        policy.lock(-1)


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------


def _tiny_cache(policy: str = "lru"):
    config = CacheConfig(
        size_bytes=2 * 32 * 4,
        associativity=2,
        line_size=32,
        latency=1,
        name="l1",
        replacement_policy=policy,
    )
    stats = StatsRegistry()
    return SetAssociativeCache(config, stats), stats


def test_lines_locked_counts_first_lock_transitions_only() -> None:
    """Regression: a second owner on a resident line must not double-count.

    Pre-fix, ``lock_line`` bumped ``lines_locked`` once per *owner*, so a
    line shared by two epochs inflated the occupancy statistic even though
    only one line was pinned.
    """
    cache, stats = _tiny_cache()
    cache.access(0)
    cache.lock_line(0, owner=1)
    cache.lock_line(0, owner=2)  # same line, second owner: no new lock
    assert stats.value("l1.lines_locked") == 1
    cache.access(4096)
    cache.lock_line(4096, owner=1)
    assert stats.value("l1.lines_locked") == 2


def test_unknown_policy_rejected_at_config_time() -> None:
    with pytest.raises(ConfigurationError):
        CacheConfig(
            size_bytes=1024,
            associativity=2,
            line_size=32,
            latency=1,
            name="l1",
            replacement_policy="random",
        )


@pytest.mark.parametrize("policy", TIMING_POLICY_NAMES)
def test_cache_runs_under_every_timing_policy(policy: str) -> None:
    cache, stats = _tiny_cache(policy)
    for address in (0, 64, 128, 0, 192, 256, 64):
        cache.access(address)
    assert stats.value("l1.hits") + stats.value("l1.misses") == 7
    assert stats.value("l1.misses") >= 5  # five distinct lines were touched


def test_policy_changes_the_job_content_address() -> None:
    member = quick_fp_suite().members[0]
    base = SimJob(fmc_hash(), member, 1_000, 1)
    arc = SimJob(fmc_hash().with_policy("arc"), member, 1_000, 1)
    assert job_key(base) != job_key(arc)
    # with_policy is identity-preserving for the default.
    assert job_key(SimJob(fmc_hash().with_policy("lru"), member, 1_000, 1)) == job_key(base)


def test_policy_changes_the_request_coalescing_key() -> None:
    base = JobRequest(figure="fig7")
    assert JobRequest(figure="fig7", policy="arc").key() != base.key()
    # None means the LRU default: both spellings coalesce.
    assert JobRequest(figure="fig7", policy="lru").key() == base.key()
    with pytest.raises(ConfigurationError):
        JobRequest(figure="fig7", policy="opt").normalized()  # offline only
    with pytest.raises(ConfigurationError):
        member = quick_fp_suite().members[0]
        JobRequest(cases=(SimJob(fmc_hash(), member, 1_000, 1),), policy="arc")


def test_request_policy_survives_the_wire() -> None:
    request = JobRequest(figure="fig7", policy="2q")
    assert JobRequest.from_dict(request.to_dict()) == request
    assert JobRequest.from_dict({"figure": "fig7"}).policy is None  # old payloads

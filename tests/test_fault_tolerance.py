"""Satellite fault-tolerance regressions: cache quarantine, client
backoff, and the load fleet's tolerated-failure allowance.

* A corrupt cache entry (torn write, wrong type, unparseable payload) is
  quarantined to ``<name>.corrupt`` and counted, and the next put/get
  round-trips cleanly -- corruption must cost one miss, not the key.
* The client backs off under rejection and while polling: 429
  resubmission honours ``Retry-After``, and the poll interval grows with
  full jitter under a hard cap.
* ``collect_fleet_samples`` tolerates up to ``expected_failures`` client
  deaths (chaos runs kill clients on purpose) while one death more than
  the allowance still fails the stage loudly.
"""

from __future__ import annotations

import queue as queue_module
import time

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED

from repro.common.errors import (
    ConfigurationError,
    LoadDriverError,
    ServiceOverloadedError,
)
from repro.common.serialize import wire_envelope
from repro.exp.cache import ResultCache
from repro.exp.runner import SimJob, run_job
from repro.load.bench import LoadBenchConfig
from repro.load.driver import DriverConfig, collect_fleet_samples
from repro.load.epoch import Sample
from repro.obs.metrics import MetricsRegistry
from repro.service.client import (
    POLL_INTERVAL_CAP,
    RESUBMIT_BACKOFF_BASE,
    RESUBMIT_BACKOFF_CAP,
    ServiceClient,
)
from repro.sim.configs import fmc_hash
from repro.workloads.suite import quick_fp_suite


# ----------------------------------------------------------------------
# Corrupt-entry quarantine
# ----------------------------------------------------------------------


def _corrupt_counter(registry: MetricsRegistry):
    family = registry.counter(
        "repro_cache_requests_total",
        "Result-cache lookups, by outcome",
        labelnames=("result",),
    )
    return family.labels("corrupt")


def _cached_job(tmp_path):
    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "cache", metrics=registry)
    job = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    result = run_job(job)
    cache.put(job.key(), result)
    return cache, registry, job, result


def test_truncated_entry_is_quarantined_and_rewritable(tmp_path) -> None:
    cache, registry, job, result = _cached_job(tmp_path)
    path = cache.path_for(job.key())
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # a hand-torn write

    assert cache.get(job.key()) is None
    assert not path.exists()
    assert path.with_name(path.name + ".corrupt").exists()
    assert _corrupt_counter(registry).value == 1

    # The key is free again: the next put/get round-trips.
    cache.put(job.key(), result)
    recovered = cache.get(job.key())
    assert recovered is not None
    assert recovered.to_dict() == result.to_dict()


def test_non_dict_entry_is_quarantined(tmp_path) -> None:
    cache, registry, job, _ = _cached_job(tmp_path)
    path = cache.path_for(job.key())
    path.write_text('["not", "a", "cache", "entry"]', encoding="utf-8")
    assert cache.get(job.key()) is None
    assert path.with_name(path.name + ".corrupt").exists()
    assert _corrupt_counter(registry).value == 1


def test_unparseable_result_payload_is_quarantined(tmp_path) -> None:
    import json

    cache, registry, job, _ = _cached_job(tmp_path)
    path = cache.path_for(job.key())
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["result"] = {"garbage": True}
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(job.key()) is None
    assert _corrupt_counter(registry).value == 1


def test_schema_mismatch_is_a_plain_miss_not_corruption(tmp_path) -> None:
    import json

    cache, registry, job, _ = _cached_job(tmp_path)
    path = cache.path_for(job.key())
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["schema"] = -1
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(job.key()) is None
    # A versioned-but-stale entry is not corruption: it stays on disk for
    # the next put to overwrite, and the corrupt counter stays untouched.
    assert path.exists()
    assert _corrupt_counter(registry).value == 0


# ----------------------------------------------------------------------
# Client backoff
# ----------------------------------------------------------------------


def test_resubmit_delay_honours_retry_after(monkeypatch) -> None:
    bounds = []

    def record_uniform(low, high):
        bounds.append((low, high))
        return low

    monkeypatch.setattr("repro.service.client.random.uniform", record_uniform)
    assert ServiceClient._resubmit_delay(2.0, attempt=0) == 2.0
    assert bounds[-1] == (1.0, 1.25)  # jitter multiplier on the server hint


def test_resubmit_delay_caps_exponential_backoff(monkeypatch) -> None:
    monkeypatch.setattr("repro.service.client.random.uniform", lambda low, high: high)
    assert ServiceClient._resubmit_delay(None, attempt=0) == RESUBMIT_BACKOFF_BASE
    assert ServiceClient._resubmit_delay(None, attempt=2) == RESUBMIT_BACKOFF_BASE * 4
    assert ServiceClient._resubmit_delay(None, attempt=50) == RESUBMIT_BACKOFF_CAP


def _overloaded_envelope(retry_after):
    return wire_envelope(
        "error",
        {
            "status": 429,
            "code": "overloaded",
            "message": "queue full",
            "retry_after": retry_after,
        },
    )


def _accepted_envelope():
    return wire_envelope(
        "job_accepted",
        {
            "job_id": "job-000001",
            "request_key": "0" * 64,
            "status": "queued",
            "coalesced": False,
        },
    )


def _one_case():
    return SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)


def test_submit_without_wait_surfaces_429_immediately(monkeypatch) -> None:
    client = ServiceClient("http://127.0.0.1:1")
    monkeypatch.setattr(
        client, "_request", lambda *args, **kwargs: (429, _overloaded_envelope(3.5))
    )
    with pytest.raises(ServiceOverloadedError) as info:
        client.submit(cases=[_one_case()])
    assert info.value.retry_after == 3.5


def test_submit_with_wait_resubmits_after_429(monkeypatch) -> None:
    client = ServiceClient("http://127.0.0.1:1")
    responses = [(429, _overloaded_envelope(0.5)), (202, _accepted_envelope())]
    monkeypatch.setattr(client, "_request", lambda *a, **k: responses.pop(0))
    monkeypatch.setattr(
        client, "wait", lambda *a, **k: {"status": "completed", "result": {}}
    )
    sleeps = []
    monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
    monkeypatch.setattr("repro.service.client.random.uniform", lambda low, high: low)

    view = client.submit(cases=[_one_case()], wait=True, timeout=30.0)
    assert view["status"] == "completed"
    assert not responses  # both canned responses consumed
    assert sleeps == [0.5]  # the honoured Retry-After


def test_submit_with_wait_gives_up_when_budget_exhausted(monkeypatch) -> None:
    client = ServiceClient("http://127.0.0.1:1")
    monkeypatch.setattr(
        client, "_request", lambda *a, **k: (429, _overloaded_envelope(60.0))
    )
    with pytest.raises(ServiceOverloadedError):
        # A 60s Retry-After cannot fit a 1s budget: no sleep, fail now.
        client.submit(cases=[_one_case()], wait=True, timeout=1.0)


def test_wait_poll_interval_grows_with_full_jitter(monkeypatch) -> None:
    client = ServiceClient("http://127.0.0.1:1")
    views = [{"status": "running"}] * 7 + [{"status": "completed"}]
    monkeypatch.setattr(client, "status", lambda *a, **k: views.pop(0))
    monkeypatch.setattr("repro.service.client.time.sleep", lambda seconds: None)
    envelopes = []

    def record_uniform(low, high):
        envelopes.append((low, high))
        return 0.0

    monkeypatch.setattr("repro.service.client.random.uniform", record_uniform)
    view = client.wait("job-000001", timeout=30.0, poll_interval=0.05)
    assert view["status"] == "completed"
    # Each sleep is drawn from [0, min(cap, base * 2^attempt)].
    expected = [min(POLL_INTERVAL_CAP, 0.05 * 2**attempt) for attempt in range(7)]
    assert [high for _, high in envelopes] == expected
    assert envelopes[-1][1] == POLL_INTERVAL_CAP  # the cap engaged


# ----------------------------------------------------------------------
# Fleet failure allowance
# ----------------------------------------------------------------------


class _FakeQueue:
    def __init__(self, reports):
        self._reports = list(reports)

    def get(self, timeout=None):
        if self._reports:
            return self._reports.pop(0)
        raise queue_module.Empty

    def empty(self):
        return not self._reports


class _FakeProcess:
    def __init__(self, name, exitcode):
        self.name = name
        self.exitcode = exitcode

    def is_alive(self):
        return self.exitcode is None


def _sample():
    return Sample(kind="submit", tenant="default", start=0.0, latency=0.1, ok=True)


def test_expected_failures_absorbs_injected_client_deaths() -> None:
    processes = [_FakeProcess("client-0", 0), _FakeProcess("client-1", 1)]
    samples = collect_fleet_samples(
        _FakeQueue([(0, [_sample()])]),
        processes,
        expected_reports=2,
        deadline=time.monotonic() + 5.0,
        expected_failures=1,
    )
    assert len(samples) == 1


def test_unexpected_client_death_still_fails_the_stage() -> None:
    processes = [_FakeProcess("client-0", 0), _FakeProcess("client-1", 1)]
    with pytest.raises(LoadDriverError, match="client-1"):
        collect_fleet_samples(
            _FakeQueue([(0, [_sample()])]),
            processes,
            expected_reports=2,
            deadline=time.monotonic() + 5.0,
        )


def test_deaths_beyond_the_allowance_fail_with_the_tally() -> None:
    processes = [_FakeProcess("client-0", 1), _FakeProcess("client-1", 1)]
    with pytest.raises(LoadDriverError, match=r"2 deaths > 1 expected"):
        collect_fleet_samples(
            _FakeQueue([]),
            processes,
            expected_reports=2,
            deadline=time.monotonic() + 5.0,
            expected_failures=1,
        )


def test_driver_config_validates_expected_failures() -> None:
    with pytest.raises(ConfigurationError, match="expected_failures"):
        DriverConfig(urls=("http://127.0.0.1:1",), expected_failures=-1)


def test_loadbench_faults_require_a_self_served_instance() -> None:
    with pytest.raises(ConfigurationError, match="self-served"):
        LoadBenchConfig(server="http://127.0.0.1:1", faults="faults.json")
    with pytest.raises(ConfigurationError):
        LoadBenchConfig(expected_failures=-1)

"""Tests for the bench perf-regression gate (``repro bench --gate``).

The timing-sensitive half of the gate runs in CI against the committed
baseline artifact; these tests pin the *logic* with synthetic artifacts so
they are deterministic on any host.
"""

from __future__ import annotations

import json

from _helpers import run_cli

from repro.exp.cli import evaluate_bench_gate


def _artifact(figures):
    return {"artifact": "repro-bench", "figures": figures}


def _figure(serial, parallel):
    return {
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": serial / parallel if parallel else 0.0,
        "simulations": 24,
    }


def test_gate_passes_on_clear_improvement():
    baseline = _artifact({"fig7": _figure(13.5, 16.3)})
    current = _artifact({"fig7": _figure(4.5, 2.6)})
    ok, lines = evaluate_bench_gate(current, baseline)
    assert ok
    assert any("fig7" in line and "ok" in line for line in lines)


def test_gate_fails_when_improvement_is_below_threshold():
    baseline = _artifact({"fig7": _figure(13.5, 16.3)})
    current = _artifact({"fig7": _figure(8.0, 4.0)})  # only 1.69x
    ok, lines = evaluate_bench_gate(current, baseline, min_improvement=2.0)
    assert not ok
    assert any("FAIL" in line for line in lines)


def test_gate_fails_when_parallel_is_not_faster_than_serial():
    baseline = _artifact({"fig7": _figure(13.5, 16.3)})
    current = _artifact({"fig7": _figure(4.0, 4.5)})  # speedup 0.89
    ok, _ = evaluate_bench_gate(current, baseline)
    assert not ok


def test_gate_requires_strictly_greater_speedup():
    baseline = _artifact({"fig7": _figure(10.0, 10.0)})
    current = _artifact({"fig7": _figure(4.0, 4.0)})  # speedup exactly 1.0
    ok, _ = evaluate_bench_gate(current, baseline)
    assert not ok


def test_gate_checks_every_shared_figure():
    baseline = _artifact({"fig7": _figure(13.5, 16.3), "sec52": _figure(6.6, 7.5)})
    current = _artifact(
        {"fig7": _figure(4.5, 2.6), "sec52": _figure(6.0, 3.0)}  # sec52 only 1.1x
    )
    ok, lines = evaluate_bench_gate(current, baseline)
    assert not ok
    assert len(lines) == 2


def test_gate_rejects_non_bench_baselines_without_crashing():
    """A readable JSON that is not a bench artifact fails cleanly (no KeyError)."""
    not_a_bench = {"figures": {"fig7": {"results": [1, 2, 3]}}}
    ok, lines = evaluate_bench_gate(_artifact({"fig7": _figure(1.0, 0.5)}), not_a_bench)
    assert not ok
    assert "serial_seconds" in lines[0]


def test_gate_with_no_shared_figures_fails_loudly():
    ok, lines = evaluate_bench_gate(
        _artifact({"fig7": _figure(1.0, 0.5)}), _artifact({"sec52": _figure(1.0, 0.5)})
    )
    assert not ok
    assert "share no figures" in lines[0]


def test_gate_thresholds_are_tunable():
    baseline = _artifact({"fig7": _figure(10.0, 12.0)})
    current = _artifact({"fig7": _figure(9.0, 6.0)})  # 1.11x improvement, 1.5x speedup
    ok, _ = evaluate_bench_gate(current, baseline, min_improvement=1.05, min_speedup=1.2)
    assert ok
    ok, _ = evaluate_bench_gate(current, baseline, min_improvement=1.2, min_speedup=1.2)
    assert not ok


def test_cli_gate_exit_codes(tmp_path):
    """End-to-end: ``repro bench --gate`` exits 0 / 1 / 2 appropriately.

    Uses a tiny trace length so the timed runs are fast; the gate thresholds
    are relaxed to near-zero because this test asserts plumbing (artifact
    written, baseline read, exit code), not performance.
    """
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(_artifact({"fig7": _figure(1_000.0, 1_000_000.0)}))
    )
    output = tmp_path / "bench.json"
    done = run_cli(
        [
            "bench",
            "--figures",
            "fig7",
            "--instructions",
            "300",
            "--jobs",
            "2",
            "--output",
            str(output),
            "--gate",
            str(baseline_path),
            "--gate-min-improvement",
            "0.0001",
            "--gate-min-speedup",
            "0.0001",
        ],
        cwd=tmp_path,
    )
    assert done.returncode == 0, done.stderr
    assert "bench gate passed" in done.stdout
    artifact = json.loads(output.read_text())
    assert artifact["engine"] == "fast"
    assert "cpu_count" in artifact
    assert "fig7" in artifact["figures"]

    # An impossible improvement threshold must fail with exit code 1.
    done = run_cli(
        [
            "bench",
            "--figures",
            "fig7",
            "--instructions",
            "300",
            "--output",
            str(output),
            "--gate",
            str(baseline_path),
            "--gate-min-improvement",
            "1e12",
        ],
        cwd=tmp_path,
    )
    assert done.returncode == 1
    assert "bench gate FAILED" in done.stderr

    # A missing baseline is a usage error (exit code 2).
    done = run_cli(
        [
            "bench",
            "--figures",
            "fig7",
            "--instructions",
            "300",
            "--output",
            str(output),
            "--gate",
            str(tmp_path / "missing.json"),
        ],
        cwd=tmp_path,
    )
    assert done.returncode == 2


def test_bench_artifact_is_self_describing(tmp_path):
    """The artifact records engine, git revision and a per-phase breakdown
    whose serial phases account for (almost all of) the serial wall time."""
    output = tmp_path / "bench.json"
    done = run_cli(
        [
            "bench",
            "--figures", "fig7",
            "--instructions", "300",
            "--jobs", "2",
            "--output", str(output),
        ],
        cwd=tmp_path,
    )
    assert done.returncode == 0, done.stderr
    artifact = json.loads(output.read_text())
    assert artifact["engine"] == "fast"
    assert "git_revision" in artifact  # None outside a checkout, hash inside
    figure = artifact["figures"]["fig7"]
    serial_phases = figure["phases"]["serial"]
    assert set(serial_phases) >= {"generation", "build", "warmup", "drive"}
    phase_sum = sum(serial_phases.values())
    assert phase_sum <= figure["serial_seconds"] * 1.05
    assert phase_sum >= figure["serial_seconds"] * 0.5, (
        f"phases {serial_phases} explain too little of "
        f"{figure['serial_seconds']}s serial wall time"
    )
    assert "parallel" in figure["phases"]


def test_git_revision_is_the_package_checkout_not_the_cwd(tmp_path):
    """The artifact must record the revision of the repro code itself, even
    when bench runs from an unrelated directory (or an unrelated repo)."""
    import os
    import subprocess

    from _helpers import REPO_ROOT

    from repro.exp.cli import _git_revision

    expected = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "rev-parse", "HEAD"],
        capture_output=True,
        text=True,
    ).stdout.strip()
    # From an unrelated plain directory -- and from an unrelated *git repo*
    # -- the resolved revision must still be this package's checkout.
    foreign = tmp_path / "foreign"
    foreign.mkdir()
    subprocess.run(["git", "init", "-q", str(foreign)], check=True)
    cwd = os.getcwd()
    try:
        for where in (tmp_path, foreign):
            os.chdir(where)
            assert _git_revision() == expected
    finally:
        os.chdir(cwd)

"""Engine selection plumbing: registry, machine knob, keys, campaign flow.

The differential suite proves the engines *agree*; these tests pin how an
engine is chosen and how the choice propagates -- through
:class:`MachineConfig`, the simulator, job/request content addresses and the
campaign context -- so a selected engine can never be silently dropped on
the way to a simulation.
"""

from __future__ import annotations

import pytest
from _helpers import TEST_SEED

from repro.common.errors import ConfigurationError
from repro.exp.request import JobRequest
from repro.exp.runner import SimJob, job_key
from repro.sim.configs import fmc_hash, ooo_64
from repro.sim.engine import DEFAULT_ENGINE, engine_by_name, engine_names
from repro.sim.engine.fast import clear_warm_memo, warm_hierarchy
from repro.sim.experiments import campaign_context, fig7_sweep
from repro.sim.simulator import Simulator
from repro.workloads.suite import generate_member_trace, quick_int_suite


def test_registry_exposes_both_engines() -> None:
    assert engine_names() == ["fast", "reference"]
    assert engine_by_name("fast").name == "fast"
    assert engine_by_name("reference").name == "reference"
    assert DEFAULT_ENGINE == "fast"


def test_unknown_engine_raises_helpfully() -> None:
    with pytest.raises(ConfigurationError, match="unknown simulation engine"):
        engine_by_name("warp")


def test_machines_default_to_the_fast_engine() -> None:
    assert fmc_hash().engine == "fast"
    assert ooo_64().with_engine("reference").engine == "reference"


def test_simulator_routes_through_the_selected_engine() -> None:
    member = list(quick_int_suite())[0]
    trace = generate_member_trace(member, 600, seed=TEST_SEED)
    fast = Simulator(fmc_hash()).run_trace(trace)
    reference = Simulator(fmc_hash().with_engine("reference")).run_trace(trace)
    assert fast == reference
    with pytest.raises(ConfigurationError, match="unknown simulation engine"):
        Simulator(fmc_hash().with_engine("warp")).run_trace(trace)


def test_engine_is_part_of_the_job_content_address() -> None:
    member = list(quick_int_suite())[0]
    fast_key = job_key(SimJob(fmc_hash(), member, 1_000, 1))
    reference_key = job_key(SimJob(fmc_hash().with_engine("reference"), member, 1_000, 1))
    assert fast_key != reference_key


def test_engine_is_part_of_the_request_key() -> None:
    implicit = JobRequest(figure="fig7")
    explicit_default = JobRequest(figure="fig7", engine=DEFAULT_ENGINE)
    reference = JobRequest(figure="fig7", engine="reference")
    # Implicit and explicit defaults coalesce; a different engine does not.
    assert implicit.key() == explicit_default.key()
    assert implicit.key() != reference.key()
    # The knob round-trips over the wire.
    assert JobRequest.from_dict(reference.to_dict()) == reference


def test_case_batches_reject_the_engine_knob() -> None:
    member = list(quick_int_suite())[0]
    job = SimJob(fmc_hash(), member, 1_000, 1)
    with pytest.raises(ConfigurationError, match="engine"):
        JobRequest(cases=(job,), engine="fast")


def test_unknown_engine_fails_at_request_normalization() -> None:
    with pytest.raises(ConfigurationError, match="unknown simulation engine"):
        JobRequest(figure="fig7", engine="warp").normalized()


def test_campaign_context_applies_the_engine_to_every_sweep_case() -> None:
    context = campaign_context(instructions=600, seed=TEST_SEED, engine="reference")
    for case in fig7_sweep(context):
        assert case.machine.engine == "fast"  # the sweep declares defaults ...
    results = context.run_sweep(fig7_sweep(context))
    assert results  # ... but the context rebinds them before running.
    reference_results = campaign_context(
        instructions=600, seed=TEST_SEED, engine="fast"
    ).run_sweep(fig7_sweep(context))
    for case_id, suite_result in results.items():
        assert suite_result.results == reference_results[case_id].results


def test_campaign_context_rejects_unknown_engines_eagerly() -> None:
    with pytest.raises(ConfigurationError, match="unknown simulation engine"):
        campaign_context(engine="warp")


def test_analytic_warm_state_matches_reference_across_geometries() -> None:
    """The closed-form warm-up equals the reference replay for every paper
    machine geometry, swept cache shapes, and overlapping footprints (which
    must take the reference-replay fallback)."""
    from dataclasses import replace

    from repro.common.config import MemoryHierarchyConfig
    from repro.isa.trace import RegionFootprint
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.sim.configs import PAPER_CONFIGS, machine_by_name
    from repro.workloads.families import family_suites

    region_sets = [
        generate_member_trace(member, 50, seed=TEST_SEED).regions
        for suite in (quick_int_suite(), family_suites()["streaming"])
        for member in suite
    ]
    # Overlapping / duplicate-line footprints: the closed form declines and
    # the fallback must still capture the reference state.
    region_sets.append(
        (
            RegionFootprint("low", 4096, 64 * 1024, 1.0, "stream"),
            RegionFootprint("high", 4096 + 16 * 1024, 64 * 1024, 3.0, "random"),
        )
    )
    default = MemoryHierarchyConfig()
    geometries = {(config.l1, config.l2): config for config in (
        [machine_by_name(name).hierarchy for name in PAPER_CONFIGS]
        + [
            default,
            replace(default, l1=replace(default.l1, size_bytes=8 * 1024)),
            replace(default, l2=replace(default.l2, associativity=4)),
            replace(default, l1=replace(default.l1, associativity=1)),
        ]
    )}
    clear_warm_memo()
    try:
        for config in geometries.values():
            for regions in region_sets:
                reference = MemoryHierarchy(config)
                reference.warm_up_regions(regions)
                warmed = MemoryHierarchy(config)
                warm_hierarchy(warmed, regions)
                assert warmed.l1._tags == reference.l1._tags
                assert warmed.l2._tags == reference.l2._tags
                assert [lru._order for lru in warmed.l1._lru] == [
                    lru._order for lru in reference.l1._lru
                ]
                assert [lru._order for lru in warmed.l2._lru] == [
                    lru._order for lru in reference.l2._lru
                ]
    finally:
        clear_warm_memo()


def test_warm_memo_restores_identical_cache_state() -> None:
    """Memo-restored hierarchies match a freshly warmed one exactly."""
    from repro.memory.hierarchy import MemoryHierarchy

    member = list(quick_int_suite())[0]
    trace = generate_member_trace(member, 400, seed=TEST_SEED)
    clear_warm_memo()
    try:
        reference = MemoryHierarchy()
        reference.warm_up_regions(trace.regions)

        first = MemoryHierarchy()
        warm_hierarchy(first, trace.regions)  # memo miss: computes + captures
        restored = MemoryHierarchy()
        warm_hierarchy(restored, trace.regions)  # memo hit: restores arrays

        for warmed in (first, restored):
            assert warmed.l1._tags == reference.l1._tags
            assert warmed.l2._tags == reference.l2._tags
            assert [lru._order for lru in warmed.l1._lru] == [
                lru._order for lru in reference.l1._lru
            ]
            assert [lru._order for lru in warmed.l2._lru] == [
                lru._order for lru in reference.l2._lru
            ]
    finally:
        clear_warm_memo()

"""Tests for the binary trace container (repro.trace).

Covers the ISSUE's acceptance surface: in-memory and on-disk round trips
preserve every instruction bit-for-bit, a saved-then-loaded trace replayed
through ``Simulator.run_trace`` produces a ``CoreResult`` identical to
simulating the freshly generated trace (for all four new workload families
and both existing SPEC-like suites), and malformed containers fail loudly
instead of replaying a different stream than was recorded.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from _helpers import TEST_SEED

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction, InstrClass
from repro.isa.trace import Trace
from repro.sim.configs import fmc_hash, ooo_64
from repro.sim.simulator import Simulator
from repro.trace import (
    TRACE_FORMAT_VERSION,
    load_trace,
    load_trace_archive,
    read_trace_header,
    record_trace,
    save_trace,
    trace_from_bytes,
    trace_to_bytes,
)
from repro.trace.format import (
    _CRC,
    _HEADER_PREFIX,
    _RECORD_COUNT,
    _RECORD_V1,
    SUPPORTED_TRACE_VERSIONS,
    TRACE_FORMAT_MAGIC,
    _header_document,
)
from repro.workloads.families import (
    branchy_filter,
    gather_scan,
    list_walk,
    long_phases,
)
from repro.workloads.spec_fp import swim_like
from repro.workloads.spec_int import mcf_like
from repro.workloads.suite import generate_member_trace

#: One representative member per new family plus one per existing suite --
#: the replay-bit-identity matrix the acceptance criteria name.
REPLAY_WORKLOADS = (
    ("pointer_chase", list_walk),
    ("streaming", gather_scan),
    ("branchy", branchy_filter),
    ("phased", long_phases),
    ("spec_fp_like", swim_like),
    ("spec_int_like", mcf_like),
)


def _traces_equal(a: Trace, b: Trace) -> bool:
    return (
        list(a) == list(b)
        and a.name == b.name
        and a.regions == b.regions
    )


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


def test_in_memory_round_trip(small_workload_params) -> None:
    trace = generate_member_trace(small_workload_params, 1500, seed=TEST_SEED)
    archive = trace_from_bytes(
        trace_to_bytes(trace, params=small_workload_params, seed=TEST_SEED)
    )
    assert _traces_equal(archive.trace, trace)
    assert archive.header.format_version == TRACE_FORMAT_VERSION
    assert archive.header.name == trace.name
    assert archive.header.num_instructions == len(trace)
    assert archive.header.seed == TEST_SEED
    assert archive.header.params == small_workload_params
    assert archive.header.regions == trace.regions


def test_on_disk_round_trip(tmp_path: Path, small_workload_params) -> None:
    trace = generate_member_trace(small_workload_params, 1200, seed=3)
    path = save_trace(trace, tmp_path / "t.rtrace", params=small_workload_params, seed=3)
    assert _traces_equal(load_trace(path), trace)
    header = read_trace_header(path)
    assert header.num_instructions == 1200
    assert header.params == small_workload_params


def test_hand_built_trace_round_trips_without_params(tmp_path: Path, tiny_trace) -> None:
    path = save_trace(tiny_trace, tmp_path / "tiny.rtrace")
    archive = load_trace_archive(path)
    assert _traces_equal(archive.trace, tiny_trace)
    assert archive.header.params is None
    assert archive.header.seed is None


def test_every_instruction_field_survives(tmp_path: Path) -> None:
    """Edge values of every record field survive the fixed-width encoding."""
    trace = Trace(
        [
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=0, srcs=()),
            Instruction(seq=1, iclass=InstrClass.FP_ALU, dest=127, srcs=(0, 63, 64, 127)),
            Instruction(
                seq=2, iclass=InstrClass.BRANCH, srcs=(5,), mispredicted=True
            ),
            Instruction(
                seq=3,
                iclass=InstrClass.LOAD,
                dest=8,
                srcs=(1,),
                address=(1 << 40) + 24,
                size=4,
                latency=300,
            ),
            Instruction(
                seq=4, iclass=InstrClass.STORE, srcs=(2, 3), address=0, size=16
            ),
        ],
        name="edges",
    )
    restored = trace_from_bytes(trace_to_bytes(trace)).trace
    assert list(restored) == list(trace)


def test_record_trace_equals_generate_then_save(tmp_path: Path) -> None:
    params = swim_like()
    archive = record_trace(params, 1000, tmp_path / "w.rtrace", seed=TEST_SEED)
    reference = generate_member_trace(params, 1000, seed=TEST_SEED)
    assert _traces_equal(archive.trace, reference)
    assert _traces_equal(load_trace(tmp_path / "w.rtrace"), reference)


def test_too_many_sources_rejected() -> None:
    crowded = Trace(
        [Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, srcs=(1, 2, 3, 4, 5))],
        name="crowded",
    )
    with pytest.raises(TraceError, match="at most 4"):
        trace_to_bytes(crowded)


# ----------------------------------------------------------------------
# Replay bit-identity (the acceptance criterion)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "suite_name, factory", REPLAY_WORKLOADS, ids=[name for name, _ in REPLAY_WORKLOADS]
)
def test_replay_is_bit_identical_to_regeneration(
    tmp_path: Path, suite_name: str, factory
) -> None:
    """save -> load -> simulate == generate -> simulate, per family and suite."""
    params = factory()
    generated = generate_member_trace(params, 1500, seed=TEST_SEED)
    path = save_trace(generated, tmp_path / "replay.rtrace", params=params, seed=TEST_SEED)
    replayed = load_trace(path)
    simulator = Simulator(fmc_hash())
    fresh = simulator.run_trace(generated)
    replay = simulator.run_trace(replayed)
    assert replay == fresh  # CoreResult equality covers cycles, stats, extras
    assert replay.to_dict() == fresh.to_dict()


def test_replay_is_bit_identical_on_the_baseline_core(tmp_path: Path) -> None:
    params = mcf_like()
    generated = generate_member_trace(params, 1500, seed=TEST_SEED)
    save_trace(generated, tmp_path / "b.rtrace", params=params)
    replay = Simulator(ooo_64()).run_trace(load_trace(tmp_path / "b.rtrace"))
    fresh = Simulator(ooo_64()).run_trace(generated)
    assert replay == fresh


# ----------------------------------------------------------------------
# Archived version-1 containers stay readable
# ----------------------------------------------------------------------


def _v1_container_bytes(trace: Trace, params=None, seed=None) -> bytes:
    """Re-create the historical row-major version-1 container byte-for-byte."""
    import json
    import zlib

    document = _header_document(trace, params, seed)
    document["format_version"] = 1
    header_json = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    records = []
    codes = {"int_alu": 0, "fp_alu": 1, "branch": 2, "load": 3, "store": 4}
    for instruction in trace:
        flags = (
            (1 if instruction.address is not None else 0)
            | (2 if instruction.mispredicted else 0)
            | (4 if instruction.latency is not None else 0)
        )
        padded = tuple(instruction.srcs) + (-1,) * (4 - len(instruction.srcs))
        records.append(
            _RECORD_V1.pack(
                flags,
                codes[instruction.iclass.value],
                -1 if instruction.dest is None else instruction.dest,
                *padded,
                instruction.address or 0,
                instruction.size,
                instruction.latency or 0,
            )
        )
    body = b"".join(records)
    return b"".join(
        (
            _HEADER_PREFIX.pack(TRACE_FORMAT_MAGIC, 1, len(header_json)),
            header_json,
            _RECORD_COUNT.pack(len(trace)),
            body,
            _CRC.pack(zlib.crc32(body)),
        )
    )


def test_version_constants() -> None:
    assert TRACE_FORMAT_VERSION == 2
    assert TRACE_FORMAT_VERSION in SUPPORTED_TRACE_VERSIONS
    assert 1 in SUPPORTED_TRACE_VERSIONS  # archived recordings stay loadable


def test_archived_v1_container_loads_bit_identically(small_workload_params) -> None:
    """A pre-bump recording decodes to the exact same stream and replays
    identically -- the bulk ``iter_unpack`` path must not regress meaning."""
    trace = generate_member_trace(small_workload_params, 1000, seed=TEST_SEED)
    archive = trace_from_bytes(
        _v1_container_bytes(trace, params=small_workload_params, seed=TEST_SEED)
    )
    assert archive.header.format_version == 1  # reports the recorded version
    assert _traces_equal(archive.trace, trace)
    simulator = Simulator(fmc_hash())
    assert simulator.run_trace(archive.trace) == simulator.run_trace(trace)


def test_archived_v1_header_reads_without_records(tmp_path: Path, tiny_trace) -> None:
    path = tmp_path / "old.rtrace"
    path.write_bytes(_v1_container_bytes(tiny_trace))
    header = read_trace_header(path)
    assert header.format_version == 1
    assert header.num_instructions == len(tiny_trace)


def test_archived_v1_corruption_still_caught(tiny_trace) -> None:
    data = bytearray(_v1_container_bytes(tiny_trace))
    data[-6] ^= 0xFF  # inside the record section
    with pytest.raises(TraceError, match="CRC|corrupt"):
        trace_from_bytes(bytes(data))


# ----------------------------------------------------------------------
# Non-canonical containers are rejected, not mis-simulated
# ----------------------------------------------------------------------


def _mutated_v2(trace: Trace, column: str, row: int, value: int) -> bytes:
    """Container bytes for ``trace`` with one column entry overwritten
    (CRC recomputed, so only the canonical-form validation can object)."""
    import zlib
    from array import array

    from repro.isa.columns import COLUMN_LAYOUT

    blob = trace_to_bytes(trace)
    header_length = _HEADER_PREFIX.unpack_from(blob, 0)[2]
    offset = _HEADER_PREFIX.size + header_length + _RECORD_COUNT.size
    mutated = bytearray(blob)
    section_offset = offset
    for name, typecode, itemsize in COLUMN_LAYOUT:
        if name == column:
            cell = array(typecode, [value]).tobytes()
            mutated[
                section_offset + row * itemsize : section_offset + (row + 1) * itemsize
            ] = cell
            break
        section_offset += len(trace) * itemsize
    body = bytes(mutated[offset : offset + len(trace) * 21])
    _CRC.pack_into(mutated, offset + len(trace) * 21, zlib.crc32(body))
    return bytes(mutated)


@pytest.mark.parametrize(
    "column,value,match",
    [
        ("src0", -1, "left-packed"),      # absent slot before a present source
        ("flags", 0, "without an address"),  # load loses its has-address flag
        ("flags", 3, "mispredicted"),     # mispredict flag on a memory op
        ("size", 0, "size must be positive"),
        ("iclass", 9, "unknown instruction-class"),
    ],
)
def test_non_canonical_v2_rows_are_rejected(column, value, match) -> None:
    """CRC-valid but non-canonical rows must fail loudly at load: the fast
    engine's columnar assumptions and the reference engine's object
    validation would otherwise disagree about the same file."""
    trace = Trace(
        [
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, srcs=()),
            Instruction(seq=1, iclass=InstrClass.LOAD, dest=2, srcs=(1, 1), address=64),
        ],
        name="canon",
    )
    with pytest.raises(TraceError, match=match):
        trace_from_bytes(_mutated_v2(trace, column, 1, value))


def test_non_canonical_v1_rows_are_rejected(tiny_trace) -> None:
    """The bulk v1 decoder keeps the historical loader's strictness."""
    import zlib

    blob = bytearray(_v1_container_bytes(tiny_trace))
    offset = len(blob) - _CRC.size - len(tiny_trace) * _RECORD_V1.size
    # Record 1 is the store: clear its has-address flag.
    blob[offset + 1 * _RECORD_V1.size] = 0
    body = bytes(blob[offset : offset + len(tiny_trace) * _RECORD_V1.size])
    _CRC.pack_into(blob, len(blob) - _CRC.size, zlib.crc32(body))
    with pytest.raises(TraceError, match="without an address"):
        trace_from_bytes(bytes(blob))


# ----------------------------------------------------------------------
# Fail-loud validation
# ----------------------------------------------------------------------


def test_bad_magic_rejected(canned_trace_file: Path) -> None:
    data = canned_trace_file.read_bytes()
    with pytest.raises(TraceError, match="bad magic"):
        trace_from_bytes(b"NOTATRCE" + data[8:])


def test_unsupported_version_rejected(canned_trace_file: Path) -> None:
    data = bytearray(canned_trace_file.read_bytes())
    magic, _version, header_len = _HEADER_PREFIX.unpack_from(bytes(data), 0)
    _HEADER_PREFIX.pack_into(data, 0, magic, TRACE_FORMAT_VERSION + 1, header_len)
    with pytest.raises(TraceError, match="version"):
        trace_from_bytes(bytes(data))
    canned_trace_file.write_bytes(bytes(data))
    with pytest.raises(TraceError, match="version"):
        read_trace_header(canned_trace_file)


def test_truncation_rejected(canned_trace_file: Path) -> None:
    data = canned_trace_file.read_bytes()
    for cut in (4, _HEADER_PREFIX.size + 10, len(data) // 2, len(data) - 2):
        with pytest.raises(TraceError, match="truncated|corrupt"):
            trace_from_bytes(data[:cut])


def test_record_corruption_rejected(canned_trace_file: Path) -> None:
    data = bytearray(canned_trace_file.read_bytes())
    # Flip a byte in the middle of the record section: CRC must catch it.
    data[len(data) // 2] ^= 0xFF
    with pytest.raises(TraceError, match="CRC|corrupt|unknown instruction-class"):
        trace_from_bytes(bytes(data))


def test_header_only_read_does_not_parse_records(canned_trace_file: Path) -> None:
    """Corrupt records do not prevent reading the header (cheap info path)."""
    data = bytearray(canned_trace_file.read_bytes())
    data[-10] ^= 0xFF
    canned_trace_file.write_bytes(bytes(data))
    header = read_trace_header(canned_trace_file)
    assert header.num_instructions == 1500
    with pytest.raises(TraceError):
        load_trace_archive(canned_trace_file)

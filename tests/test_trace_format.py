"""Tests for the binary trace container (repro.trace).

Covers the ISSUE's acceptance surface: in-memory and on-disk round trips
preserve every instruction bit-for-bit, a saved-then-loaded trace replayed
through ``Simulator.run_trace`` produces a ``CoreResult`` identical to
simulating the freshly generated trace (for all four new workload families
and both existing SPEC-like suites), and malformed containers fail loudly
instead of replaying a different stream than was recorded.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from _helpers import TEST_SEED

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction, InstrClass
from repro.isa.trace import Trace
from repro.sim.configs import fmc_hash, ooo_64
from repro.sim.simulator import Simulator
from repro.trace import (
    TRACE_FORMAT_VERSION,
    load_trace,
    load_trace_archive,
    read_trace_header,
    record_trace,
    save_trace,
    trace_from_bytes,
    trace_to_bytes,
)
from repro.trace.format import _HEADER_PREFIX
from repro.workloads.families import (
    branchy_filter,
    gather_scan,
    list_walk,
    long_phases,
)
from repro.workloads.spec_fp import swim_like
from repro.workloads.spec_int import mcf_like
from repro.workloads.suite import generate_member_trace

#: One representative member per new family plus one per existing suite --
#: the replay-bit-identity matrix the acceptance criteria name.
REPLAY_WORKLOADS = (
    ("pointer_chase", list_walk),
    ("streaming", gather_scan),
    ("branchy", branchy_filter),
    ("phased", long_phases),
    ("spec_fp_like", swim_like),
    ("spec_int_like", mcf_like),
)


def _traces_equal(a: Trace, b: Trace) -> bool:
    return (
        list(a) == list(b)
        and a.name == b.name
        and a.regions == b.regions
    )


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


def test_in_memory_round_trip(small_workload_params) -> None:
    trace = generate_member_trace(small_workload_params, 1500, seed=TEST_SEED)
    archive = trace_from_bytes(
        trace_to_bytes(trace, params=small_workload_params, seed=TEST_SEED)
    )
    assert _traces_equal(archive.trace, trace)
    assert archive.header.format_version == TRACE_FORMAT_VERSION
    assert archive.header.name == trace.name
    assert archive.header.num_instructions == len(trace)
    assert archive.header.seed == TEST_SEED
    assert archive.header.params == small_workload_params
    assert archive.header.regions == trace.regions


def test_on_disk_round_trip(tmp_path: Path, small_workload_params) -> None:
    trace = generate_member_trace(small_workload_params, 1200, seed=3)
    path = save_trace(trace, tmp_path / "t.rtrace", params=small_workload_params, seed=3)
    assert _traces_equal(load_trace(path), trace)
    header = read_trace_header(path)
    assert header.num_instructions == 1200
    assert header.params == small_workload_params


def test_hand_built_trace_round_trips_without_params(tmp_path: Path, tiny_trace) -> None:
    path = save_trace(tiny_trace, tmp_path / "tiny.rtrace")
    archive = load_trace_archive(path)
    assert _traces_equal(archive.trace, tiny_trace)
    assert archive.header.params is None
    assert archive.header.seed is None


def test_every_instruction_field_survives(tmp_path: Path) -> None:
    """Edge values of every record field survive the fixed-width encoding."""
    trace = Trace(
        [
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=0, srcs=()),
            Instruction(seq=1, iclass=InstrClass.FP_ALU, dest=127, srcs=(0, 63, 64, 127)),
            Instruction(
                seq=2, iclass=InstrClass.BRANCH, srcs=(5,), mispredicted=True
            ),
            Instruction(
                seq=3,
                iclass=InstrClass.LOAD,
                dest=8,
                srcs=(1,),
                address=(1 << 40) + 24,
                size=4,
                latency=300,
            ),
            Instruction(
                seq=4, iclass=InstrClass.STORE, srcs=(2, 3), address=0, size=16
            ),
        ],
        name="edges",
    )
    restored = trace_from_bytes(trace_to_bytes(trace)).trace
    assert list(restored) == list(trace)


def test_record_trace_equals_generate_then_save(tmp_path: Path) -> None:
    params = swim_like()
    archive = record_trace(params, 1000, tmp_path / "w.rtrace", seed=TEST_SEED)
    reference = generate_member_trace(params, 1000, seed=TEST_SEED)
    assert _traces_equal(archive.trace, reference)
    assert _traces_equal(load_trace(tmp_path / "w.rtrace"), reference)


def test_too_many_sources_rejected() -> None:
    crowded = Trace(
        [Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, srcs=(1, 2, 3, 4, 5))],
        name="crowded",
    )
    with pytest.raises(TraceError, match="at most 4"):
        trace_to_bytes(crowded)


# ----------------------------------------------------------------------
# Replay bit-identity (the acceptance criterion)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "suite_name, factory", REPLAY_WORKLOADS, ids=[name for name, _ in REPLAY_WORKLOADS]
)
def test_replay_is_bit_identical_to_regeneration(
    tmp_path: Path, suite_name: str, factory
) -> None:
    """save -> load -> simulate == generate -> simulate, per family and suite."""
    params = factory()
    generated = generate_member_trace(params, 1500, seed=TEST_SEED)
    path = save_trace(generated, tmp_path / "replay.rtrace", params=params, seed=TEST_SEED)
    replayed = load_trace(path)
    simulator = Simulator(fmc_hash())
    fresh = simulator.run_trace(generated)
    replay = simulator.run_trace(replayed)
    assert replay == fresh  # CoreResult equality covers cycles, stats, extras
    assert replay.to_dict() == fresh.to_dict()


def test_replay_is_bit_identical_on_the_baseline_core(tmp_path: Path) -> None:
    params = mcf_like()
    generated = generate_member_trace(params, 1500, seed=TEST_SEED)
    save_trace(generated, tmp_path / "b.rtrace", params=params)
    replay = Simulator(ooo_64()).run_trace(load_trace(tmp_path / "b.rtrace"))
    fresh = Simulator(ooo_64()).run_trace(generated)
    assert replay == fresh


# ----------------------------------------------------------------------
# Fail-loud validation
# ----------------------------------------------------------------------


def test_bad_magic_rejected(canned_trace_file: Path) -> None:
    data = canned_trace_file.read_bytes()
    with pytest.raises(TraceError, match="bad magic"):
        trace_from_bytes(b"NOTATRCE" + data[8:])


def test_unsupported_version_rejected(canned_trace_file: Path) -> None:
    data = bytearray(canned_trace_file.read_bytes())
    magic, _version, header_len = _HEADER_PREFIX.unpack_from(bytes(data), 0)
    _HEADER_PREFIX.pack_into(data, 0, magic, TRACE_FORMAT_VERSION + 1, header_len)
    with pytest.raises(TraceError, match="version"):
        trace_from_bytes(bytes(data))
    canned_trace_file.write_bytes(bytes(data))
    with pytest.raises(TraceError, match="version"):
        read_trace_header(canned_trace_file)


def test_truncation_rejected(canned_trace_file: Path) -> None:
    data = canned_trace_file.read_bytes()
    for cut in (4, _HEADER_PREFIX.size + 10, len(data) // 2, len(data) - 2):
        with pytest.raises(TraceError, match="truncated|corrupt"):
            trace_from_bytes(data[:cut])


def test_record_corruption_rejected(canned_trace_file: Path) -> None:
    data = bytearray(canned_trace_file.read_bytes())
    # Flip a byte in the middle of the record section: CRC must catch it.
    data[len(data) // 2] ^= 0xFF
    with pytest.raises(TraceError, match="CRC|corrupt|unknown instruction-class"):
        trace_from_bytes(bytes(data))


def test_header_only_read_does_not_parse_records(canned_trace_file: Path) -> None:
    """Corrupt records do not prevent reading the header (cheap info path)."""
    data = bytearray(canned_trace_file.read_bytes())
    data[-10] ^= 0xFF
    canned_trace_file.write_bytes(bytes(data))
    header = read_trace_header(canned_trace_file)
    assert header.num_instructions == 1500
    with pytest.raises(TraceError):
        load_trace_archive(canned_trace_file)

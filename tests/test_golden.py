"""Golden-numerics regression tests.

Each golden snapshot pins the complete JSON-serialised result series of one
experiment under an exactly specified campaign (suites, trace length, seed).
The simulator is deterministic -- workload generation flows through
``DeterministicRng`` seeded from configuration alone and the timing models
contain no randomness -- so a reproduction must match the snapshot *bit for
bit*; any diff is a semantic change to the models, the generator or the
experiment post-processing and must be reviewed as such.

Regenerating after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden.py --regen-golden
    git diff tests/golden/   # review the numeric drift, then commit

The comparison runs on every push in CI (the ``golden-drift`` job), so an
accidental numerics change cannot land silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Tuple

import pytest

from repro.common.serialize import to_jsonable
from repro.sim.experiments import (
    campaign_context,
    family_sweep,
    fig7_speedups,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The pinned campaign of every golden: the quick two-workload suites at a
#: short trace length (fast enough for every push) and the paper-year seed.
GOLDEN_SEED = 2008
FIG7_INSTRUCTIONS = 2_000
FAMILY_INSTRUCTIONS = 1_200


def _fig7_results(engine: str) -> Any:
    context = campaign_context(
        instructions=FIG7_INSTRUCTIONS, seed=GOLDEN_SEED, engine=engine
    )
    rows, baseline_ipc = fig7_speedups(context)
    return {"rows": to_jsonable(rows), "baseline_ipc": to_jsonable(baseline_ipc)}


def _family_sweep_results(engine: str) -> Any:
    context = campaign_context(
        instructions=FAMILY_INSTRUCTIONS, seed=GOLDEN_SEED, engine=engine
    )
    points = family_sweep(
        context, epoch_counts=(2, 16), locality_thresholds=(10, 90)
    )
    return to_jsonable(points)


#: Engines every golden runs under.  The snapshots themselves are
#: engine-agnostic: the fast engine must reproduce the reference numbers bit
#: for bit, so both parametrizations compare against the *same* file --
#: numeric drift of the optimised loop cannot land silently.
ENGINES = ("reference", "fast")

#: name -> (snapshot file, campaign descriptor, result builder).
GOLDENS: Dict[str, Tuple[str, Dict[str, Any], Callable[[str], Any]]] = {
    "fig7": (
        "fig7_quick.json",
        {
            "experiment": "fig7",
            "suites": ["spec_fp_quick", "spec_int_quick"],
            "instructions_per_workload": FIG7_INSTRUCTIONS,
            "seed": GOLDEN_SEED,
        },
        _fig7_results,
    ),
    "family-sweep": (
        "family_sweep_quick.json",
        {
            "experiment": "family-sweep",
            "families": ["pointer_chase", "streaming", "branchy", "phased"],
            "epoch_counts": [2, 16],
            "locality_thresholds": [10, 90],
            "instructions_per_workload": FAMILY_INSTRUCTIONS,
            "seed": GOLDEN_SEED,
        },
        _family_sweep_results,
    ),
}


def _canonical(document: Any) -> Any:
    """Normalise through a JSON round trip (tuples->lists, key order)."""
    return json.loads(json.dumps(document, sort_keys=True))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden_numerics(name: str, engine: str, regen_golden: bool) -> None:
    filename, campaign, builder = GOLDENS[name]
    path = GOLDEN_DIR / filename
    document = _canonical({"campaign": campaign, "results": builder(engine)})
    if regen_golden:
        if engine != "reference":
            pytest.skip("snapshots are regenerated from the reference engine only")
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    assert path.is_file(), (
        f"golden snapshot {path} is missing; create it with "
        f"`python -m pytest tests/test_golden.py --regen-golden`"
    )
    expected = json.loads(path.read_text())
    assert document["campaign"] == expected["campaign"], (
        f"{name}: the golden campaign description changed; regenerate the "
        f"snapshot deliberately with --regen-golden"
    )
    assert document["results"] == expected["results"], (
        f"{name}: numerics drifted from {path.name}; if the change is "
        f"intentional, regenerate with --regen-golden and review the diff"
    )


def test_goldens_have_no_orphan_snapshots() -> None:
    """Every file in tests/golden/ belongs to a registered golden."""
    known = {filename for filename, _, _ in GOLDENS.values()}
    on_disk = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk == known

"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the metrics registry (exposition-format golden output parsed by a
tiny line parser, percentile correctness against :func:`statistics.quantiles`),
request-scoped tracing (round trip client -> server -> response), span
profiling (Chrome trace-event export, worker-side spans from a parallel run)
and the structured log formatters.
"""

from __future__ import annotations

import json
import logging
import statistics
import urllib.request

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import logs as obs_logs
from repro.obs import spans as obs_spans
from repro.obs.metrics import (
    RESERVOIR_LIMIT,
    MetricsRegistry,
    Reservoir,
    get_registry,
)
from repro.obs.tracing import (
    TRACE_ID_HEADER,
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    reset_trace_id,
    set_trace_id,
    valid_trace_id,
)

from test_service import running_service

# ----------------------------------------------------------------------
# Reservoir percentiles
# ----------------------------------------------------------------------


def test_reservoir_quantile_matches_statistics_quantiles() -> None:
    values = [float(v) for v in (12, 3, 44, 7, 19, 28, 5, 61, 33, 9, 2, 50)]
    reservoir = Reservoir()
    for value in values:
        reservoir.record(value)
    # The interpolated quantile must agree with the stdlib's inclusive
    # method (the one defined on the data itself, not a padded sample).
    cuts = statistics.quantiles(values, n=100, method="inclusive")
    for q in (0.50, 0.95, 0.99):
        assert reservoir.quantile(q) == pytest.approx(cuts[int(q * 100) - 1])


def test_reservoir_bounds_memory_but_counts_everything() -> None:
    reservoir = Reservoir()
    for value in range(RESERVOIR_LIMIT + 500):
        reservoir.record(float(value))
    assert reservoir.count == RESERVOIR_LIMIT + 500
    snapshot = reservoir.snapshot()
    # Percentiles come from the newest RESERVOIR_LIMIT samples only.
    assert snapshot["max"] == float(RESERVOIR_LIMIT + 499)
    assert snapshot["count"] == RESERVOIR_LIMIT + 500


# ----------------------------------------------------------------------
# Exposition format
# ----------------------------------------------------------------------


def _parse_exposition(text: str):
    """A tiny Prometheus text-format parser: samples, HELP and TYPE lines.

    Returns ``(samples, helps, types)`` where ``samples`` maps
    ``(name, frozenset(labels.items()))`` to the parsed float value.
    """
    samples = {}
    helps = {}
    types = {}
    for line in text.splitlines():
        assert not line.startswith(" "), f"unexpected indented line: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        if not line:
            continue
        body, _, value = line.rpartition(" ")
        labels = {}
        if "{" in body:
            name, _, label_blob = body.partition("{")
            label_blob = label_blob.rstrip("}")
            for pair in label_blob.split('",'):
                key, _, raw = pair.partition('="')
                labels[key] = (
                    raw.rstrip('"')
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        else:
            name = body
        samples[(name, frozenset(labels.items()))] = float(value)
    return samples, helps, types


def test_render_text_golden() -> None:
    registry = MetricsRegistry()
    registry.counter("demo_total", "A demo counter", labelnames=("kind",)).labels(
        "alpha"
    ).inc(3)
    registry.gauge("demo_depth", "A demo gauge").set(7)
    summary = registry.summary("demo_seconds", "A demo summary")
    for value in (1.0, 2.0, 3.0, 4.0):
        summary.record(value)
    text = registry.render_text()
    samples, helps, types = _parse_exposition(text)
    assert types == {
        "demo_depth": "gauge",
        "demo_seconds": "summary",
        "demo_total": "counter",
    }
    assert helps["demo_total"] == "A demo counter"
    assert samples[("demo_total", frozenset({("kind", "alpha")}))] == 3.0
    assert samples[("demo_depth", frozenset())] == 7.0
    assert samples[("demo_seconds_count", frozenset())] == 4.0
    assert samples[("demo_seconds_sum", frozenset())] == 10.0
    assert samples[("demo_seconds", frozenset({("quantile", "0.5")}))] == pytest.approx(
        2.5
    )


def test_label_values_are_escaped() -> None:
    registry = MetricsRegistry()
    registry.counter("odd_total", "odd labels", labelnames=("name",)).labels(
        'quo"te\\back\nline'
    ).inc()
    samples, _, _ = _parse_exposition(registry.render_text())
    assert samples[("odd_total", frozenset({("name", 'quo"te\\back\nline')}))] == 1.0


def test_registry_rejects_conflicting_registration() -> None:
    registry = MetricsRegistry()
    registry.counter("thing_total", "first")
    # Same shape: get-or-create returns the same family.
    again = registry.counter("thing_total", "first")
    assert again is registry.counter("thing_total", "first")
    with pytest.raises(ConfigurationError):
        registry.gauge("thing_total", "first")
    with pytest.raises(ConfigurationError):
        registry.counter("thing_total", "first", labelnames=("other",))


def test_callback_gauge_refreshes_at_render_time() -> None:
    registry = MetricsRegistry()
    box = {"value": 1}
    registry.gauge("live_depth", "refreshed").set_function(lambda: box["value"])
    samples, _, _ = _parse_exposition(registry.render_text())
    assert samples[("live_depth", frozenset())] == 1.0
    box["value"] = 9
    samples, _, _ = _parse_exposition(registry.render_text())
    assert samples[("live_depth", frozenset())] == 9.0


def test_as_document_mirrors_families() -> None:
    registry = MetricsRegistry()
    registry.counter("doc_total", "documented").inc(2)
    document = registry.as_document()
    by_name = {entry["name"]: entry for entry in document["metrics"]}
    assert by_name["doc_total"]["type"] == "counter"
    assert by_name["doc_total"]["samples"][0]["value"] == 2


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


def test_trace_id_validation_and_minting() -> None:
    assert valid_trace_id("abc123")
    assert valid_trace_id("a-b.c_d")
    assert not valid_trace_id("")
    assert not valid_trace_id("-leading-dash")
    assert not valid_trace_id("x" * 200)
    assert not valid_trace_id("white space")
    minted = new_trace_id()
    assert valid_trace_id(minted)
    assert ensure_trace_id("good-id") == "good-id"
    assert ensure_trace_id("bad id") != "bad id"


def test_trace_context_set_and_reset() -> None:
    assert current_trace_id() is None
    token = set_trace_id("ctx-1")
    try:
        assert current_trace_id() == "ctx-1"
    finally:
        reset_trace_id(token)
    assert current_trace_id() is None


def test_trace_id_round_trip_through_service(tmp_path) -> None:
    with running_service(tmp_path / "cache") as (service, client):
        receipt = client.submit(figure="fig7", instructions=2000)
        # The receipt carries the client-minted ID, echoed by the server.
        assert receipt.trace_id is not None
        assert valid_trace_id(receipt.trace_id)
        view = client.wait(receipt.job_id)
        assert view["trace_id"] == receipt.trace_id
        # A raw request with an explicit header gets it echoed back in both
        # the response header and the envelope.
        host, port = service.address
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/healthz",
            headers={TRACE_ID_HEADER: "my-trace-42"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers[TRACE_ID_HEADER] == "my-trace-42"
            body = json.loads(response.read())
        assert body["trace_id"] == "my-trace-42"
        # An invalid incoming ID is replaced with a freshly minted one.
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/healthz",
            headers={TRACE_ID_HEADER: "bad id with spaces"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            echoed = response.headers[TRACE_ID_HEADER]
        assert echoed and echoed != "bad id with spaces"
        assert valid_trace_id(echoed)


# ----------------------------------------------------------------------
# Metrics endpoint
# ----------------------------------------------------------------------


def test_metrics_endpoint_text_and_json(tmp_path) -> None:
    with running_service(tmp_path / "cache") as (service, client):
        client.submit(figure="fig7", instructions=2000, wait=True)
        host, port = service.address
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        samples, _, types = _parse_exposition(text)
        assert types["repro_http_requests_total"] == "counter"
        assert types["repro_tenant_queue_wait_seconds"] == "summary"
        # The flood of requests this test itself made is visible.
        assert (
            sum(
                value
                for (name, _), value in samples.items()
                if name == "repro_http_requests_total"
            )
            > 0
        )
        dispatched = samples[
            (
                "repro_tenant_jobs_total",
                frozenset({("tenant", "default"), ("event", "dispatched")}),
            )
        ]
        assert dispatched >= 1
        assert ("repro_queue_depth", frozenset()) in samples
        assert ("repro_uptime_seconds", frozenset()) in samples
        # Cache metrics ride the same registry.
        assert any(name == "repro_cache_requests_total" for name, _ in samples)
        # The JSON document exposes the same families via the client SDK.
        document = client.metrics()
        names = {entry["name"] for entry in document["metrics"]}
        assert "repro_http_requests_total" in names
        assert "repro_tenant_jobs_total" in names


def test_stats_document_is_versioned(tmp_path) -> None:
    with running_service(tmp_path / "cache") as (_service, client):
        stats = client.stats()
        assert stats["schema_version"] == 2
        assert isinstance(stats["uptime_seconds"], float)


# ----------------------------------------------------------------------
# Spans and Chrome trace export
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _clean_spans():
    obs_spans.reset()
    obs_spans.set_recording(False)
    yield
    obs_spans.reset()
    obs_spans.set_recording(False)


def test_spans_are_noops_until_armed() -> None:
    with obs_spans.span("ignored"):
        pass
    assert obs_spans.snapshot() == []
    obs_spans.start_recording()
    with obs_spans.span("kept", category="test", args={"k": 1}):
        pass
    obs_spans.stop_recording()
    (entry,) = obs_spans.snapshot()
    assert entry["name"] == "kept"
    assert entry["category"] == "test"
    assert entry["args"] == {"k": 1}
    assert entry["duration"] >= 0.0


def test_phase_totals_accumulate_regardless_of_recording() -> None:
    obs_spans.add_phase("drive", 1.5)
    obs_spans.add_phase("drive", 0.5)
    assert obs_spans.phase_totals() == {"drive": 2.0}
    assert obs_spans.snapshot() == []  # not armed: no span log entries


def test_merge_worker_folds_phases_and_spans() -> None:
    obs_spans.start_recording()
    obs_spans.add_phase("build", 1.0)
    obs_spans.merge_worker(
        {
            "pid": 4242,
            "phases": {"build": 2.0, "drive": 3.0},
            "spans": [
                {
                    "name": "build",
                    "category": "phase",
                    "start": 10.0,
                    "duration": 2.0,
                    "pid": 4242,
                    "tid": 1,
                    "args": None,
                }
            ],
        }
    )
    obs_spans.stop_recording()
    totals = obs_spans.phase_totals()
    assert totals["build"] == 3.0
    assert totals["drive"] == 3.0
    assert any(entry["pid"] == 4242 for entry in obs_spans.snapshot())


def test_chrome_trace_export_shape() -> None:
    obs_spans.start_recording()
    with obs_spans.span("outer", category="profile"):
        with obs_spans.span("inner"):
            pass
    obs_spans.stop_recording()
    document = obs_spans.to_chrome_trace(
        obs_spans.snapshot(), metadata={"figure": "fig7"}
    )
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"] == {"figure": "fig7"}
    events = document["traceEvents"]
    complete = [event for event in events if event["ph"] == "X"]
    metadata_events = [event for event in events if event["ph"] == "M"]
    assert len(complete) == 2
    assert len(metadata_events) == 1
    for event in complete:
        assert {"name", "ph", "ts", "dur", "pid", "tid", "cat"} <= set(event)
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    # Timestamps are normalised: the earliest event starts at zero.
    assert min(event["ts"] for event in complete) == 0


def test_parallel_run_ships_worker_spans(monkeypatch) -> None:
    import repro.exp.runner as runner_mod

    monkeypatch.setattr(runner_mod, "available_cpus", lambda: 2)
    from repro.exp.runner import ExperimentRunner, SimJob
    from repro.sim.configs import fmc_hash
    from repro.workloads.suite import quick_int_suite

    machine = fmc_hash()
    members = list(quick_int_suite())[:2]
    jobs = [
        SimJob(machine, workload, 2000, 7 + index)
        for index, workload in enumerate(members)
    ]
    runner = ExperimentRunner(jobs=2, cache=None)
    obs_spans.start_recording()
    try:
        results = runner.run_batch(jobs)
    finally:
        obs_spans.stop_recording()
        runner.close()
    assert len(results) == 2
    import os

    pids = {entry["pid"] for entry in obs_spans.snapshot()}
    assert pids - {os.getpid()}, "expected spans shipped back from pool workers"
    # Worker phase seconds were merged into the parent's totals too.
    assert obs_spans.phase_totals().get("drive", 0.0) > 0.0


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------


def _make_record(message: str, **extra):
    record = logging.LogRecord(
        name="repro.test", level=logging.INFO, pathname=__file__, lineno=1,
        msg=message, args=(), exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


def test_json_formatter_injects_trace_id() -> None:
    formatter = obs_logs.JsonLogFormatter()
    token = set_trace_id("log-trace-7")
    try:
        line = formatter.format(_make_record("hello %s" % "world", tenant="alpha"))
    finally:
        reset_trace_id(token)
    document = json.loads(line)
    assert document["message"] == "hello world"
    assert document["trace_id"] == "log-trace-7"
    assert document["tenant"] == "alpha"
    assert document["level"] == "info"
    assert document["logger"] == "repro.test"


def test_text_formatter_appends_trace_id() -> None:
    formatter = obs_logs.TextLogFormatter()
    token = set_trace_id("txt-1")
    try:
        line = formatter.format(_make_record("plain"))
    finally:
        reset_trace_id(token)
    assert "plain" in line
    assert "trace_id=txt-1" in line


def test_configure_logging_is_idempotent() -> None:
    logger = logging.getLogger("repro")
    before = list(logger.handlers)
    obs_logs.configure_logging("debug")
    obs_logs.configure_logging("warning")
    ours = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
    assert len(ours) == 1
    assert logger.level == logging.WARNING
    with pytest.raises(ValueError):
        obs_logs.configure_logging("chatty")
    # Restore whatever handlers the session had.
    for handler in ours:
        logger.removeHandler(handler)
    for handler in before:
        if handler not in logger.handlers:
            logger.addHandler(handler)


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------


def test_get_registry_is_a_singleton() -> None:
    assert get_registry() is get_registry()

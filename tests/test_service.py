"""Tests for the simulation service (repro.service).

Covers the ISSUE's acceptance surface: submit/status/result round trips that
are bit-identical to the local experiment path, coalescing of identical
concurrent submissions (the simulation runs exactly once), warm-cache
re-submissions that execute zero simulations, 429 under a full queue, and
the wire schema itself (envelopes, request normalisation, validation).

The server runs in-process on an ephemeral port, with its event loop on a
background thread; the blocking client SDK talks to it over real HTTP.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import urllib.error
import urllib.request

import pytest
from _helpers import TEST_INSTRUCTIONS, TEST_SEED

from repro._version import __version__
from repro.common.errors import ConfigurationError, ServiceError, ServiceOverloadedError
from repro.common.serialize import open_envelope, to_jsonable, wire_envelope
from repro.exp.request import JobRequest
from repro.exp.runner import SimJob, run_job
from repro.service.client import ServiceClient
from repro.service.server import ReproService, ServiceConfig
from repro.sim.configs import fmc_hash, ooo_64
from repro.sim.experiments import campaign_context, experiment_by_name
from repro.workloads.suite import quick_fp_suite

#: Generous bound for one quick-campaign figure on a loaded CI machine.
WAIT_TIMEOUT = 120.0


@contextlib.contextmanager
def running_service(cache_dir, **overrides):
    """Start a ReproService on an ephemeral port; yields (service, client)."""
    settings = {"workers": 1, "sim_jobs": 1, "queue_limit": 2, "history_limit": 64}
    settings.update(overrides)
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=None if cache_dir is None else str(cache_dir),
        **settings,
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    service = ReproService(config)
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=10)
    client = ServiceClient(f"http://127.0.0.1:{service.address[1]}", timeout=30.0)
    try:
        yield service, client
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


@pytest.fixture()
def service(tmp_path):
    with running_service(tmp_path / "cache") as (svc, client):
        yield svc, client


# ----------------------------------------------------------------------
# Health and basic HTTP behaviour
# ----------------------------------------------------------------------


def test_healthz_reports_version_and_limits(service) -> None:
    svc, client = service
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["version"] == __version__
    assert health["workers"] == 1
    assert health["queue_limit"] == 2
    assert health["jobs"]["submitted"] == 0


def test_unknown_endpoint_and_wrong_method(service) -> None:
    svc, client = service
    base = client.base_url
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{base}/v1/nope", timeout=10)
    assert excinfo.value.code == 404
    payload = open_envelope(json.load(excinfo.value), "error")
    assert "unknown endpoint" in payload["message"]
    # GET on the submission endpoint is a 405, not a crash.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{base}/v1/jobs", timeout=10)
    assert excinfo.value.code == 405


def test_header_flood_is_rejected(service) -> None:
    """Unbounded header streams are cut off with a 400, not accumulated."""
    import socket

    svc, client = service
    host, port = svc.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n")
        try:
            for index in range(500):
                sock.sendall(f"x-flood-{index}: y\r\n".encode())
            sock.sendall(b"\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # server may already have slammed the door mid-flood
        sock.settimeout(10)
        response = b""
        try:
            while chunk := sock.recv(4096):
                response += chunk
        except (ConnectionResetError, TimeoutError):
            pass
    assert b"400" in response.split(b"\r\n", 1)[0]


def test_client_ignores_proxy_environment(service, monkeypatch) -> None:
    """http_proxy env vars must not hijack loopback service traffic."""
    svc, client = service
    monkeypatch.setenv("http_proxy", "http://192.0.2.1:9")  # unreachable by design
    monkeypatch.setenv("HTTP_PROXY", "http://192.0.2.1:9")
    assert client.healthz()["status"] == "ok"


def test_malformed_submission_bodies_are_400(service) -> None:
    svc, client = service

    def post(body: bytes):
        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        return excinfo.value.code

    assert post(b"{ not json") == 400
    assert post(json.dumps({"no": "envelope"}).encode()) == 400
    # A valid envelope of the wrong schema version is rejected loudly.
    bad = wire_envelope("job_request", JobRequest(figure="fig7").to_dict())
    bad["wire_schema"] = 999
    assert post(json.dumps(bad).encode()) == 400
    # Unknown figure names are a client error, not a worker crash.
    envelope = wire_envelope("job_request", {"figure": "fig99"})
    assert post(json.dumps(envelope).encode()) == 400


# ----------------------------------------------------------------------
# Submit / status / result round trip
# ----------------------------------------------------------------------


def test_submit_roundtrip_is_bit_identical_to_local_run(service) -> None:
    svc, client = service
    view = client.run(
        figure="sec52", instructions=TEST_INSTRUCTIONS, seed=TEST_SEED, timeout=WAIT_TIMEOUT
    )
    assert view["status"] == "completed"
    assert view["figure"] == "sec52"
    assert view["progress"]["executed_jobs"] > 0
    assert view["progress"]["cache_hits"] == 0
    # The remote result must match the local serial path bit for bit (the
    # CLI's artifact is the same to_jsonable of the same experiment run).
    context = campaign_context(instructions=TEST_INSTRUCTIONS, seed=TEST_SEED)
    expected = json.loads(json.dumps(to_jsonable(experiment_by_name("sec52").run(context))))
    assert view["result"] == expected
    # Status without the payload still carries the progress counters.
    slim = client.status(view["job_id"], include_result=False)
    assert "result" not in slim
    assert slim["progress"] == view["progress"]


def test_case_batch_and_results_endpoint(service) -> None:
    svc, client = service
    job = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    view = client.run(cases=[job], timeout=WAIT_TIMEOUT)
    assert view["case_count"] == 1
    assert view["progress"]["executed_jobs"] == 1
    assert view["result"] == {job.key(): run_job(job).to_dict()}
    # The cache lookup endpoint resolves the job's content address directly.
    assert client.result(job.key()) == run_job(job).to_dict()
    assert client.result("0" * 64) is None
    # Keys that are not plain hex content addresses never reach the
    # filesystem (no path traversal out of the cache root).
    assert client.result("..%2F..%2Fetc%2Fpasswd") is None
    assert client.result("KEY") is None


def test_recorded_trace_replays_bit_identically_through_the_service(
    service, canned_trace_file
) -> None:
    """The acceptance path: a recorded trace, replayed remotely via its
    recorded provenance, matches simulating the recorded bytes locally."""
    from repro.sim.simulator import Simulator
    from repro.trace import load_trace_archive

    svc, client = service
    archive = load_trace_archive(canned_trace_file)
    assert archive.header.params is not None
    job = SimJob(
        fmc_hash(),
        archive.header.params,
        archive.header.num_instructions,
        archive.header.seed,
    )
    view = client.run(cases=[job], timeout=WAIT_TIMEOUT)
    local = Simulator(fmc_hash()).run_trace(archive.trace)
    assert view["result"] == {job.key(): local.to_dict()}


def test_parallel_sim_jobs_inside_service(tmp_path) -> None:
    """A service worker thread can run a process pool (spawn start method)."""
    with running_service(tmp_path / "cache", sim_jobs=2) as (svc, client):
        jobs = [
            SimJob(ooo_64(), member, 800, TEST_SEED)
            for member in quick_fp_suite().members[:2]
        ]
        view = client.run(cases=jobs, timeout=WAIT_TIMEOUT)
        assert view["progress"]["executed_jobs"] == 2
        assert view["result"] == {job.key(): run_job(job).to_dict() for job in jobs}


def test_unknown_job_id_raises(service) -> None:
    svc, client = service
    with pytest.raises(ServiceError, match="unknown job"):
        client.status("job-999999")


def test_transport_stalls_surface_as_service_error() -> None:
    """A server that accepts but never answers maps to ServiceError, not a raw
    socket.timeout traceback (the CLI turns ServiceError into exit code 2)."""
    import socket

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        port = listener.getsockname()[1]
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=0.3)
        with pytest.raises(ServiceError, match="transport failure|cannot reach"):
            client.healthz()
    finally:
        listener.close()


# ----------------------------------------------------------------------
# Coalescing and admission control
# ----------------------------------------------------------------------


def test_identical_concurrent_submissions_run_once(service) -> None:
    """Two identical in-flight POSTs share one execution (the tentpole)."""
    svc, client = service
    started, release = threading.Event(), threading.Event()

    def gate(_state):
        started.set()
        release.wait(timeout=30)

    svc.manager.pre_execute = gate
    first = client.submit(figure="sec52", instructions=TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert not first.coalesced
    assert started.wait(timeout=10), "job never started executing"
    # Jobs execute on daemon threads so Ctrl-C on `repro serve` exits
    # promptly instead of joining a long-running simulation.
    assert any(
        thread.name == "repro-worker" and thread.daemon
        for thread in threading.enumerate()
    )
    second = client.submit(figure="sec52", instructions=TEST_INSTRUCTIONS, seed=TEST_SEED)
    assert second.coalesced
    assert second.job_id == first.job_id
    svc.manager.pre_execute = None
    release.set()
    view = client.wait(first.job_id, timeout=WAIT_TIMEOUT)
    assert view["coalesced_submissions"] == 1
    assert view["progress"]["executed_jobs"] > 0
    # Exactly one execution happened for the two submissions.
    assert svc.manager.stats == {
        "submitted": 1,
        "coalesced": 1,
        "completed": 1,
        "failed": 0,
    }


def test_resubmission_after_completion_is_pure_cache(service) -> None:
    svc, client = service
    cold = client.run(
        figure="sec52", instructions=TEST_INSTRUCTIONS, seed=TEST_SEED, timeout=WAIT_TIMEOUT
    )
    warm = client.run(
        figure="sec52", instructions=TEST_INSTRUCTIONS, seed=TEST_SEED, timeout=WAIT_TIMEOUT
    )
    # A new job (the first one finished, so no coalescing window remains) ...
    assert warm["job_id"] != cold["job_id"]
    # ... that executed zero simulations and reproduced identical numbers.
    assert warm["progress"]["executed_jobs"] == 0
    assert warm["progress"]["cache_hits"] == cold["progress"]["executed_jobs"]
    assert warm["result"] == cold["result"]
    assert warm["request_key"] == cold["request_key"]


def test_full_queue_answers_429(service) -> None:
    svc, client = service
    started, release = threading.Event(), threading.Event()

    def gate(_state):
        started.set()
        release.wait(timeout=30)

    svc.manager.pre_execute = gate
    # Occupy the single worker, then fill the two queue slots.
    held = [client.submit(figure="sec52", instructions=600, seed=1)]
    assert started.wait(timeout=10)
    held.append(client.submit(figure="sec52", instructions=600, seed=2))
    held.append(client.submit(figure="sec52", instructions=600, seed=3))
    with pytest.raises(ServiceOverloadedError):
        client.submit(figure="sec52", instructions=600, seed=4)
    svc.manager.pre_execute = None
    release.set()
    for receipt in held:
        client.wait(receipt.job_id, timeout=WAIT_TIMEOUT)
    assert svc.manager.health()["queue_depth"] == 0


def test_failed_job_reports_error_not_500(service) -> None:
    """A job that dies mid-execution fails that job, not the server."""
    svc, client = service

    def explode(_state):
        raise RuntimeError("injected failure")

    svc.manager.pre_execute = explode
    receipt = client.submit(figure="sec52", instructions=600, seed=5)
    with pytest.raises(ServiceError, match="injected failure"):
        client.wait(receipt.job_id, timeout=WAIT_TIMEOUT)
    svc.manager.pre_execute = None
    assert client.healthz()["status"] == "ok"
    assert svc.manager.stats["failed"] == 1


# ----------------------------------------------------------------------
# Wire schema
# ----------------------------------------------------------------------


def test_job_request_roundtrip_and_validation() -> None:
    job = SimJob(ooo_64(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, TEST_SEED)
    request = JobRequest(cases=(job,))
    rebuilt = JobRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert rebuilt == request
    assert rebuilt.key() == request.key()
    with pytest.raises(ConfigurationError):
        JobRequest()  # neither figure nor cases
    with pytest.raises(ConfigurationError):
        JobRequest(figure="fig7", cases=(job,))  # both
    with pytest.raises(ConfigurationError):
        JobRequest(figure="fig7", instructions=0)
    with pytest.raises(ConfigurationError):
        JobRequest(figure="no-such-figure").normalized()
    # Campaign knobs on a case batch would be silently misleading: each
    # SimJob already embeds its trace length and seed.
    with pytest.raises(ConfigurationError):
        JobRequest(cases=(job,), instructions=5_000)
    with pytest.raises(ConfigurationError):
        JobRequest(cases=(job,), seed=42)
    with pytest.raises(ConfigurationError):
        JobRequest(cases=(job,), full=True)


def test_request_key_normalises_campaign_defaults() -> None:
    """Defaulted and explicit-default submissions must coalesce."""
    implicit = JobRequest(figure="fig7")
    explicit = JobRequest(figure="fig7", instructions=8_000, seed=2008)
    assert implicit.key() == explicit.key()
    assert implicit.key() != JobRequest(figure="fig7", seed=2009).key()
    assert implicit.key() != JobRequest(figure="fig7", full=True).key()
    assert implicit.key() != JobRequest(figure="sec52").key()


def test_cli_service_defaults_match_server() -> None:
    """The CLI restates the service defaults to stay lazy; they must agree."""
    from repro.exp import cli
    from repro.service import server

    assert cli.DEFAULT_SERVICE_PORT == server.DEFAULT_PORT
    assert cli.DEFAULT_CACHE_DIR == ServiceConfig().cache_dir
    # Every registered experiment has a real table renderer (the JSON
    # fallback exists so a missed renderer degrades instead of crashing).
    from repro.sim.experiments import EXPERIMENTS

    assert set(cli._RENDERERS) == set(EXPERIMENTS)


def test_envelope_validation() -> None:
    envelope = wire_envelope("job_status", {"job_id": "job-000001"})
    assert open_envelope(envelope, "job_status") == {"job_id": "job-000001"}
    with pytest.raises(ConfigurationError):
        open_envelope(envelope, "job_request")  # wrong kind
    with pytest.raises(ConfigurationError):
        open_envelope({"kind": "job_status", "payload": {}}, "job_status")  # no version
    with pytest.raises(ConfigurationError):
        open_envelope("not a mapping", "job_status")

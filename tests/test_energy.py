"""Tests for the energy model (Section 6)."""

from __future__ import annotations

import pytest

from repro.common.config import ELSQConfig, ERTConfig, ERTKind
from repro.common.errors import ConfigurationError
from repro.energy.accounting import EnergyModel
from repro.energy.cacti import (
    ERT_2KB_READ_NJ,
    L1_32KB_READ_NJ,
    StructureKind,
    access_energy_nj,
    cache_read_energy_nj,
    cam_search_energy_nj,
    sram_read_energy_nj,
)
from repro.sim.configs import ooo_64
from repro.sim.simulator import Simulator
from repro.workloads.suite import quick_fp_suite


class TestCactiAnchors:
    def test_published_anchor_values(self):
        assert sram_read_energy_nj(2 * 1024) == pytest.approx(ERT_2KB_READ_NJ)
        assert cache_read_energy_nj(32 * 1024) == pytest.approx(L1_32KB_READ_NJ)

    def test_paper_ratio_ert_is_about_two_percent_of_l1(self):
        ratio = sram_read_energy_nj(2 * 1024) / cache_read_energy_nj(32 * 1024)
        assert 0.01 < ratio < 0.04

    def test_energy_grows_with_capacity(self):
        assert sram_read_energy_nj(8 * 1024) > sram_read_energy_nj(2 * 1024)
        assert cache_read_energy_nj(64 * 1024) > cache_read_energy_nj(32 * 1024)

    def test_cam_energy_linear_in_entries(self):
        assert cam_search_energy_nj(64) == pytest.approx(2 * cam_search_energy_nj(32))

    def test_access_energy_dispatch(self):
        assert access_energy_nj(StructureKind.SRAM, 2 * 1024) == pytest.approx(ERT_2KB_READ_NJ)
        assert access_energy_nj(StructureKind.CACHE, 32 * 1024) == pytest.approx(L1_32KB_READ_NJ)
        assert access_energy_nj(StructureKind.CAM, 512, entries=32) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sram_read_energy_nj(0)
        with pytest.raises(ConfigurationError):
            cam_search_energy_nj(0)
        with pytest.raises(ConfigurationError):
            access_energy_nj(StructureKind.CAM, 512, entries=0)


class TestEnergyModel:
    def test_per_access_table_contains_all_structures(self):
        energies = EnergyModel().per_access_energies_nj()
        assert set(energies) == {"hl_lq", "hl_sq", "ll_lq", "ll_sq", "ert", "ssbf", "sqm", "cache"}
        assert all(value > 0 for value in energies.values())

    def test_ert_vs_cache_ratio(self):
        assert EnergyModel().ert_vs_cache_read_ratio() == pytest.approx(0.02, abs=0.015)

    def test_line_based_ert_energy_scales_with_l1(self):
        hash_model = EnergyModel(ELSQConfig(ert=ERTConfig(kind=ERTKind.HASH, hash_bits=10)))
        line_model = EnergyModel(ELSQConfig(ert=ERTConfig(kind=ERTKind.LINE)))
        assert line_model.per_access_energies_nj()["ert"] == pytest.approx(
            hash_model.per_access_energies_nj()["ert"]
        )

    def test_breakdown_from_simulation(self):
        suite = quick_fp_suite()
        result = Simulator(ooo_64()).run_suite(suite, num_instructions=1500, seed=3)
        one = next(iter(result.results.values()))
        breakdown = EnergyModel().breakdown(one)
        assert breakdown.total_nj > 0
        assert breakdown.nj("hl_sq") > 0
        assert breakdown.nj("cache") > 0
        assert breakdown.nj("ll_sq") == 0, "a conventional core never touches LL queues"
        assert 0.0 <= breakdown.fraction("cache") <= 1.0

    def test_fraction_of_missing_structure_is_zero(self):
        suite = quick_fp_suite()
        result = Simulator(ooo_64()).run_suite(suite, num_instructions=1000, seed=3)
        breakdown = EnergyModel().breakdown(next(iter(result.results.values())))
        assert breakdown.fraction("does_not_exist") == 0.0

"""Tests for the ELSQ building blocks: hashing, ERT, store buffer, records."""

from __future__ import annotations

import pytest

from repro.common.config import ERTConfig, ERTKind
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import StatsRegistry
from repro.core.bloom import AddressHash, CountingBloomFilter
from repro.core.ert import HashBasedERT, LineBasedERT, build_ert
from repro.core.queues import StoreBuffer
from repro.core.records import EpochState, Locality, LoadRecord, StoreRecord
from repro.core.sqm import StoreQueueMirror
from repro.memory.hierarchy import MemoryHierarchy


def make_store(
    seq: int,
    address: int,
    *,
    decode: int = 0,
    addr_ready: int = 5,
    data_ready: int = 6,
    commit: int = 100,
    locality: Locality = Locality.HIGH,
    epoch: int = None,
    migration: int = None,
    size: int = 8,
) -> StoreRecord:
    return StoreRecord(
        seq=seq,
        address=address,
        size=size,
        decode_cycle=decode,
        addr_ready_cycle=addr_ready,
        data_ready_cycle=data_ready,
        commit_cycle=commit,
        locality=locality,
        epoch_id=epoch,
        migration_cycle=migration,
    )


class TestAddressHash:
    def test_bucket_count(self):
        assert AddressHash(10).num_buckets == 1024

    def test_word_granularity(self):
        hashed = AddressHash(10)
        assert hashed.index(0x1000) == hashed.index(0x1004)
        assert hashed.index(0x1000) != hashed.index(0x1008)

    def test_aliasing_beyond_index_bits(self):
        hashed = AddressHash(4)
        assert hashed.collides(0x0, 0x0 + (16 << 3))

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            AddressHash(0)


class TestCountingBloomFilter:
    def test_insert_and_query(self):
        bloom = CountingBloomFilter(8)
        bloom.insert(0x100)
        assert bloom.may_contain(0x100)
        assert bloom.population == 1

    def test_remove_clears_membership(self):
        bloom = CountingBloomFilter(8)
        bloom.insert(0x100)
        bloom.remove(0x100)
        assert not bloom.may_contain(0x100)

    def test_remove_from_empty_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            CountingBloomFilter(8).remove(0x100)

    def test_false_positive_through_aliasing(self):
        bloom = CountingBloomFilter(2)
        bloom.insert(0x0)
        aliased = 0x0 + (4 << 3)
        assert bloom.may_contain(aliased)

    def test_clear(self):
        bloom = CountingBloomFilter(4)
        bloom.insert(0x8)
        bloom.clear()
        assert bloom.population == 0
        assert not bloom.may_contain(0x8)


class TestHashBasedERT:
    def test_candidates_most_recent_first(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        ert.insert_store(0x100, epoch_id=2)
        ert.insert_store(0x100, epoch_id=5)
        assert ert.store_candidate_epochs(0x100, live_epochs=[2, 5]) == [5, 2]

    def test_candidates_filtered_by_live_epochs(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        ert.insert_store(0x100, epoch_id=2)
        assert ert.store_candidate_epochs(0x100, live_epochs=[]) == []

    def test_exclude_own_epoch(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        ert.insert_store(0x100, epoch_id=2)
        assert ert.store_candidate_epochs(0x100, live_epochs=[2], exclude=2) == []

    def test_aliasing_produces_candidates_for_other_addresses(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=4), StatsRegistry())
        ert.insert_store(0x0, epoch_id=1)
        aliased = 0x0 + (16 << 3)
        assert ert.store_candidate_epochs(aliased, live_epochs=[1]) == [1]

    def test_more_bits_reduce_aliasing(self):
        wide = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=16), StatsRegistry())
        wide.insert_store(0x0, epoch_id=1)
        aliased_for_4_bits = 0x0 + (16 << 3)
        assert wide.store_candidate_epochs(aliased_for_4_bits, live_epochs=[1]) == []

    def test_clear_epoch_removes_contributions(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        ert.insert_store(0x100, epoch_id=2)
        ert.insert_load(0x200, epoch_id=2)
        ert.clear_epoch(2)
        assert ert.store_candidate_epochs(0x100, live_epochs=[2]) == []
        assert ert.load_candidate_epochs(0x200, live_epochs=[2]) == []
        assert ert.live_entry_count() == 0

    def test_load_and_store_tables_are_separate(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        ert.insert_load(0x100, epoch_id=3)
        assert ert.store_candidate_epochs(0x100, live_epochs=[3]) == []
        assert ert.load_candidate_epochs(0x100, live_epochs=[3]) == [3]

    def test_storage_matches_paper_4kb(self):
        ert = HashBasedERT(ERTConfig(kind=ERTKind.HASH, hash_bits=10), StatsRegistry())
        assert ert.storage_bytes() == 4 * 1024

    def test_requires_hash_kind(self):
        with pytest.raises(ConfigurationError):
            HashBasedERT(ERTConfig(kind=ERTKind.LINE), StatsRegistry())


class TestLineBasedERT:
    def _ert(self):
        stats = StatsRegistry()
        hierarchy = MemoryHierarchy(stats=stats)
        return LineBasedERT(ERTConfig(kind=ERTKind.LINE), stats, hierarchy), hierarchy, stats

    def test_index_is_line_number(self):
        ert, _, _ = self._ert()
        assert ert.index_of(0x100) == ert.index_of(0x11F)
        assert ert.index_of(0x100) != ert.index_of(0x120)

    def test_insert_locks_line(self):
        ert, hierarchy, _ = self._ert()
        ert.insert_store(0x4000, epoch_id=1)
        assert hierarchy.l1.is_locked(0x4000)

    def test_clear_epoch_unlocks(self):
        ert, hierarchy, _ = self._ert()
        ert.insert_store(0x4000, epoch_id=1)
        ert.clear_epoch(1)
        assert not hierarchy.l1.is_locked(0x4000)

    def test_lock_conflict_reported_when_set_full(self):
        ert, hierarchy, stats = self._ert()
        l1 = hierarchy.config.l1
        set_stride = l1.num_sets * l1.line_size
        for way in range(l1.associativity):
            assert not ert.insert_store(way * set_stride, epoch_id=1).lock_conflict
        conflicted = ert.insert_store(l1.associativity * set_stride, epoch_id=2)
        assert conflicted.lock_conflict
        assert stats.value("ert.lock_conflicts") == 1

    def test_storage_uses_l1_lines(self):
        ert, hierarchy, _ = self._ert()
        assert ert.storage_bytes() == 2 * hierarchy.config.l1.num_lines * 16 // 8

    def test_build_ert_dispatch(self):
        stats = StatsRegistry()
        hierarchy = MemoryHierarchy(stats=stats)
        assert isinstance(build_ert(ERTConfig(kind=ERTKind.HASH), stats), HashBasedERT)
        assert isinstance(build_ert(ERTConfig(kind=ERTKind.LINE), stats, hierarchy), LineBasedERT)
        assert build_ert(ERTConfig(kind=ERTKind.NONE), stats) is None
        with pytest.raises(ConfigurationError):
            build_ert(ERTConfig(kind=ERTKind.LINE), stats)


class TestStoreRecordResidency:
    def test_hl_residency_ends_at_migration(self):
        store = make_store(1, 0x100, decode=0, commit=500, migration=50)
        assert store.hl_resident_at(30)
        assert not store.hl_resident_at(60)

    def test_hl_residency_ends_at_commit_without_migration(self):
        store = make_store(1, 0x100, decode=0, commit=80)
        assert store.hl_resident_at(79)
        assert not store.hl_resident_at(80)

    def test_ll_residency_window(self):
        store = make_store(1, 0x100, commit=500, locality=Locality.LOW, epoch=3, migration=50)
        assert not store.ll_resident_at(40)
        assert store.ll_resident_at(60)
        assert store.ll_resident_at(60, epoch_commit_cycle=400)
        assert not store.ll_resident_at(450, epoch_commit_cycle=400)

    def test_low_locality_requires_epoch(self):
        with pytest.raises(SimulationError):
            make_store(1, 0x100, locality=Locality.LOW)

    def test_load_record_validation(self):
        with pytest.raises(SimulationError):
            LoadRecord(seq=0, address=0x10, size=8, decode_cycle=10, issue_cycle=5, locality=Locality.HIGH)

    def test_epoch_state_liveness(self):
        state = EpochState(epoch_id=1, open_cycle=100)
        assert state.live_at(150)
        state.commit_cycle = 200
        assert state.live_at(199)
        assert not state.live_at(200)
        assert not state.live_at(50)


class TestStoreBuffer:
    def test_finds_youngest_matching_store(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, commit=200))
        buffer.add(make_store(2, 0x100, commit=200))
        result = buffer.find_any_forwarding(0x100, 8, before_seq=5, cycle=50)
        assert result.hit and result.store.seq == 2

    def test_ignores_younger_stores(self):
        buffer = StoreBuffer()
        buffer.add(make_store(10, 0x100, commit=200))
        assert not buffer.find_any_forwarding(0x100, 8, before_seq=5, cycle=50).hit

    def test_ignores_committed_stores(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, commit=40))
        assert not buffer.find_any_forwarding(0x100, 8, before_seq=5, cycle=50).hit

    def test_hl_versus_epoch_residency(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, commit=500, locality=Locality.LOW, epoch=2, migration=20))
        assert not buffer.find_hl_forwarding(0x100, 8, before_seq=5, cycle=50).hit
        assert buffer.find_epoch_forwarding(2, 0x100, 8, before_seq=5, cycle=50).hit
        assert not buffer.find_epoch_forwarding(3, 0x100, 8, before_seq=5, cycle=50).hit

    def test_unknown_address_store_does_not_forward(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, addr_ready=90, data_ready=90, commit=200))
        assert not buffer.find_any_forwarding(0x100, 8, before_seq=5, cycle=50).hit

    def test_violating_store_detected(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, addr_ready=90, data_ready=90, commit=200))
        violating = buffer.find_violating_store(0x100, 8, before_seq=5, after_seq=-1, cycle=50)
        assert violating is not None and violating.seq == 1

    def test_violation_ignores_stores_older_than_forwarding_store(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, addr_ready=90, commit=200))
        assert buffer.find_violating_store(0x100, 8, before_seq=5, after_seq=1, cycle=50) is None

    def test_unresolved_older_store_check(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x500, addr_ready=90, commit=200))
        assert buffer.any_unresolved_older_store(before_seq=5, after_seq=-1, cycle=50)
        assert not buffer.any_unresolved_older_store(before_seq=5, after_seq=-1, cycle=95)

    def test_partial_overlap_forwards(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, commit=200, size=8))
        result = buffer.find_any_forwarding(0x104, 4, before_seq=3, cycle=50)
        assert result.hit

    def test_stores_to_word(self):
        buffer = StoreBuffer()
        buffer.add(make_store(1, 0x100, commit=200))
        buffer.add(make_store(2, 0x100, commit=200))
        assert buffer.stores_to_word(0x100) == 2
        assert buffer.stores_to_word(0x900) == 0


class TestStoreQueueMirror:
    def test_access_counts_and_latency(self):
        stats = StatsRegistry()
        sqm = StoreQueueMirror(stats, access_latency=1)
        assert sqm.access() == 1
        assert stats.value("sqm.accesses") == 1

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            StoreQueueMirror(StatsRegistry(), access_latency=-1)

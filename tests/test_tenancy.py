"""Tests for multi-tenant admission, weighted fair scheduling and the v2 API.

Covers the tenancy ISSUE's acceptance surface:

* scheduler invariants -- stride shares track configured weights under
  saturation (within the 20% acceptance bound), the interactive lane never
  inverts behind batch work, per-tenant in-flight caps skip and resume, and
  an idle tenant rejoining starts at the current virtual time (no banked
  credit),
* admission -- per-tenant quota 429s that do not affect other tenants,
  cross-tenant coalescing into one execution, closed-roster rejection,
* the v2 wire schema -- v1 envelopes still accepted (default tenant, batch
  lane, deprecation note), envelope/payload conflicts rejected, structured
  error codes shared by server and client,
* the client -- connection-level tenant/token, the deprecated positional
  ``submit`` signature, and ``GET /v1/stats``,
* starvation -- a greedy tenant flooding the batch lane cannot starve a
  light tenant's interactive submission (bounded wall clock, both tenants
  reported by ``/v1/stats``).

Scheduler and JobManager tests run synchronously (no event loop, workers
never started) so dispatch order is deterministic; HTTP tests reuse the
in-process server from ``test_service``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from test_service import WAIT_TIMEOUT, running_service

from repro.common.errors import (
    ConfigurationError,
    ErrorCode,
    ServiceError,
    ServiceOverloadedError,
)
from repro.common.serialize import (
    WIRE_SCHEMA_VERSION,
    open_envelope,
    read_envelope,
    wire_envelope,
)
from repro.exp.request import JobRequest
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager
from repro.service.tenancy import (
    DEFAULT_TENANT,
    LatencyWindow,
    TenancyConfig,
    TenantScheduler,
    TenantSpec,
)

#: Acceptance bound: observed work shares within 20% of configured weights.
SHARE_TOLERANCE = 0.20


def scheduler_for(*specs: TenantSpec) -> TenantScheduler:
    return TenantScheduler(TenancyConfig(tenants=tuple(specs)))


def request_for(tenant: str, seed: int, priority: str = "batch") -> JobRequest:
    """A distinct-key figure request charged to ``tenant``."""
    return JobRequest(figure="sec52", seed=seed, tenant=tenant, priority=priority)


# ----------------------------------------------------------------------
# Tenant configuration
# ----------------------------------------------------------------------


def test_tenant_spec_validation() -> None:
    assert TenantSpec("alpha").weight == 1.0
    with pytest.raises(ConfigurationError):
        TenantSpec("alpha", weight=0.0)
    with pytest.raises(ConfigurationError):
        TenantSpec("alpha", max_queued=0)
    with pytest.raises(ConfigurationError):
        TenantSpec("alpha", max_inflight=-1)
    with pytest.raises(ConfigurationError):
        TenantSpec("alpha", token="")
    with pytest.raises(ConfigurationError):
        TenantSpec("-leading-dash")
    with pytest.raises(ConfigurationError):
        TenantSpec("has spaces")
    with pytest.raises(ConfigurationError):
        TenantSpec.from_dict("alpha", {"wieght": 2.0})  # typo'd setting


def test_tenancy_config_from_file(tmp_path) -> None:
    path = tmp_path / "tenants.json"
    path.write_text(
        json.dumps(
            {
                "tenants": {
                    "alpha": {"weight": 3, "max_queued": 4, "token": "s3cret"},
                    "beta": {},
                },
                "default_tenant": "beta",
            }
        )
    )
    config = TenancyConfig.from_file(str(path))
    assert config.default_tenant == "beta"
    assert config.allow_unknown is True
    alpha = config.spec_for("alpha")
    assert (alpha.weight, alpha.max_queued, alpha.token) == (3.0, 4, "s3cret")
    # Open roster: unknown names resolve to default limits.
    assert config.spec_for("ghost") == TenantSpec("ghost")
    with pytest.raises(ConfigurationError, match="cannot read"):
        TenancyConfig.from_file(str(tmp_path / "missing.json"))
    path.write_text("{ not json")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        TenancyConfig.from_file(str(path))


def test_tenancy_config_validation() -> None:
    with pytest.raises(ConfigurationError, match="duplicate"):
        TenancyConfig(tenants=(TenantSpec("a"), TenantSpec("a")))
    with pytest.raises(ConfigurationError, match="unknown tenancy settings"):
        TenancyConfig.from_dict({"tenant": {}})
    # A closed roster must include the default tenant ...
    with pytest.raises(ConfigurationError, match="default tenant"):
        TenancyConfig(tenants=(TenantSpec("alpha"),), allow_unknown=False)
    # ... and rejects unconfigured names at resolution time.
    closed = TenancyConfig(
        tenants=(TenantSpec(DEFAULT_TENANT), TenantSpec("alpha")), allow_unknown=False
    )
    with pytest.raises(ConfigurationError, match="unknown tenant"):
        closed.spec_for("ghost")


def test_latency_window_percentiles() -> None:
    window = LatencyWindow()
    assert window.percentile(0.95) == 0.0
    assert window.snapshot()["count"] == 0
    for value in range(1, 101):
        window.record(float(value))
    snap = window.snapshot()
    assert snap["count"] == 100
    assert snap["mean"] == pytest.approx(50.5)
    assert (snap["p50"], snap["p95"], snap["p99"], snap["max"]) == (50.0, 95.0, 99.0, 100.0)
    # The reservoir is bounded: lifetime counters keep counting, percentiles
    # reflect only the retained window.
    small = LatencyWindow(limit=4)
    for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
        small.record(value)
    assert small.count == 8
    assert small.percentile(0.50) == 9.0


# ----------------------------------------------------------------------
# Scheduler invariants
# ----------------------------------------------------------------------


def drain(scheduler: TenantScheduler, picks: int) -> list:
    """Dispatch+complete ``picks`` items, returning the tenant order."""
    order = []
    for _ in range(picks):
        picked = scheduler.pick()
        assert picked is not None, f"scheduler ran dry after {len(order)} picks"
        order.append(picked[0])
        scheduler.release(picked[0])
    return order


def test_stride_shares_track_weights_under_saturation() -> None:
    """With both queues saturated, a 3:1 weight ratio yields 3:1 dispatches."""
    scheduler = scheduler_for(TenantSpec("alpha", weight=3.0), TenantSpec("beta", weight=1.0))
    for index in range(12):
        scheduler.enqueue("alpha", "batch", ("alpha", index))
        scheduler.enqueue("beta", "batch", ("beta", index))
    order = drain(scheduler, 8)
    shares = scheduler.work_shares()
    assert order.count("alpha") == 6 and order.count("beta") == 2
    assert abs(shares["alpha"] - 0.75) <= SHARE_TOLERANCE * 0.75
    assert abs(shares["beta"] - 0.25) <= SHARE_TOLERANCE * 0.25
    # Everything still drains once the backlog clears.
    drain(scheduler, 16)
    assert scheduler.pick() is None
    assert scheduler.queued_total() == 0


def test_interactive_lane_never_inverts_behind_batch() -> None:
    """All interactive work drains before any batch work, across tenants."""
    scheduler = scheduler_for(TenantSpec("alpha"), TenantSpec("beta"))
    for index in range(4):
        scheduler.enqueue("alpha", "batch", ("batch", index))
    scheduler.enqueue("beta", "interactive", ("interactive", 0))
    scheduler.enqueue("alpha", "interactive", ("interactive", 1))
    picked = [scheduler.pick()[1][0] for _ in range(6)]
    assert picked == ["interactive"] * 2 + ["batch"] * 4
    # A late interactive arrival still jumps the remaining batch backlog.
    scheduler.enqueue("alpha", "batch", ("batch", 99))
    scheduler.enqueue("beta", "interactive", ("interactive", 99))
    assert scheduler.pick()[1][0] == "interactive"


def test_max_inflight_cap_skips_and_resumes() -> None:
    scheduler = scheduler_for(TenantSpec("alpha", max_inflight=1), TenantSpec("beta"))
    scheduler.enqueue("alpha", "batch", "a1")
    scheduler.enqueue("alpha", "batch", "a2")
    scheduler.enqueue("beta", "batch", "b1")
    assert scheduler.pick() == ("alpha", "a1")
    # Alpha is at its cap: its remaining work is skipped, not the queue.
    assert scheduler.pick() == ("beta", "b1")
    assert scheduler.pick() is None
    assert scheduler.queued_total() == 1
    scheduler.release("alpha")
    assert scheduler.pick() == ("alpha", "a2")
    with pytest.raises(ConfigurationError, match="no in-flight"):
        scheduler.release("beta")
        scheduler.release("beta")


def test_idle_tenant_rejoins_at_virtual_time() -> None:
    """Sleeping banks no credit: a waking tenant shares, it does not burst."""
    scheduler = scheduler_for(TenantSpec("heavy"), TenantSpec("light"))
    for index in range(16):
        scheduler.enqueue("heavy", "batch", index)
    drain(scheduler, 10)  # heavy runs alone; virtual time advances
    for index in range(6):
        scheduler.enqueue("light", "batch", index)
    order = drain(scheduler, 6)
    # Equal weights from here on: an even split, not six straight "light"
    # picks repaying the idle period.
    assert order.count("light") == 3 and order.count("heavy") == 3


# ----------------------------------------------------------------------
# JobManager admission (synchronous: workers never started)
# ----------------------------------------------------------------------


def manager_for(config: TenancyConfig, queue_limit: int = 100) -> JobManager:
    return JobManager(cache=None, workers=1, queue_limit=queue_limit, tenancy=config)


def test_manager_fairness_shares_within_acceptance_bound() -> None:
    """Mid-saturation, /v1/stats work shares sit within 20% of the weights."""
    config = TenancyConfig(
        tenants=(TenantSpec("alpha", weight=3.0), TenantSpec("beta", weight=1.0))
    )
    manager = manager_for(config)
    for index in range(16):
        manager.submit(request_for("alpha", seed=1000 + index))
        manager.submit(request_for("beta", seed=2000 + index))
    drain(manager.scheduler, 12)  # both tenants still saturated afterwards
    stats = manager.stats_document()
    tenants = stats["tenants"]
    assert abs(tenants["alpha"]["work_share"] - 0.75) <= SHARE_TOLERANCE * 0.75
    assert abs(tenants["beta"]["work_share"] - 0.25) <= SHARE_TOLERANCE * 0.25
    assert tenants["alpha"]["weight"] == 3.0
    assert stats["queue"]["depth"] == manager.scheduler.queued_total()
    assert stats["totals"]["submitted"] == 32


def test_tenant_quota_429_does_not_affect_other_tenants() -> None:
    config = TenancyConfig(tenants=(TenantSpec("alpha", max_queued=2), TenantSpec("beta")))
    manager = manager_for(config, queue_limit=8)
    manager.submit(request_for("alpha", seed=1))
    manager.submit(request_for("alpha", seed=2))
    with pytest.raises(ServiceOverloadedError) as excinfo:
        manager.submit(request_for("alpha", seed=3))
    error = excinfo.value
    assert error.code is ErrorCode.TENANT_QUOTA_EXCEEDED
    assert error.tenant == "alpha"
    assert error.retry_after >= 1
    # Beta is untouched by alpha's quota ...
    state, coalesced = manager.submit(request_for("beta", seed=10))
    assert not coalesced and state.tenant == "beta"
    # ... until the server-wide bound trips, which reports `overloaded`.
    for index in range(5):
        manager.submit(request_for("beta", seed=11 + index))
    with pytest.raises(ServiceOverloadedError) as excinfo:
        manager.submit(request_for("beta", seed=99))
    assert excinfo.value.code is ErrorCode.OVERLOADED
    assert manager.rejections == {"overloaded": 1, "tenant_quota_exceeded": 1}
    accounting = manager.scheduler.accounting
    assert accounting("alpha").rejected_quota == 1
    assert accounting("beta").rejected_capacity == 1
    health = manager.health()
    assert health["rejections"] == {"overloaded": 1, "tenant_quota_exceeded": 1}
    assert health["tenants"]["alpha"]["rejected"] == 1


def test_cross_tenant_submissions_coalesce_to_one_execution() -> None:
    manager = manager_for(TenancyConfig.open())
    first, coalesced = manager.submit(request_for("alpha", seed=5))
    assert not coalesced
    # Identical work from a different tenant (and lane) shares the job: the
    # coalescing key deliberately excludes the admission metadata.
    second, coalesced = manager.submit(request_for("beta", seed=5, priority="interactive"))
    assert coalesced and second is first
    assert first.tenant == "alpha"  # the first submitter owns the job
    assert manager.stats["submitted"] == 1 and manager.stats["coalesced"] == 1
    assert manager.scheduler.accounting("beta").coalesced == 1
    assert manager.scheduler.accounting("alpha").admitted == 1
    # Coalesced submissions bypass quotas: they add no work.
    tight = TenancyConfig(tenants=(TenantSpec("gamma", max_queued=1),))
    tight_manager = manager_for(tight)
    tight_manager.submit(request_for("gamma", seed=7))
    _, coalesced = tight_manager.submit(request_for("gamma", seed=7))
    assert coalesced


def test_closed_roster_rejects_unknown_tenant_as_config_error() -> None:
    config = TenancyConfig(
        tenants=(TenantSpec(DEFAULT_TENANT), TenantSpec("alpha")), allow_unknown=False
    )
    manager = manager_for(config)
    with pytest.raises(ConfigurationError, match="unknown tenant"):
        manager.submit(request_for("ghost", seed=1))
    manager.submit(request_for("alpha", seed=1))  # configured names still work


def test_lane_resolution_and_retry_after_hint() -> None:
    manager = manager_for(TenancyConfig.open())
    assert manager.resolve_lane(JobRequest(figure="fig7")) == "interactive"
    assert manager.resolve_lane(JobRequest(figure="fig7", full=True)) == "batch"
    assert manager.resolve_lane(JobRequest(figure="fig7", full=True, priority="interactive")) == (
        "interactive"
    )
    # No service-time history yet: a minimal, honest hint.
    assert manager.retry_after_hint(5) == 1
    manager._service_time_sum, manager._service_time_count = 2.0, 1
    assert manager.retry_after_hint(3) == 6  # ceil(2.0s * 3 ahead / 1 worker)
    assert manager.retry_after_hint(1000) == 60  # clamped


# ----------------------------------------------------------------------
# Wire schema v2 and v1 back-compat
# ----------------------------------------------------------------------


def test_v2_envelope_roundtrip_and_v1_still_readable() -> None:
    envelope = wire_envelope(
        "job_request", {"figure": "fig7"}, tenant="alpha", priority="interactive", schema_version=2
    )
    assert envelope["wire_schema"] == WIRE_SCHEMA_VERSION
    read = read_envelope(json.loads(json.dumps(envelope)), "job_request")
    assert (read.tenant, read.priority, read.schema_version) == ("alpha", "interactive", 2)
    assert not read.deprecated
    # A v1 envelope (no tenancy fields) is readable and marked deprecated.
    v1 = {"kind": "job_request", "wire_schema": 1, "payload": {"figure": "fig7"}}
    read = read_envelope(v1, "job_request")
    assert read.deprecated
    assert read.tenant is None and read.priority is None
    assert open_envelope(v1, "job_request") == {"figure": "fig7"}
    with pytest.raises(ConfigurationError):
        read_envelope({**v1, "wire_schema": 999}, "job_request")


def post_raw(base_url: str, body: dict, headers: dict = ()) -> tuple:
    """POST a raw envelope to /v1/jobs; returns (status, parsed body)."""
    request = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=json.dumps(body).encode(),
        method="POST",
        headers={"Content-Type": "application/json", **dict(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def stub_execution(svc, seconds: float = 0.0) -> None:
    """Replace real simulation with a trivial payload (admission tests only)."""

    def fake_execute(state):
        if seconds:
            time.sleep(seconds)
        return {"stubbed": True}

    svc.manager._execute = fake_execute


def test_http_v1_envelope_accepted_with_deprecation_note(tmp_path) -> None:
    """A pre-tenancy speaker gets the default tenant, batch lane and a note."""
    with running_service(tmp_path / "cache") as (svc, client):
        stub_execution(svc)
        v1 = {
            "kind": "job_request",
            "wire_schema": 1,
            "payload": {"figure": "sec52", "instructions": 600, "seed": 1},
        }
        status, data = post_raw(client.base_url, v1)
        assert status == 202
        receipt = open_envelope(data, "job_accepted")
        assert receipt["tenant"] == DEFAULT_TENANT
        assert receipt["priority"] == "batch"
        assert "deprecated" in receipt["deprecation"]
        # v1 speakers must still be able to poll their job to completion.
        view = client.wait(receipt["job_id"], timeout=WAIT_TIMEOUT)
        assert view["result"] == {"stubbed": True}
        # A v2 submission gets no deprecation note.
        fresh = client.submit(figure="sec52", instructions=600, seed=2)
        assert fresh.deprecation is None


def test_http_v2_tenant_priority_roundtrip_and_stats(tmp_path) -> None:
    with running_service(tmp_path / "cache") as (svc, client):
        stub_execution(svc)
        tenant_client = ServiceClient(client.base_url, timeout=30.0, tenant="alpha")
        receipt = tenant_client.submit(
            figure="sec52", instructions=600, seed=3, priority="interactive"
        )
        assert (receipt.tenant, receipt.priority) == ("alpha", "interactive")
        view = tenant_client.wait(receipt.job_id, timeout=WAIT_TIMEOUT)
        assert (view["tenant"], view["priority"]) == ("alpha", "interactive")
        # Header-only labelling (no envelope/payload field) also resolves.
        v2 = wire_envelope("job_request", {"figure": "sec52", "seed": 4})
        status, data = post_raw(client.base_url, v2, {"X-Repro-Tenant": "gamma"})
        assert status == 202
        assert open_envelope(data, "job_accepted")["tenant"] == "gamma"
        # Conflicting explicit labels are a 400, not a silent pick.
        conflicted = wire_envelope(
            "job_request", {"figure": "sec52", "seed": 5, "tenant": "left"}, tenant="right"
        )
        status, data = post_raw(client.base_url, conflicted)
        assert status == 400
        assert open_envelope(data, "error")["code"] == "bad_request"
        # /v1/stats reports every tenant that has contacted the server.
        stats = client.stats()
        assert set(stats["tenants"]) >= {"alpha", "gamma"}
        alpha = stats["tenants"]["alpha"]
        assert alpha["jobs"]["admitted"] == 1
        assert alpha["queued_by_lane"] == {"interactive": 0, "batch": 0}
        assert set(alpha["queue_wait_seconds"]) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert stats["totals"]["submitted"] >= 2


def test_tenant_auth_token_enforced(tmp_path) -> None:
    config = TenancyConfig(tenants=(TenantSpec("alpha", token="s3cret"),))
    with running_service(tmp_path / "cache", tenancy=config) as (svc, client):
        stub_execution(svc)
        url = client.base_url
        anonymous = ServiceClient(url, timeout=30.0, tenant="alpha")
        with pytest.raises(ServiceError, match="401"):
            anonymous.submit(figure="sec52", seed=6)
        wrong = ServiceClient(url, timeout=30.0, tenant="alpha", token="wrong")
        with pytest.raises(ServiceError, match="401"):
            wrong.submit(figure="sec52", seed=6)
        authed = ServiceClient(url, timeout=30.0, tenant="alpha", token="s3cret")
        assert authed.submit(figure="sec52", seed=6).tenant == "alpha"
        # Tenants without a configured token stay open.
        assert client.submit(figure="sec52", seed=7).tenant == DEFAULT_TENANT


def test_positional_submit_signature_still_works(tmp_path) -> None:
    """The pre-v2 positional signature warns but behaves identically."""
    with running_service(tmp_path / "cache") as (svc, client):
        stub_execution(svc)
        with pytest.warns(DeprecationWarning, match="positional"):
            legacy = client.submit("sec52", None, 600, 8)
        assert not legacy.coalesced
        keyword = client.submit(figure="sec52", cases=None, instructions=600, seed=8)
        # Same request content: the keyword resubmission coalesces or, once
        # finished, shares the key.
        assert keyword.request_key == legacy.request_key
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="positional"):
                client.submit("sec52", None, 600, 8, False, None, "extra")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                client.submit("sec52", figure="fig7")
        # wait=True returns the completed status document directly.
        view = client.submit(figure="sec52", instructions=600, seed=9, wait=True)
        assert view["status"] == "completed"


def test_error_taxonomy_shared_by_server_and_client(tmp_path) -> None:
    with running_service(tmp_path / "cache", queue_limit=1) as (svc, client):
        started, release = threading.Event(), threading.Event()

        def fake_execute(state):
            started.set()
            release.wait(timeout=30)
            return {"stubbed": True}

        svc.manager._execute = fake_execute
        # Protocol-level errors carry structured codes.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{client.base_url}/v1/jobs/job-999999", timeout=10)
        assert open_envelope(json.load(excinfo.value), "error")["code"] == "not_found"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{client.base_url}/v1/jobs", timeout=10)
        assert open_envelope(json.load(excinfo.value), "error")["code"] == "method_not_allowed"
        # Admission rejections surface typed fields on the client exception.
        held = [client.submit(figure="sec52", seed=20)]
        assert started.wait(timeout=10)
        held.append(client.submit(figure="sec52", seed=21))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.submit(figure="sec52", seed=22)
        error = excinfo.value
        assert error.code is ErrorCode.OVERLOADED
        assert error.tenant == DEFAULT_TENANT
        assert isinstance(error.retry_after, (int, float)) and error.retry_after >= 1
        release.set()
        for receipt in held:
            client.wait(receipt.job_id, timeout=WAIT_TIMEOUT)


def test_greedy_tenant_cannot_starve_interactive_submissions(tmp_path) -> None:
    """The starvation acceptance test: alpha floods the batch lane, beta's
    interactive job still completes promptly and both tenants show up in
    ``/v1/stats``."""
    config = TenancyConfig(tenants=(TenantSpec("alpha"), TenantSpec("beta")))
    with running_service(tmp_path / "cache", queue_limit=64, tenancy=config) as (svc, client):
        gate_entered, release = threading.Event(), threading.Event()

        def fake_execute(state):
            if state.request.seed == 0:
                gate_entered.set()
                release.wait(timeout=30)
            time.sleep(0.03)
            return {"stubbed": True}

        svc.manager._execute = fake_execute
        alpha = ServiceClient(client.base_url, timeout=30.0, tenant="alpha")
        beta = ServiceClient(client.base_url, timeout=30.0, tenant="beta")
        # Occupy the single worker, then flood alpha's batch lane.
        flood = [alpha.submit(figure="sec52", seed=0, priority="batch")]
        assert gate_entered.wait(timeout=10)
        for seed in range(1, 16):
            flood.append(alpha.submit(figure="sec52", seed=seed, priority="batch"))
        beta_receipt = beta.submit(figure="sec52", seed=100, priority="interactive")
        release.set()
        start = time.monotonic()
        # Tight poll interval: the queued-backlog assertion below depends on
        # *detecting* beta's completion before alpha's 0.03s/job flood
        # drains, and the client's default full-jitter poll backoff can
        # legitimately sleep past that window.
        view = beta.wait(beta_receipt.job_id, timeout=WAIT_TIMEOUT, poll_interval=0.01)
        beta_wall = time.monotonic() - start
        assert view["status"] == "completed"
        # Beta finished while most of alpha's backlog was still queued: the
        # interactive lane jumped it past the flood.
        assert svc.manager.scheduler.runtime("alpha").queued() >= 8, (
            f"beta took {beta_wall:.2f}s but alpha's flood had already drained"
        )
        for receipt in flood:
            alpha.wait(receipt.job_id, timeout=WAIT_TIMEOUT)
        stats = client.stats()
        assert set(stats["tenants"]) >= {"alpha", "beta"}
        assert stats["tenants"]["beta"]["jobs"]["completed"] == 1
        assert stats["tenants"]["alpha"]["jobs"]["completed"] == 16
        # Beta's one interactive job waited far less than alpha's tail.
        beta_wait = stats["tenants"]["beta"]["queue_wait_seconds"]["max"]
        alpha_wait = stats["tenants"]["alpha"]["queue_wait_seconds"]["max"]
        assert beta_wait < alpha_wait

"""Tests for the fault-injection registry (repro.faults).

Spec parsing must reject typos loudly (a misspelt site would silently
disable a fault), decisions must be deterministic per seed (a chaos
failure has to reproduce), keyed decisions fire at most once per key (so
supervised retries can succeed), and lifetime caps hold.  The
process-global install paths (explicit and via ``REPRO_FAULTS``) are
covered too, including the test-only re-arm semantics.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.faults import (
    FAULT_SITES,
    FAULTS_ENV,
    FaultInjector,
    FaultSpec,
    get_injector,
    install,
    install_from_env,
    uninstall,
)
from repro.faults.chaos import DEFAULT_FAULT_SPEC, ChaosConfig
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _no_ambient_injection(monkeypatch):
    """Each test starts (and leaves) with injection fully disabled."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    uninstall()
    yield
    uninstall()


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


def test_spec_rejects_unknown_site() -> None:
    with pytest.raises(ConfigurationError, match="unknown fault sites"):
        FaultSpec.from_dict({"seed": 1, "kill_wroker": {"rate": 0.5}})


def test_spec_rejects_unknown_setting() -> None:
    with pytest.raises(ConfigurationError, match="unknown settings"):
        FaultSpec.from_dict({"kill_worker": {"rate": 0.5, "probability": 1}})


@pytest.mark.parametrize(
    "settings",
    [{"rate": -0.1}, {"rate": 1.5}, {"rate": 0.5, "max": -1}, {"rate": 0.5, "seconds": -1}],
)
def test_spec_rejects_out_of_range_settings(settings) -> None:
    with pytest.raises(ConfigurationError):
        FaultSpec.from_dict({"delay_peer": settings})


def test_spec_rejects_non_mapping_inputs() -> None:
    with pytest.raises(ConfigurationError, match="fault-spec mapping"):
        FaultSpec.from_dict(["kill_worker"])
    with pytest.raises(ConfigurationError, match="settings mapping"):
        FaultSpec.from_dict({"kill_worker": 0.5})


def test_spec_from_file_errors(tmp_path) -> None:
    with pytest.raises(ConfigurationError, match="cannot read"):
        FaultSpec.from_file(str(tmp_path / "absent.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        FaultSpec.from_file(str(bad))


def test_spec_round_trips_through_to_dict() -> None:
    spec = FaultSpec.from_dict(DEFAULT_FAULT_SPEC)
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_default_chaos_spec_names_every_site() -> None:
    spec = FaultSpec.from_dict(DEFAULT_FAULT_SPEC)
    assert set(spec.sites) == set(FAULT_SITES)


# ----------------------------------------------------------------------
# Injection decisions
# ----------------------------------------------------------------------


def _spec(**sites) -> FaultSpec:
    return FaultSpec.from_dict({"seed": 1234, **sites})


def test_decisions_are_deterministic_per_seed() -> None:
    spec = _spec(http_500={"rate": 0.5})
    first = [FaultInjector(spec).should("http_500") for _ in range(1)]
    # Two injectors built from the same spec take identical decision
    # sequences; a different seed diverges (200 fair-coin draws).
    a = FaultInjector(spec)
    b = FaultInjector(spec)
    assert [a.should("http_500") for _ in range(200)] == [
        b.should("http_500") for _ in range(200)
    ]
    other = FaultSpec.from_dict({"seed": 4321, "http_500": {"rate": 0.5}})
    c = FaultInjector(other)
    assert [a.should("http_500") for _ in range(200)] != [
        c.should("http_500") for _ in range(200)
    ]
    assert first in ([True], [False])  # smoke: the single-draw path works too


def test_keyed_decisions_fire_at_most_once_per_key() -> None:
    injector = FaultInjector(_spec(kill_worker={"rate": 1.0}))
    assert injector.should("kill_worker", key="job-a")
    assert not injector.should("kill_worker", key="job-a")
    assert injector.should("kill_worker", key="job-b")


def test_lifetime_max_caps_injections() -> None:
    injector = FaultInjector(_spec(http_500={"rate": 1.0, "max": 2}))
    fired = [injector.should("http_500") for _ in range(10)]
    assert fired.count(True) == 2
    assert injector.counts["http_500"] == 2


def test_unconfigured_site_never_fires() -> None:
    injector = FaultInjector(_spec(http_500={"rate": 1.0}))
    assert not injector.should("drop_peer")
    injector = FaultInjector(_spec(drop_peer={"rate": 0.0}))
    assert not injector.should("drop_peer")


def test_peer_delay_returns_configured_seconds() -> None:
    injector = FaultInjector(_spec(delay_peer={"rate": 1.0, "seconds": 0.25}))
    assert injector.peer_delay() == 0.25
    assert FaultInjector(_spec()).peer_delay() == 0.0


def test_bind_metrics_mirrors_injection_counts() -> None:
    registry = MetricsRegistry()
    injector = FaultInjector(_spec(http_500={"rate": 1.0, "max": 3}))
    injector.bind_metrics(registry)
    for _ in range(5):
        injector.should("http_500")
    counter = registry.counter(
        "repro_faults_injected_total",
        "Faults injected by the chaos harness, by site",
        labelnames=("site",),
    )
    assert counter.labels("http_500").value == 3


# ----------------------------------------------------------------------
# Process-global install paths
# ----------------------------------------------------------------------


def test_env_inline_json_installs_injector(monkeypatch) -> None:
    monkeypatch.setenv(FAULTS_ENV, json.dumps({"seed": 9, "http_500": {"rate": 1.0}}))
    uninstall()  # re-arm the lazy env check
    injector = get_injector()
    assert injector is not None
    assert injector.spec.seed == 9
    assert injector.should("http_500")


def test_env_file_path_installs_injector(tmp_path, monkeypatch) -> None:
    spec_path = tmp_path / "faults.json"
    spec_path.write_text(json.dumps({"seed": 5, "drop_peer": {"rate": 1.0}}))
    monkeypatch.setenv(FAULTS_ENV, str(spec_path))
    uninstall()
    injector = get_injector()
    assert injector is not None
    assert injector.should("drop_peer")


def test_env_invalid_inline_json_is_loud(monkeypatch) -> None:
    monkeypatch.setenv(FAULTS_ENV, "{definitely not json")
    with pytest.raises(ConfigurationError, match="invalid inline JSON"):
        install_from_env()


def test_env_empty_means_disabled(monkeypatch) -> None:
    monkeypatch.setenv(FAULTS_ENV, "")
    uninstall()
    assert get_injector() is None


def test_install_none_overrides_environment(monkeypatch) -> None:
    monkeypatch.setenv(FAULTS_ENV, json.dumps({"http_500": {"rate": 1.0}}))
    install(None)
    # install() marks the env as consulted, so the variable is not re-read.
    assert get_injector() is None


# ----------------------------------------------------------------------
# Chaos harness configuration
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "overrides",
    [
        {"shards": 0},
        {"submissions": 0},
        {"clients": 0},
        {"max_error_rate": 1.5},
        {"max_error_rate": -0.1},
    ],
)
def test_chaos_config_rejects_bad_settings(overrides) -> None:
    with pytest.raises(ConfigurationError):
        ChaosConfig(**overrides)


def test_chaos_cli_verb_is_wired() -> None:
    from repro.exp.cli import build_parser, run_chaos_command

    args = build_parser().parse_args(
        ["chaos", "--no-restart", "--submissions", "5", "--seed", "3"]
    )
    assert args.handler is run_chaos_command
    assert args.no_restart is True
    assert args.submissions == 5

"""Tests for the one-pass out-of-order core (resources and timing behaviour)."""

from __future__ import annotations

import pytest

from repro.common.config import CoreConfig, MemoryHierarchyConfig
from repro.common.errors import ConfigurationError
from repro.isa.instruction import branch, int_alu, load, store
from repro.isa.trace import Trace
from repro.uarch.ooo_core import OutOfOrderCore
from repro.uarch.resources import BandwidthAllocator, InOrderTracker, OccupancyWindow
from repro.uarch.result import CoreResult
from repro.common.stats import StatsRegistry


class TestBandwidthAllocator:
    def test_respects_width(self):
        allocator = BandwidthAllocator(2)
        cycles = [allocator.allocate(10) for _ in range(5)]
        assert cycles == [10, 10, 11, 11, 12]

    def test_allocations_never_before_desired(self):
        allocator = BandwidthAllocator(1)
        assert allocator.allocate(100) == 100
        assert allocator.allocate(50) == 50

    def test_peak_usage(self):
        allocator = BandwidthAllocator(4)
        for _ in range(3):
            allocator.allocate(7)
        assert allocator.peak_cycle_usage() == 3

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            BandwidthAllocator(0)


class TestOccupancyWindow:
    def test_no_constraint_until_full(self):
        window = OccupancyWindow(2)
        assert window.constraint() == 0
        window.push(100)
        assert window.constraint() == 0
        window.push(200)
        assert window.constraint() == 100

    def test_constraint_slides(self):
        window = OccupancyWindow(2)
        window.push(100)
        window.push(200)
        window.push(300)
        assert window.constraint() == 200

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            OccupancyWindow(0)


class TestInOrderTracker:
    def test_monotonic(self):
        tracker = InOrderTracker()
        assert tracker.advance(10) == 10
        assert tracker.advance(5) == 10
        assert tracker.cycle == 10


def _simple_alu_trace(length: int = 200) -> Trace:
    return Trace([int_alu(i, dest=(i % 32) + 8) for i in range(length)], name="alu")


class TestOutOfOrderCore:
    def test_result_shape(self, tiny_trace):
        result = OutOfOrderCore().run(tiny_trace)
        assert isinstance(result, CoreResult)
        assert result.committed_instructions == len(tiny_trace)
        assert result.cycles > 0
        assert 0 < result.ipc <= 4

    def test_independent_alu_ipc_close_to_width(self):
        result = OutOfOrderCore().run(_simple_alu_trace(400))
        assert result.ipc > 2.0

    def test_dependent_chain_limits_ipc(self):
        chain = Trace(
            [int_alu(i, dest=8, srcs=(8,) if i else ()) for i in range(300)], name="chain"
        )
        result = OutOfOrderCore().run(chain)
        assert result.ipc <= 1.1

    def test_mispredicted_branches_slow_things_down(self):
        clean = Trace(
            [int_alu(i, dest=8) if i % 5 else branch(i) for i in range(400)], name="clean"
        )
        dirty = Trace(
            [int_alu(i, dest=8) if i % 5 else branch(i, mispredicted=True) for i in range(400)],
            name="dirty",
        )
        assert OutOfOrderCore().run(dirty).ipc < OutOfOrderCore().run(clean).ipc

    def test_memory_misses_limited_by_rob(self, small_trace):
        small = OutOfOrderCore(CoreConfig(rob_size=16)).run(small_trace)
        large = OutOfOrderCore(CoreConfig(rob_size=256, load_queue_entries=128,
                                          store_queue_entries=96)).run(small_trace)
        assert large.ipc >= small.ipc

    def test_deterministic(self, small_trace):
        first = OutOfOrderCore().run(small_trace)
        second = OutOfOrderCore().run(small_trace)
        assert first.cycles == second.cycles

    def test_store_load_forwarding_happens(self):
        instructions = []
        seq = 0
        for repeat in range(50):
            instructions.append(int_alu(seq, dest=8))
            seq += 1
            instructions.append(store(seq, address=0x1000 + repeat * 8, srcs=(0, 8)))
            seq += 1
            instructions.append(load(seq, dest=9, address=0x1000 + repeat * 8, srcs=(0,)))
            seq += 1
        result = OutOfOrderCore().run(Trace(instructions, name="forwarding"))
        assert result.counter("lsq.forwarded_loads") >= 40

    def test_decode_to_address_histogram_recorded(self, small_trace):
        result = OutOfOrderCore().run(small_trace)
        assert result.histogram("decode_to_address.loads") is not None
        assert result.histogram("decode_to_address.stores") is not None

    def test_counters_exposed_per_100m(self, small_trace):
        result = OutOfOrderCore().run(small_trace)
        raw = result.counter("hl_sq.searches")
        assert result.per_100m("hl_sq.searches") == pytest.approx(
            raw * 100_000_000 / result.committed_instructions
        )

    def test_speedup_over_self_is_one(self, small_trace):
        result = OutOfOrderCore().run(small_trace)
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_warm_caches_flag_matters(self, small_trace):
        warm = OutOfOrderCore(warm_caches=True).run(small_trace)
        cold = OutOfOrderCore(warm_caches=False).run(small_trace)
        assert cold.cycles >= warm.cycles

    def test_custom_stats_registry_used(self, small_trace):
        registry = StatsRegistry()
        core = OutOfOrderCore(stats=registry)
        core.run(small_trace)
        assert registry.value("core.committed_instructions") == len(small_trace)

    def test_hierarchy_config_respected(self, small_trace):
        tiny_l2 = MemoryHierarchyConfig().with_l2_size(1024 * 1024)
        core = OutOfOrderCore(hierarchy_config=tiny_l2)
        assert core.hierarchy.config.l2.size_bytes == 1024 * 1024
        core.run(small_trace)

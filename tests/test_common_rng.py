"""Tests for the deterministic RNG helpers."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "loads") == derive_seed(42, "loads")

    def test_different_labels_differ(self):
        assert derive_seed(42, "loads") != derive_seed(42, "stores")

    def test_different_parents_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_result_is_non_negative(self):
        assert derive_seed(123456789, "anything") >= 0

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigurationError):
            derive_seed("nope", "label")  # type: ignore[arg-type]


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.integer(0, 100) for _ in range(20)] == [b.integer(0, 100) for _ in range(20)]

    def test_different_seed_different_stream(self):
        a = [DeterministicRng(7).integer(0, 10_000) for _ in range(5)]
        b = [DeterministicRng(8).integer(0, 10_000) for _ in range(5)]
        assert a != b

    def test_spawn_is_independent_of_parent_consumption(self):
        parent_a = DeterministicRng(3)
        parent_b = DeterministicRng(3)
        parent_b.uniform()  # consume some state from one parent only
        assert parent_a.spawn("child").integer(0, 10**6) == parent_b.spawn("child").integer(0, 10**6)

    def test_uniform_bounds(self):
        rng = DeterministicRng(1)
        for _ in range(200):
            value = rng.uniform(2.0, 5.0)
            assert 2.0 <= value < 5.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).uniform(5.0, 2.0)

    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert rng.chance(1.0) is True
        assert rng.chance(0.0) is False

    def test_chance_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).chance(1.5)

    def test_integer_inclusive_bounds(self):
        rng = DeterministicRng(2)
        values = {rng.integer(0, 3) for _ in range(300)}
        assert values == {0, 1, 2, 3}

    def test_choice_requires_non_empty(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).choice([])

    def test_weighted_choice_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).weighted_choice(["a", "b"], [1.0])

    def test_weighted_choice_rejects_zero_weights(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(5)
        picks = {rng.weighted_choice(["a", "b"], [0.0, 1.0]) for _ in range(50)}
        assert picks == {"b"}

    def test_geometric_within_bounds(self):
        rng = DeterministicRng(4)
        for _ in range(200):
            value = rng.geometric(mean=5.0, maximum=16)
            assert 1 <= value <= 16

    def test_geometric_mean_roughly_tracks_parameter(self):
        rng = DeterministicRng(4)
        samples = [rng.geometric(mean=4.0, maximum=1000) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 3.0 < mean < 5.5

    def test_geometric_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).geometric(mean=0.0, maximum=4)
        with pytest.raises(ConfigurationError):
            DeterministicRng(1).geometric(mean=3.0, maximum=0)

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(9)
        items = list(range(50))
        assert sorted(rng.shuffled(items)) == items

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng("seed")  # type: ignore[arg-type]

"""Tests for the workload families and the family sensitivity sweep.

Each family is supposed to isolate one behaviour; these tests assert the
isolation actually shows up in the generated streams and in the simulated
numbers (streaming beats pointer chasing on the FMC, branchy mispredicts
more, phased alternates), that the families are addressable through the
suite registry and the experiment/CLI registries, and that the family sweep
produces identical series through the serial and orchestrated paths.
"""

from __future__ import annotations

import pytest
from _helpers import TEST_SEED

from repro.common.errors import WorkloadError
from repro.exp.runner import ExperimentRunner
from repro.sim.configs import fmc_hash
from repro.sim.experiments import (
    EXPERIMENTS,
    FamilySweepPoint,
    family_sweep,
    quick_context,
)
from repro.sim.simulator import Simulator
from repro.workloads.families import (
    FAMILY_NAMES,
    family_suite,
    family_suites,
)
from repro.workloads.suite import (
    generate_member_trace,
    suite_by_name,
    suite_names,
    workload_by_name,
)

FAMILY_TEST_INSTRUCTIONS = 2_000


class TestFamilyRegistry:
    def test_family_names(self):
        assert FAMILY_NAMES == ("pointer_chase", "streaming", "branchy", "phased")

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_families_are_registered_suites(self, name):
        suite = suite_by_name(name)
        assert suite.name == name
        assert len(suite) == 2
        assert suite.member_names() == family_suite(name).member_names()

    def test_suite_names_cover_families_and_spec(self):
        names = suite_names()
        for name in FAMILY_NAMES:
            assert name in names
        assert "spec_fp_like" in names and "spec_int_like" in names

    def test_family_suites_mapping(self):
        suites = family_suites()
        assert tuple(suites) == FAMILY_NAMES
        assert all(suites[name].name == name for name in suites)

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError):
            family_suite("spec_fp_like")

    def test_workload_by_name_spans_all_registries(self):
        assert workload_by_name("list_walk").name == "list_walk"
        assert workload_by_name("mcf_like").name == "mcf_like"
        assert workload_by_name("swim_like").name == "swim_like"
        with pytest.raises(WorkloadError):
            workload_by_name("not_a_workload")


class TestFamilyCharacter:
    """The families must actually exhibit the behaviour they claim to isolate."""

    def _trace(self, member_name: str):
        return generate_member_trace(
            workload_by_name(member_name), FAMILY_TEST_INSTRUCTIONS, seed=TEST_SEED
        )

    def test_streaming_outruns_pointer_chasing_on_the_fmc(self):
        """Independent misses (MLP) must beat dependent-miss chains."""
        simulator = Simulator(fmc_hash())
        streaming = simulator.run_trace(self._trace("stream_copy"))
        chasing = simulator.run_trace(self._trace("list_walk"))
        assert streaming.ipc > chasing.ipc

    def test_branchy_mispredicts_more_than_streaming(self):
        branchy = self._trace("interpreter_loop").statistics()
        streaming = self._trace("stream_copy").statistics()
        assert branchy.branch_fraction > streaming.branch_fraction
        assert branchy.branch_mispredict_rate > streaming.branch_mispredict_rate

    def test_phased_members_declare_phases(self):
        for member in family_suite("phased"):
            assert member.phase_length > 0
            assert 0.0 < member.memory_phase_fraction < 1.0
        for member in family_suite("streaming"):
            assert member.phase_length == 0

    def test_pointer_chase_members_chase(self):
        for member in family_suite("pointer_chase"):
            assert member.chased_load_fraction >= 0.3
        for member in family_suite("streaming"):
            assert member.chased_load_fraction == 0.0


class TestFamilySweep:
    def test_registered_experiment(self):
        assert "family-sweep" in EXPERIMENTS
        from repro.exp.cli import FIGURES

        assert "family-sweep" in FIGURES

    def test_sweep_points_and_shape(self):
        context = quick_context(instructions=800, seed=TEST_SEED)
        points = family_sweep(
            context,
            families=("streaming",),
            epoch_counts=(2, 16),
            locality_thresholds=(30,),
        )
        assert [
            (point.family, point.knob, point.value) for point in points
        ] == [
            ("streaming", "epochs", 2),
            ("streaming", "epochs", 16),
            ("streaming", "locality_threshold", 30),
        ]
        assert all(isinstance(point, FamilySweepPoint) for point in points)
        assert all(point.mean_ipc > 0 for point in points)
        # Two epochs strangle a high-MLP family; sixteen must do better.
        assert points[1].mean_ipc > points[0].mean_ipc
        assert (
            points[0].migration_stall_cycles_per_100m
            > points[1].migration_stall_cycles_per_100m
        )

    def test_serial_and_orchestrated_sweeps_are_bit_identical(self):
        serial_context = quick_context(instructions=700, seed=TEST_SEED)
        parallel_context = quick_context(instructions=700, seed=TEST_SEED)
        parallel_context.runner = ExperimentRunner(jobs=2)
        kwargs = {
            "families": ("pointer_chase", "phased"),
            "epoch_counts": (4,),
            "locality_thresholds": (10, 90),
        }
        serial = family_sweep(serial_context, **kwargs)
        parallel = family_sweep(parallel_context, **kwargs)
        assert serial == parallel
        assert parallel_context.runner.executed_jobs > 0

    def test_family_sweep_does_not_leak_suites_into_the_context(self):
        """A shared campaign context must keep its two SPEC-like suites."""
        context = quick_context(instructions=600, seed=TEST_SEED)
        family_sweep(
            context, families=("branchy",), epoch_counts=(16,), locality_thresholds=()
        )
        assert set(context.suites()) == {"SPEC FP", "SPEC INT"}

"""Tests for the durable job journal (repro.service.journal).

The contract under test is the PR's fault-tolerance tentpole: every
admitted job either reaches a terminal record or is re-queued by the next
generation's replay, accounting totals chain across restarts without
double counting, and a torn tail (the normal result of a kill mid-append)
never poisons recovery.
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from _helpers import TEST_INSTRUCTIONS

from repro.exp.request import JobRequest
from repro.exp.runner import SimJob
from repro.service.jobs import JobManager
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    journal_path,
    replay_journal,
)
from repro.sim.configs import fmc_hash
from repro.workloads.suite import quick_fp_suite

from test_service import running_service

WAIT_TIMEOUT = 120.0


def _request(seed: int) -> JobRequest:
    """A small batch request with a seed-distinct content address."""
    case = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, seed)
    return JobRequest(cases=(case,))


# ----------------------------------------------------------------------
# File layout and pure replay
# ----------------------------------------------------------------------


def test_journal_path_is_per_shard(tmp_path) -> None:
    assert journal_path(tmp_path).name == "journal-s0.jsonl"
    assert journal_path(tmp_path, 3).name == "journal-s3.jsonl"


def test_replay_of_missing_file_is_empty(tmp_path) -> None:
    replay = replay_journal(tmp_path / "absent.jsonl")
    assert replay.records == 0
    assert replay.pending == []
    assert replay.totals == {}


def test_replay_recovers_pending_and_totals(tmp_path) -> None:
    manager = JobManager(queue_limit=100)
    path = journal_path(tmp_path)
    manager.recover_journal(path)
    states = [manager.submit(_request(100 + index))[0] for index in range(3)]
    manager.journal.completed(states[0])
    manager.journal.close()

    replay = replay_journal(path)
    # snapshot + 3 admissions + 1 completion
    assert replay.records == 5
    assert replay.totals["submitted"] == 3
    assert replay.totals["completed"] == 1
    pending_ids = [job.job_id for job in replay.pending]
    assert pending_ids == [states[1].job_id, states[2].job_id]
    # The replayed request reconstructs the same content address.
    assert replay.pending[0].request.key() == states[1].key


def test_replay_skips_torn_tail_and_foreign_schema(tmp_path) -> None:
    manager = JobManager(queue_limit=100)
    path = journal_path(tmp_path)
    manager.recover_journal(path)
    manager.submit(_request(7))
    manager.journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"schema": 99, "event": "admitted"}) + "\n")
        handle.write('{"schema": 1, "event": "admitt')  # torn mid-append

    replay = replay_journal(path)
    assert replay.skipped == 2
    assert replay.records == 2  # snapshot + the one good admission
    assert len(replay.pending) == 1


def test_replay_ignores_unknown_event_names(tmp_path) -> None:
    path = tmp_path / "journal-s0.jsonl"
    record = {"schema": JOURNAL_SCHEMA_VERSION, "event": "promoted", "ts": time.time()}
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")
    replay = replay_journal(path)
    assert replay.records == 0
    assert replay.skipped == 1


def test_closed_journal_drops_appends_silently(tmp_path) -> None:
    journal = JobJournal(tmp_path / "journal-s0.jsonl")
    journal.close()
    journal.append("snapshot", totals={})  # must not raise
    assert replay_journal(journal.path).records == 0


# ----------------------------------------------------------------------
# Manager recovery
# ----------------------------------------------------------------------


def test_recovery_restores_accounting_and_requeues(tmp_path) -> None:
    path = journal_path(tmp_path)
    first = JobManager(queue_limit=100)
    first.recover_journal(path)
    states = [first.submit(_request(200 + index))[0] for index in range(3)]
    first.journal.completed(states[0])
    first.journal.close()

    second = JobManager(queue_limit=100)
    second.recover_journal(path)
    assert path.with_name("journal-s0.jsonl.prev").exists()
    assert second.stats["submitted"] == 3
    assert second.stats["completed"] == 1
    assert second._journal_replays.value == 1
    # The two unfinished jobs are re-queued under the same content
    # addresses, so cached results still resolve them.
    requeued = list(second.jobs.values())
    assert {state.key for state in requeued} == {states[1].key, states[2].key}
    assert all(state.status.value == "queued" for state in requeued)

    # A third generation replays the second's snapshot + requeued
    # admissions without double counting: totals are unchanged.
    second.journal.close()
    third = JobManager(queue_limit=100)
    third.recover_journal(path)
    assert third.stats["submitted"] == 3
    assert third.stats["completed"] == 1
    assert len(third.jobs) == 2


def test_recovery_restores_tenant_accounting(tmp_path) -> None:
    path = journal_path(tmp_path)
    first = JobManager(queue_limit=100)
    first.recover_journal(path)
    first.submit(_request(300))
    first.journal.close()

    second = JobManager(queue_limit=100)
    second.recover_journal(path)
    totals = second._tenant_event_totals()
    # The replayed admission is charged to the tenant; the requeued
    # re-admission is not (it would double count across generations).
    assert totals["default"]["admitted"] == 1


def test_recovery_without_prior_journal_starts_clean(tmp_path) -> None:
    manager = JobManager(queue_limit=100)
    manager.recover_journal(journal_path(tmp_path))
    assert manager.stats["submitted"] == 0
    assert manager._journal_replays.value == 0
    assert manager.jobs == {}
    # The fresh generation is headed by a snapshot record.
    manager.journal.close()
    lines = journal_path(tmp_path).read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[0])["event"] == "snapshot"


# ----------------------------------------------------------------------
# Service restart round-trip
# ----------------------------------------------------------------------


def test_restart_requeues_unfinished_jobs_and_completes_them(tmp_path) -> None:
    """The acceptance scenario: kill mid-job, restart, nothing is lost.

    The first service instance admits a job and blocks it mid-execution
    (via the ``pre_execute`` test hook), then shuts down -- the journal
    holds ``admitted``/``dispatched`` with no terminal record.  A second
    instance over the same cache directory must replay the journal,
    re-queue the job and complete it, resolvable through the original
    receipt's request key.
    """
    cache_dir = tmp_path / "cache"
    block = threading.Event()
    with running_service(cache_dir) as (service, client):
        service.manager.pre_execute = lambda state: block.wait(timeout=60)
        receipt = client.submit(cases=[
            SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, 400)
        ])
        deadline = time.monotonic() + WAIT_TIMEOUT
        while client.status(receipt.job_id)["status"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.02)
    block.set()  # unblock the abandoned daemon thread

    with running_service(cache_dir) as (service, client):
        assert service.manager._journal_replays.value == 1
        health = client.healthz()
        assert health["jobs"]["submitted"] == 1
        deadline = time.monotonic() + WAIT_TIMEOUT
        payload = None
        while payload is None and time.monotonic() < deadline:
            payload = client.result(receipt.request_key)
            if payload is None:
                time.sleep(0.05)
        assert payload is not None, "re-queued job never completed after restart"
        assert health["journal"].endswith("journal-s0.jsonl")


def test_restart_does_not_requeue_completed_jobs(tmp_path) -> None:
    cache_dir = tmp_path / "cache"
    case = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, 500)
    with running_service(cache_dir) as (service, client):
        client.submit(cases=[case], wait=True, timeout=WAIT_TIMEOUT)

    with running_service(cache_dir) as (service, client):
        health = client.healthz()
        assert health["jobs"]["submitted"] == 1
        assert health["jobs"]["completed"] == 1
        assert health["queue_depth"] == 0

"""Tests for the instruction and trace model."""

from __future__ import annotations

import pytest

from repro.common.errors import TraceError
from repro.isa.instruction import (
    FP_REGISTER_BASE,
    InstrClass,
    Instruction,
    branch,
    fp_alu,
    int_alu,
    load,
    store,
)
from repro.isa.trace import RegionFootprint, Trace


class TestInstruction:
    def test_load_requires_address(self):
        with pytest.raises(TraceError):
            Instruction(seq=0, iclass=InstrClass.LOAD, dest=1)

    def test_alu_must_not_have_address(self):
        with pytest.raises(TraceError):
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, address=0x100)

    def test_only_branches_mispredict(self):
        with pytest.raises(TraceError):
            Instruction(seq=0, iclass=InstrClass.INT_ALU, dest=1, mispredicted=True)

    def test_register_range_validation(self):
        with pytest.raises(TraceError):
            int_alu(0, dest=4096)
        with pytest.raises(TraceError):
            int_alu(0, dest=1, srcs=(4096,))

    def test_negative_seq_rejected(self):
        with pytest.raises(TraceError):
            int_alu(-1, dest=1)

    def test_memory_predicates(self):
        ld = load(0, dest=1, address=0x40)
        st = store(1, address=0x80, srcs=(1,))
        br = branch(2, srcs=(1,))
        assert ld.is_load and ld.is_memory and not ld.is_store
        assert st.is_store and st.is_memory and not st.is_load
        assert br.is_branch and not br.is_memory

    def test_fp_detection(self):
        assert fp_alu(0, dest=FP_REGISTER_BASE).is_fp
        assert not int_alu(0, dest=1).is_fp
        assert load(0, dest=FP_REGISTER_BASE + 1, address=0x8).is_fp

    def test_byte_range_and_overlap(self):
        a = store(0, address=0x100, srcs=(1,), size=8)
        b = load(1, dest=2, address=0x104, size=4)
        c = load(2, dest=3, address=0x108, size=8)
        assert a.byte_range() == (0x100, 0x108)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_byte_range_rejected_for_non_memory(self):
        with pytest.raises(TraceError):
            int_alu(0, dest=1).byte_range()


class TestTrace:
    def test_sequence_numbers_must_be_consecutive(self):
        with pytest.raises(TraceError):
            Trace([int_alu(0, dest=1), int_alu(2, dest=2)])

    def test_len_and_iteration(self, tiny_trace):
        assert len(tiny_trace) == 6
        assert [instr.seq for instr in tiny_trace] == list(range(6))

    def test_memory_operations_iterator(self, tiny_trace):
        memory_ops = list(tiny_trace.memory_operations())
        assert len(memory_ops) == 3
        assert all(op.is_memory for op in memory_ops)

    def test_statistics(self, tiny_trace):
        stats = tiny_trace.statistics()
        assert stats.num_instructions == 6
        assert stats.num_loads == 2
        assert stats.num_stores == 1
        assert stats.num_branches == 1
        assert stats.memory_fraction == pytest.approx(0.5)
        assert stats.unique_lines_touched == 2

    def test_statistics_mispredict_rate(self):
        trace = Trace([branch(0, mispredicted=True), branch(1, mispredicted=False)])
        assert trace.statistics().branch_mispredict_rate == pytest.approx(0.5)

    def test_prefix(self, tiny_trace):
        prefix = tiny_trace.prefix(3)
        assert len(prefix) == 3
        assert prefix[2].seq == 2

    def test_concatenate_rebases_sequence_numbers(self, tiny_trace):
        combined = tiny_trace.concatenate(tiny_trace)
        assert len(combined) == 12
        assert combined[11].seq == 11

    def test_save_and_load_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        tiny_trace.save(path)
        restored = Trace.load(path)
        assert len(restored) == len(tiny_trace)
        for original, loaded in zip(tiny_trace, restored):
            assert original == loaded

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 load 1\n")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_regions_default_empty(self, tiny_trace):
        assert tiny_trace.regions == ()


class TestRegionFootprint:
    def test_density(self):
        footprint = RegionFootprint(
            name="hot", base_address=0, size_bytes=1024, weight=0.5, pattern="stream"
        )
        assert footprint.access_density == pytest.approx(0.5 / 1024)

    def test_validation(self):
        with pytest.raises(TraceError):
            RegionFootprint(name="bad", base_address=0, size_bytes=0, weight=1.0, pattern="stream")
        with pytest.raises(TraceError):
            RegionFootprint(name="bad", base_address=-1, size_bytes=8, weight=1.0, pattern="stream")

"""Smoke tests for the ``python -m repro`` command line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_figure_cold_then_warm_cache(tmp_path: Path) -> None:
    """A warm second invocation must complete via cache with zero simulations."""
    base = [
        "sec52",
        "--jobs",
        "2",
        "--instructions",
        "1200",
        "--cache-dir",
        str(tmp_path / "cache"),
    ]
    cold = run_cli(base + ["--json", str(tmp_path / "cold.json")], cwd=tmp_path)
    assert cold.returncode == 0, cold.stderr
    assert "Section 5.2" in cold.stdout
    cold_artifact = json.loads((tmp_path / "cold.json").read_text())
    assert cold_artifact["executed_jobs"] > 0
    assert cold_artifact["cache_hits"] == 0

    warm = run_cli(base + ["--json", str(tmp_path / "warm.json")], cwd=tmp_path)
    assert warm.returncode == 0, warm.stderr
    warm_artifact = json.loads((tmp_path / "warm.json").read_text())
    assert warm_artifact["executed_jobs"] == 0
    assert warm_artifact["cache_hits"] == cold_artifact["executed_jobs"]
    assert warm_artifact["results"] == cold_artifact["results"]


def test_cache_inspection_commands(tmp_path: Path) -> None:
    cache_dir = str(tmp_path / "cache")
    run_cli(
        ["sec52", "--instructions", "1200", "--cache-dir", cache_dir, "--quiet"],
        cwd=tmp_path,
    )
    listing = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert listing.returncode == 0
    assert "swim_like" in listing.stdout

    info = run_cli(["cache", "info", "--cache-dir", cache_dir], cwd=tmp_path)
    assert info.returncode == 0
    assert "entries" in info.stdout

    cleared = run_cli(["cache", "clear", "--cache-dir", cache_dir], cwd=tmp_path)
    assert cleared.returncode == 0
    empty = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert "is empty" in empty.stdout


def test_list_command(tmp_path: Path) -> None:
    result = run_cli(["list"], cwd=tmp_path)
    assert result.returncode == 0
    for name in ("fig1", "fig7", "table2", "OoO-64", "FMC-Hash"):
        assert name in result.stdout


def test_bench_writes_timing_artifact(tmp_path: Path) -> None:
    output = tmp_path / "BENCH_test.json"
    result = run_cli(
        [
            "bench",
            "--figures",
            "sec52",
            "--jobs",
            "2",
            "--instructions",
            "800",
            "--output",
            str(output),
        ],
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    artifact = json.loads(output.read_text())
    figure = artifact["figures"]["sec52"]
    assert figure["simulations"] > 0
    assert figure["serial_seconds"] > 0
    assert figure["parallel_seconds"] > 0
    assert artifact["parallel_jobs"] == 2

"""Smoke tests for the ``python -m repro`` command line interface."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from _helpers import REPO_ROOT, SRC_DIR, run_cli, subprocess_env

from repro.trace import TRACE_FORMAT_VERSION


def test_figure_cold_then_warm_cache(tmp_path: Path) -> None:
    """A warm second invocation must complete via cache with zero simulations."""
    base = [
        "sec52",
        "--jobs",
        "2",
        "--instructions",
        "1200",
        "--cache-dir",
        str(tmp_path / "cache"),
    ]
    cold = run_cli(base + ["--json", str(tmp_path / "cold.json")], cwd=tmp_path)
    assert cold.returncode == 0, cold.stderr
    assert "Section 5.2" in cold.stdout
    cold_artifact = json.loads((tmp_path / "cold.json").read_text())
    assert cold_artifact["executed_jobs"] > 0
    assert cold_artifact["cache_hits"] == 0

    warm = run_cli(base + ["--json", str(tmp_path / "warm.json")], cwd=tmp_path)
    assert warm.returncode == 0, warm.stderr
    warm_artifact = json.loads((tmp_path / "warm.json").read_text())
    assert warm_artifact["executed_jobs"] == 0
    assert warm_artifact["cache_hits"] == cold_artifact["executed_jobs"]
    assert warm_artifact["results"] == cold_artifact["results"]


def test_cache_inspection_commands(tmp_path: Path) -> None:
    cache_dir = str(tmp_path / "cache")
    run_cli(
        ["sec52", "--instructions", "1200", "--cache-dir", cache_dir, "--quiet"],
        cwd=tmp_path,
    )
    listing = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert listing.returncode == 0
    assert "swim_like" in listing.stdout

    info = run_cli(["cache", "info", "--cache-dir", cache_dir], cwd=tmp_path)
    assert info.returncode == 0
    assert "entries" in info.stdout

    cleared = run_cli(["cache", "clear", "--cache-dir", cache_dir], cwd=tmp_path)
    assert cleared.returncode == 0
    empty = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert "is empty" in empty.stdout


def test_cache_clear_prune_flags(tmp_path: Path) -> None:
    cache_dir = str(tmp_path / "cache")
    run_cli(
        ["sec52", "--instructions", "1200", "--cache-dir", cache_dir, "--quiet"],
        cwd=tmp_path,
    )
    # Age-based pruning with a huge threshold removes nothing.
    kept = run_cli(
        ["cache", "clear", "--older-than", "3650", "--cache-dir", cache_dir], cwd=tmp_path
    )
    assert kept.returncode == 0
    assert "pruned 0 entries" in kept.stdout
    listing = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert "swim_like" in listing.stdout
    # Size-based pruning to zero megabytes evicts everything.
    pruned = run_cli(
        ["cache", "clear", "--max-size", "0", "--cache-dir", cache_dir], cwd=tmp_path
    )
    assert pruned.returncode == 0
    assert "0 remain" in pruned.stdout
    empty = run_cli(["cache", "list", "--cache-dir", cache_dir], cwd=tmp_path)
    assert "is empty" in empty.stdout
    # The prune flags are clear-only.
    misuse = run_cli(
        ["cache", "list", "--older-than", "1", "--cache-dir", cache_dir], cwd=tmp_path
    )
    assert misuse.returncode == 2


def test_version_command_single_sources_the_version(tmp_path: Path) -> None:
    import repro

    result = run_cli(["version"], cwd=tmp_path)
    assert result.returncode == 0
    assert result.stdout.strip() == f"repro {repro.__version__}"
    # setup.py and repro.__version__ both read src/repro/_version.py.
    version_file = (SRC_DIR / "repro" / "_version.py").read_text()
    assert f'__version__ = "{repro.__version__}"' in version_file
    setup_text = (REPO_ROOT / "setup.py").read_text()
    assert "_version.py" in setup_text
    assert repro.__version__ not in setup_text


def test_list_command(tmp_path: Path) -> None:
    result = run_cli(["list"], cwd=tmp_path)
    assert result.returncode == 0
    for name in ("fig1", "fig7", "table2", "OoO-64", "FMC-Hash"):
        assert name in result.stdout


def test_serve_and_submit_verbs(tmp_path: Path) -> None:
    """`repro serve` + `repro submit` round trip, warm second submission."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--cache-dir", "svc-cache"],
        cwd=tmp_path,
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        assert "serving on http://" in banner, banner
        url = banner.split("serving on ")[1].split()[0]
        submit = ["submit", "sec52", "--server", url, "--instructions", "1200"]
        cold = run_cli(submit + ["--json", str(tmp_path / "cold.json")], cwd=tmp_path)
        assert cold.returncode == 0, cold.stdout + cold.stderr
        cold_view = json.loads((tmp_path / "cold.json").read_text())
        assert cold_view["status"] == "completed"
        assert cold_view["progress"]["executed_jobs"] > 0

        warm = run_cli(submit + ["--json", str(tmp_path / "warm.json")], cwd=tmp_path)
        assert warm.returncode == 0, warm.stdout + warm.stderr
        warm_view = json.loads((tmp_path / "warm.json").read_text())
        assert warm_view["progress"]["executed_jobs"] == 0
        assert warm_view["result"] == cold_view["result"]
    finally:
        server.terminate()
        server.wait(timeout=10)


def test_trace_record_info_replay(tmp_path: Path) -> None:
    """`repro trace` records a binary trace, inspects it and verifies replay."""
    recorded = run_cli(
        [
            "trace", "record", "gcc_like",
            "--instructions", "800", "--seed", "5", "--out", "g.rtrace",
        ],
        cwd=tmp_path,
    )
    assert recorded.returncode == 0, recorded.stderr
    assert "recorded 800 instructions" in recorded.stdout
    assert (tmp_path / "g.rtrace").is_file()

    info = run_cli(["trace", "info", "g.rtrace"], cwd=tmp_path)
    assert info.returncode == 0, info.stderr
    assert "gcc_like" in info.stdout
    assert f"format version  : {TRACE_FORMAT_VERSION}" in info.stdout
    assert "recorded" in info.stdout  # workload params travelled along

    replay = run_cli(
        ["trace", "replay", "g.rtrace", "--machine", "OoO-64", "--verify",
         "--json", str(tmp_path / "replay.json")],
        cwd=tmp_path,
    )
    assert replay.returncode == 0, replay.stdout + replay.stderr
    assert "verified" in replay.stdout
    result = json.loads((tmp_path / "replay.json").read_text())
    assert result["committed_instructions"] == 800
    assert result["cycles"] > 0

    # A family member is recordable by bare name too.
    family = run_cli(
        ["trace", "record", "stream_copy", "--instructions", "600"], cwd=tmp_path
    )
    assert family.returncode == 0, family.stderr
    assert (tmp_path / "stream_copy.rtrace").is_file()

    unknown = run_cli(["trace", "record", "nope_like"], cwd=tmp_path)
    assert unknown.returncode == 2
    assert "unknown workload" in unknown.stderr


def test_cache_clear_stale_flag(tmp_path: Path) -> None:
    """`repro cache clear --stale` sweeps only old-format entries."""
    cache_dir = str(tmp_path / "cache")
    run_cli(
        ["sec52", "--instructions", "800", "--cache-dir", cache_dir, "--quiet"],
        cwd=tmp_path,
    )
    from repro.exp.cache import ResultCache

    cache = ResultCache(cache_dir)
    entries = list(cache.entries())
    assert entries
    doomed = entries[0]
    payload = json.loads(doomed.path.read_text())
    payload["trace_format"] = 0
    doomed.path.write_text(json.dumps(payload, sort_keys=True))

    swept = run_cli(["cache", "clear", "--stale", "--cache-dir", cache_dir], cwd=tmp_path)
    assert swept.returncode == 0, swept.stderr
    assert "removed 1 stale-format cache entries" in swept.stdout
    remaining = list(cache.entries())
    assert len(remaining) == len(entries) - 1
    assert all(not entry.is_stale for entry in remaining)

    # --stale composes with nothing else and is clear-only.
    misuse = run_cli(["cache", "list", "--stale", "--cache-dir", cache_dir], cwd=tmp_path)
    assert misuse.returncode == 2
    conflict = run_cli(
        ["cache", "clear", "--stale", "--older-than", "1", "--cache-dir", cache_dir],
        cwd=tmp_path,
    )
    assert conflict.returncode == 2


def test_family_sweep_figure_command(tmp_path: Path) -> None:
    """The family sweep is addressable like any other figure."""
    result = run_cli(
        [
            "family-sweep", "--instructions", "500",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json"),
        ],
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "Family sweep" in result.stdout
    artifact = json.loads((tmp_path / "sweep.json").read_text())
    points = artifact["results"]
    families = {point["family"] for point in points}
    assert families == {"pointer_chase", "streaming", "branchy", "phased"}
    assert {point["knob"] for point in points} == {"epochs", "locality_threshold"}


def test_bench_writes_timing_artifact(tmp_path: Path) -> None:
    output = tmp_path / "BENCH_test.json"
    result = run_cli(
        [
            "bench",
            "--figures",
            "sec52",
            "--jobs",
            "2",
            "--instructions",
            "800",
            "--output",
            str(output),
        ],
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    artifact = json.loads(output.read_text())
    figure = artifact["figures"]["sec52"]
    assert figure["simulations"] > 0
    assert figure["serial_seconds"] > 0
    assert figure["parallel_seconds"] > 0
    assert artifact["parallel_jobs"] == 2


def test_profile_writes_chrome_trace(tmp_path: Path) -> None:
    output = tmp_path / "trace.json"
    result = run_cli(
        [
            "profile",
            "sec52",
            "--trace-out",
            str(output),
            "--jobs",
            "1",
            "--instructions",
            "800",
        ],
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "wrote" in result.stdout
    document = json.loads(output.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["figure"] == "sec52"
    events = document["traceEvents"]
    phs = {event["ph"] for event in events}
    assert phs == {"X", "M"}
    complete = [event for event in events if event["ph"] == "X"]
    assert any(event["name"] == "profile:sec52" for event in complete)
    assert any(event.get("cat") == "phase" for event in complete)
    for event in complete:
        assert {"ts", "dur", "pid", "tid", "name"} <= set(event)

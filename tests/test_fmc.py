"""Tests for the FMC decoupled large-window processor model."""

from __future__ import annotations

import pytest

from repro.common.config import (
    DisambiguationModel,
    ELSQConfig,
    FMCConfig,
    MemoryEngineConfig,
)
from repro.core.conventional import IdealCentralLSQ
from repro.fmc.processor import FMCProcessor
from repro.isa.instruction import int_alu
from repro.isa.trace import Trace
from repro.uarch.ooo_core import OutOfOrderCore
from repro.workloads.base import MemoryRegion, SyntheticWorkload, WorkloadParameters


def _memory_bound_params(chase: float = 0.0, mispredict_on_miss: float = 0.0) -> WorkloadParameters:
    return WorkloadParameters(
        name="fmc_test",
        load_fraction=0.32,
        store_fraction=0.10,
        branch_fraction=0.08,
        fp_fraction=0.5,
        regions=(
            MemoryRegion(name="far", size_bytes=12 * 1024 * 1024, weight=0.04, pattern="stream", is_far=True),
            MemoryRegion(name="hot", size_bytes=32 * 1024, weight=0.56, pattern="stream"),
            MemoryRegion(name="mid", size_bytes=512 * 1024, weight=0.40, pattern="random"),
        ),
        chased_load_fraction=chase,
        branch_mispredict_rate=0.02 if mispredict_on_miss else 0.004,
        mispredict_depends_on_miss_fraction=mispredict_on_miss,
        phase_length=1000,
        memory_phase_fraction=0.5,
        seed=77,
    )


@pytest.fixture(scope="module")
def memory_bound_trace() -> "Trace":
    return SyntheticWorkload(_memory_bound_params(chase=0.05), seed=11).generate(6000)


class TestFMCProcessor:
    def test_result_shape(self, memory_bound_trace):
        result = FMCProcessor().run(memory_bound_trace)
        assert result.committed_instructions == len(memory_bound_trace)
        assert result.cycles > 0
        assert result.high_locality_fraction is not None
        assert 0.0 <= result.high_locality_fraction <= 1.0
        assert result.mean_allocated_epochs is not None

    def test_large_window_beats_small_rob_on_memory_bound_code(self, memory_bound_trace):
        baseline = OutOfOrderCore().run(memory_bound_trace)
        fmc = FMCProcessor().run(memory_bound_trace)
        assert fmc.ipc > baseline.ipc * 1.3

    def test_compute_bound_code_sees_no_large_window_benefit(self):
        trace = Trace([int_alu(i, dest=8 + (i % 16)) for i in range(2000)], name="alu_only")
        baseline = OutOfOrderCore().run(trace)
        fmc = FMCProcessor().run(trace)
        assert fmc.ipc == pytest.approx(baseline.ipc, rel=0.15)
        assert fmc.high_locality_fraction == pytest.approx(1.0)

    def test_deterministic(self, memory_bound_trace):
        first = FMCProcessor().run(memory_bound_trace)
        second = FMCProcessor().run(memory_bound_trace)
        assert first.cycles == second.cycles

    def test_pointer_chasing_grows_the_low_locality_load_tail(self):
        """Chased loads depend on missing loads, so their address calculation
        resolves late: the decode→address histogram (Figure 1) must show a
        larger low-locality tail than for the purely streaming workload."""
        streaming = SyntheticWorkload(_memory_bound_params(chase=0.0), seed=9).generate(6000)
        chasing = SyntheticWorkload(_memory_bound_params(chase=0.5), seed=9).generate(6000)

        def tail_fraction(trace):
            series = FMCProcessor().run(trace).histogram("decode_to_address.loads")
            total = sum(population for _, population in series)
            return 1.0 - series[0][1] / total

        assert tail_fraction(chasing) > tail_fraction(streaming)

    def test_miss_dependent_mispredicts_reduce_benefit(self):
        clean = SyntheticWorkload(_memory_bound_params(), seed=9).generate(6000)
        hostile = SyntheticWorkload(
            _memory_bound_params(mispredict_on_miss=0.6), seed=9
        ).generate(6000)
        speedup_clean = FMCProcessor().run(clean).ipc / OutOfOrderCore().run(clean).ipc
        speedup_hostile = FMCProcessor().run(hostile).ipc / OutOfOrderCore().run(hostile).ipc
        assert speedup_clean > speedup_hostile

    def test_epoch_statistics_recorded(self, memory_bound_trace):
        result = FMCProcessor().run(memory_bound_trace)
        assert result.counter("elsq.epochs_opened") > 0
        assert result.extra["epochs_opened"] >= 1
        assert result.counter("fmc.migrated_instructions") > 0

    def test_restricted_sac_blocks_migration(self, memory_bound_trace):
        full = FMCProcessor(elsq_config=ELSQConfig()).run(memory_bound_trace)
        rsac = FMCProcessor(
            elsq_config=ELSQConfig(disambiguation=DisambiguationModel.RESTRICTED_SAC)
        ).run(memory_bound_trace)
        # A stream-dominated workload has almost no miss-dependent store
        # addresses, so RSAC costs little (Figure 9), but never gains.
        assert rsac.ipc <= full.ipc * 1.01

    def test_central_lsq_policy_can_be_hosted(self, memory_bound_trace):
        processor = FMCProcessor()
        processor.policy = IdealCentralLSQ(processor.stats, processor.hierarchy)
        result = processor.run(memory_bound_trace)
        assert result.counter("central_lsq.searches") > 0

    def test_small_epoch_pool_limits_window(self, memory_bound_trace):
        narrow = FMCProcessor(
            config=FMCConfig(num_memory_engines=2, memory_engine=MemoryEngineConfig(max_instructions=32, max_loads=16, max_stores=8))
        ).run(memory_bound_trace)
        wide = FMCProcessor().run(memory_bound_trace)
        assert wide.ipc >= narrow.ipc

    def test_histograms_have_low_locality_tail(self, memory_bound_trace):
        result = FMCProcessor().run(memory_bound_trace)
        series = result.histogram("decode_to_address.loads")
        assert series is not None
        total = sum(population for _, population in series)
        first_bin = series[0][1]
        assert total > 0
        # Most loads compute their address right after decode (Figure 1) ...
        assert first_bin / total > 0.6
        # ... but a visible low-locality tail exists for this memory-bound trace.
        assert first_bin < total

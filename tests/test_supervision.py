"""Tests for supervised job execution and graceful shutdown.

Supervision: per-attempt wall-clock timeouts, bounded retries with
backoff for *retryable* failures (worker crashes, transport errors) and
fail-fast for deterministic ones -- retrying a configuration error burns
cycles to fail identically.

Shutdown: a draining server finishes what it admitted, answers new
submissions with 503 + ``Retry-After``, flushes the journal, and a
``repro serve`` process exits 0 on SIGTERM.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest
from _helpers import TEST_INSTRUCTIONS, subprocess_env

from repro.common.errors import (
    ConfigurationError,
    JobTimeoutError,
    ServiceError,
    WorkerCrashError,
)
from repro.exp.request import JobRequest
from repro.exp.runner import SimJob
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager, JobStatus, is_retryable
from repro.service.journal import journal_path
from repro.service.server import ReproService, ServiceConfig
from repro.sim.configs import fmc_hash
from repro.workloads.suite import quick_fp_suite

WAIT_TIMEOUT = 120.0


def _request(seed: int) -> JobRequest:
    case = SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, seed)
    return JobRequest(cases=(case,))


def _drive(manager: JobManager, request: JobRequest):
    """Run the manager's workers until ``request`` reaches a terminal state."""

    async def drive():
        await manager.start()
        try:
            state, _ = manager.submit(request)
            deadline = time.monotonic() + WAIT_TIMEOUT
            while state.status not in (JobStatus.COMPLETED, JobStatus.FAILED):
                assert time.monotonic() < deadline, "job never finished"
                await asyncio.sleep(0.02)
            return state
        finally:
            await manager.stop()

    return asyncio.run(drive())


# ----------------------------------------------------------------------
# Retry classification
# ----------------------------------------------------------------------


def test_is_retryable_classification() -> None:
    assert is_retryable(WorkerCrashError("pool died"))
    assert is_retryable(ConnectionError("reset"))
    assert is_retryable(BrokenPipeError())
    assert is_retryable(EOFError())
    assert is_retryable(OSError("io"))
    # Deterministic repro errors re-fail identically: never retried.
    assert not is_retryable(ConfigurationError("bad request"))
    assert not is_retryable(JobTimeoutError("too slow"))
    assert not is_retryable(ValueError("bug"))


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


def test_transient_crash_is_retried_to_success() -> None:
    manager = JobManager(queue_limit=8, job_retries=2, retry_backoff_base=0.0)
    calls = {"n": 0}

    def crash_once(state) -> None:
        calls["n"] += 1
        if calls["n"] == 1:
            raise WorkerCrashError("injected transient crash")

    manager.pre_execute = crash_once
    state = _drive(manager, _request(600))
    assert state.status is JobStatus.COMPLETED
    assert state.attempts == 2
    assert manager._retries_total.value == 1
    assert state.view()["attempts"] == 2


def test_retries_exhausted_fails_with_taxonomy_code() -> None:
    manager = JobManager(queue_limit=8, job_retries=1, retry_backoff_base=0.0)

    def always_crash(state) -> None:
        raise WorkerCrashError("injected persistent crash")

    manager.pre_execute = always_crash
    state = _drive(manager, _request(601))
    assert state.status is JobStatus.FAILED
    assert state.error_code == "job_retries_exhausted"
    assert state.attempts == 2
    assert "after 2 attempts" in state.error
    assert manager.stats["failed"] == 1


def test_deterministic_failure_is_not_retried() -> None:
    manager = JobManager(queue_limit=8, job_retries=3, retry_backoff_base=0.0)

    def bad_config(state) -> None:
        raise ConfigurationError("deterministically broken")

    manager.pre_execute = bad_config
    state = _drive(manager, _request(602))
    assert state.status is JobStatus.FAILED
    assert state.attempts == 1
    assert manager._retries_total.value == 0


def test_job_timeout_fails_without_retry() -> None:
    manager = JobManager(queue_limit=8, job_timeout=0.2, job_retries=2)

    def stall(state) -> None:
        time.sleep(3.0)

    manager.pre_execute = stall
    state = _drive(manager, _request(603))
    assert state.status is JobStatus.FAILED
    assert state.error_code == "job_timeout"
    assert state.attempts == 1
    assert manager._retries_total.value == 0


def test_zero_timeout_means_unlimited() -> None:
    manager = JobManager(queue_limit=8, job_timeout=0.0)
    assert manager.job_timeout is None
    manager = JobManager(queue_limit=8, job_retries=-5)
    assert manager.job_retries == 0


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


@contextlib.contextmanager
def _service_with_loop(cache_dir, **overrides):
    """Like test_service.running_service, but also yields the event loop
    (the drain coroutine must be scheduled on the server's own loop)."""
    settings = {"workers": 1, "sim_jobs": 1, "queue_limit": 4, "history_limit": 64}
    settings.update(overrides)
    config = ServiceConfig(
        host="127.0.0.1", port=0, cache_dir=str(cache_dir), **settings
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    service = ReproService(config)
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=10)
    client = ServiceClient(f"http://127.0.0.1:{service.address[1]}", timeout=30.0)
    try:
        yield service, client, loop
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


def test_drain_finishes_inflight_and_rejects_new_submissions(tmp_path) -> None:
    release = threading.Event()
    with _service_with_loop(tmp_path / "cache") as (service, client, loop):
        service.manager.pre_execute = lambda state: release.wait(timeout=30)
        receipt = client.submit(cases=[
            SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, 700)
        ])
        deadline = time.monotonic() + WAIT_TIMEOUT
        while client.status(receipt.job_id)["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)

        drained = asyncio.run_coroutine_threadsafe(service.drain(30.0), loop)
        while not service._draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)

        # New submissions bounce with the full refusal contract: HTTP 503,
        # the `draining` taxonomy code, Retry-After as header and body field.
        # (The drain check runs before request parsing, so a bare body works.)
        url = f"http://127.0.0.1:{service.address[1]}/v1/jobs"
        probe = urllib.request.Request(
            url,
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(probe, timeout=10)
        assert info.value.code == 503
        assert int(info.value.headers["Retry-After"]) >= 1
        body = json.loads(info.value.read().decode("utf-8"))
        assert body["payload"]["code"] == "draining"
        assert body["payload"]["retry_after"] >= 1

        # The SDK surfaces the refusal as a ServiceError, not a hang.
        with pytest.raises(ServiceError, match="draining"):
            client.submit(cases=[
                SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, 701)
            ])

        # Pollers keep working during the drain.
        assert client.healthz()["draining"] is True

        release.set()
        assert drained.result(timeout=60) is True
        assert client.status(receipt.job_id)["status"] == "completed"

    # The journal recorded the completion before shutdown: nothing to
    # re-queue on the next start.
    journal = journal_path(tmp_path / "cache")
    events = [
        json.loads(line)["event"]
        for line in journal.read_text(encoding="utf-8").splitlines()
    ]
    assert "completed" in events


def test_drain_times_out_but_keeps_unfinished_work_journaled(tmp_path) -> None:
    release = threading.Event()
    with _service_with_loop(tmp_path / "cache") as (service, client, loop):
        service.manager.pre_execute = lambda state: release.wait(timeout=30)
        receipt = client.submit(cases=[
            SimJob(fmc_hash(), quick_fp_suite().members[0], TEST_INSTRUCTIONS, 710)
        ])
        deadline = time.monotonic() + WAIT_TIMEOUT
        while client.status(receipt.job_id)["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        drained = asyncio.run_coroutine_threadsafe(service.drain(0.2), loop)
        assert drained.result(timeout=30) is False
    release.set()
    journal = journal_path(tmp_path / "cache")
    events = [
        json.loads(line)["event"]
        for line in journal.read_text(encoding="utf-8").splitlines()
    ]
    # Admitted and dispatched, but never terminal: the next generation's
    # replay re-queues this job instead of losing it.
    assert "dispatched" in events
    assert "completed" not in events
    assert "failed" not in events


# ----------------------------------------------------------------------
# SIGTERM end-to-end (subprocess)
# ----------------------------------------------------------------------


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _await_healthz(url: str, deadline: float) -> None:
    client = ServiceClient(url, timeout=5.0)
    while True:
        try:
            client.healthz()
            return
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigterm_exits_zero_and_leaves_a_flushed_journal(tmp_path) -> None:
    port = _free_port()
    cache_dir = tmp_path / "cache"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--cache-dir",
            str(cache_dir),
            "--drain-timeout",
            "5",
            "--log-level",
            "warning",
        ],
        env=subprocess_env(),
    )
    try:
        _await_healthz(f"http://127.0.0.1:{port}", time.monotonic() + 60)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    journal = journal_path(cache_dir)
    assert journal.exists()
    head = json.loads(journal.read_text(encoding="utf-8").splitlines()[0])
    assert head["event"] == "snapshot"


@pytest.mark.skipif(not sys.platform.startswith("linux"), reason="/proc layout")
def test_sharded_serve_survives_one_shard_death(tmp_path) -> None:
    """Kill one shard outright: the survivor keeps serving, and SIGTERM on
    the supervisor still exits 0 (a dead child must not wedge shutdown)."""
    base_port = _free_port()
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(base_port),
            "--shards",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--drain-timeout",
            "2",
            "--log-level",
            "warning",
        ],
        env=subprocess_env(),
    )
    shard_urls = [f"http://127.0.0.1:{base_port + 1 + index}" for index in range(2)]
    try:
        deadline = time.monotonic() + 60
        for url in shard_urls:
            _await_healthz(url, deadline)
        children_path = f"/proc/{process.pid}/task/{process.pid}/children"
        with open(children_path, encoding="ascii") as handle:
            children = [int(pid) for pid in handle.read().split()]
        # Spawn-context children include multiprocessing's resource tracker;
        # the shard processes are the ones entered via spawn_main.
        shard_pids = []
        for pid in children:
            with open(f"/proc/{pid}/cmdline", "rb") as handle:
                if b"resource_tracker" not in handle.read():
                    shard_pids.append(pid)
        assert len(shard_pids) == 2
        import os

        os.kill(shard_pids[0], signal.SIGKILL)
        # At least one shard keeps answering (we do not know which child
        # owned which port, so probe both).
        survivor = None
        deadline = time.monotonic() + 30
        while survivor is None and time.monotonic() < deadline:
            for url in shard_urls:
                try:
                    ServiceClient(url, timeout=5.0).healthz()
                    survivor = url
                    break
                except ServiceError:
                    continue
            time.sleep(0.1)
        assert survivor is not None, "both shards died after killing one"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

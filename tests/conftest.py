"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.stats import StatsRegistry
from repro.isa.instruction import branch, int_alu, load, store
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.base import MemoryRegion, SyntheticWorkload, WorkloadParameters


@pytest.fixture
def stats() -> StatsRegistry:
    """A fresh statistics registry."""
    return StatsRegistry()


@pytest.fixture
def hierarchy(stats: StatsRegistry) -> MemoryHierarchy:
    """A default (Table 1) memory hierarchy."""
    return MemoryHierarchy(stats=stats)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built six-instruction trace exercising loads, stores and branches."""
    return Trace(
        [
            int_alu(0, dest=1),
            store(1, address=0x1000, srcs=(1,)),
            load(2, dest=2, address=0x1000, srcs=(0,)),
            int_alu(3, dest=3, srcs=(2,)),
            branch(4, srcs=(3,)),
            load(5, dest=4, address=0x2000, srcs=(0,)),
        ],
        name="tiny",
    )


@pytest.fixture
def small_workload_params() -> WorkloadParameters:
    """A small, fast, cache-friendly workload description."""
    return WorkloadParameters(
        name="unit_test_workload",
        load_fraction=0.3,
        store_fraction=0.1,
        branch_fraction=0.1,
        regions=(
            MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.8, pattern="stream"),
            MemoryRegion(name="far", size_bytes=8 * 1024 * 1024, weight=0.05, pattern="random", is_far=True),
            MemoryRegion(name="warm", size_bytes=256 * 1024, weight=0.15, pattern="random"),
        ),
        chased_load_fraction=0.05,
        branch_mispredict_rate=0.02,
        seed=99,
    )


@pytest.fixture
def small_trace(small_workload_params: WorkloadParameters) -> Trace:
    """A 2000-instruction synthetic trace (fast enough for every unit test)."""
    return SyntheticWorkload(small_workload_params, seed=1).generate(2000)

"""Shared fixtures for the test suite.

Besides the model-level fixtures (stats registry, hierarchy, hand-built and
generated traces), this module provides the temporary result cache and the
canned recorded-trace archive, and registers the ``--regen-golden`` option
the golden-numerics tests use (see ``test_golden.py``).  Plain importable
helpers (repo paths, campaign constants, ``run_cli``, ``one_member_suite``)
live in ``tests/_helpers.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from _helpers import TEST_SEED

from repro.common.stats import StatsRegistry
from repro.exp.cache import ResultCache
from repro.isa.instruction import branch, int_alu, load, store
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.base import MemoryRegion, SyntheticWorkload, WorkloadParameters


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-numerics snapshots in tests/golden/ instead of "
        "comparing against them",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should regenerate the golden snapshots."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def result_cache(tmp_path: Path) -> ResultCache:
    """A fresh on-disk result cache under the test's temporary directory."""
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def stats() -> StatsRegistry:
    """A fresh statistics registry."""
    return StatsRegistry()


@pytest.fixture
def hierarchy(stats: StatsRegistry) -> MemoryHierarchy:
    """A default (Table 1) memory hierarchy."""
    return MemoryHierarchy(stats=stats)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built six-instruction trace exercising loads, stores and branches."""
    return Trace(
        [
            int_alu(0, dest=1),
            store(1, address=0x1000, srcs=(1,)),
            load(2, dest=2, address=0x1000, srcs=(0,)),
            int_alu(3, dest=3, srcs=(2,)),
            branch(4, srcs=(3,)),
            load(5, dest=4, address=0x2000, srcs=(0,)),
        ],
        name="tiny",
    )


@pytest.fixture
def small_workload_params() -> WorkloadParameters:
    """A small, fast, cache-friendly workload description."""
    return WorkloadParameters(
        name="unit_test_workload",
        load_fraction=0.3,
        store_fraction=0.1,
        branch_fraction=0.1,
        regions=(
            MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.8, pattern="stream"),
            MemoryRegion(name="far", size_bytes=8 * 1024 * 1024, weight=0.05, pattern="random", is_far=True),
            MemoryRegion(name="warm", size_bytes=256 * 1024, weight=0.15, pattern="random"),
        ),
        chased_load_fraction=0.05,
        branch_mispredict_rate=0.02,
        seed=99,
    )


@pytest.fixture
def small_trace(small_workload_params: WorkloadParameters) -> Trace:
    """A 2000-instruction synthetic trace (fast enough for every unit test)."""
    return SyntheticWorkload(small_workload_params, seed=1).generate(2000)


@pytest.fixture
def canned_trace_file(tmp_path: Path, small_workload_params: WorkloadParameters) -> Path:
    """A recorded binary trace of the small workload; returns its path."""
    from repro.trace import record_trace

    path = tmp_path / "canned.rtrace"
    record_trace(small_workload_params, 1500, path, seed=TEST_SEED)
    return path

"""Table 2: accesses to the LSQ components per configuration.

Paper expectation: the HL-SQ and the ERT are the most heavily accessed
structures; the LL queues see far fewer accesses (spread over the epochs);
SVW configurations stop accessing the load queues but pay SSBF lookups;
restricted SAC reduces ERT accesses and network round trips relative to the
full model / SVW.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import table2_access_counts
from repro.sim.tables import format_table2


def test_table2_access_counts(benchmark, context):
    rows = run_once(benchmark, table2_access_counts, context)
    print()
    print(format_table2(rows))

    def row(config, suite):
        for candidate in rows:
            if candidate.config_name == config and candidate.suite_label == suite:
                return candidate
        raise AssertionError(f"missing row {config} / {suite}")

    for suite in ("SPEC FP", "SPEC INT"):
        ooo = row("OoO-64", suite)
        elsq = row("FMC-Hash", suite)
        svw = row("FMC-Hash-SVW", suite)
        rsac = row("FMC-Hash-RSAC", suite)

        # The baseline never touches low-locality structures.
        assert ooo.accesses_millions["LL-LQ"] == 0
        assert ooo.accesses_millions["LL-SQ"] == 0
        assert ooo.accesses_millions["ERT"] == 0
        assert ooo.speedup == 1.0

        # On the ELSQ the HL-SQ dominates and the LL queues see fewer accesses.
        assert elsq.accesses_millions["HL-SQ"] > elsq.accesses_millions["LL-SQ"]
        assert elsq.accesses_millions["HL-SQ"] > elsq.accesses_millions["LL-LQ"]
        assert elsq.accesses_millions["ERT"] > 0

        # SVW removes load-queue searches and adds SSBF lookups.
        assert svw.accesses_millions["HL-LQ"] == 0
        assert svw.accesses_millions["SSBF"] > 0

        # Restricted SAC does not add ERT traffic versus the SVW configuration
        # (both remove the store-side Load-ERT lookups; small timing-induced
        # differences in load counts are tolerated).
        assert rsac.accesses_millions["ERT"] <= svw.accesses_millions["ERT"] * 1.05

        # ... and it needs no more network round trips than SVW.
        assert rsac.accesses_millions["RoundTrips"] <= svw.accesses_millions["RoundTrips"] * 1.05

        # Large-window configurations are at least as fast as the baseline.
        assert elsq.speedup >= 0.95

"""Figure 8b/c: line-based versus hash-based ERT under varying L1 geometry.

Paper expectation: the line-based ERT (which must lock lines in the L1) loses
performance at low associativity and recovers by 4-way; the hash-based ERT is
insensitive to the cache geometry; SPEC INT is more sensitive than SPEC FP.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig8bc_cache_sensitivity
from repro.sim.tables import format_fig8bc


def test_fig8bc_cache_sensitivity(benchmark, context):
    points = run_once(benchmark, fig8bc_cache_sensitivity, context, l1_sizes_kb=(32,))
    print()
    print(format_fig8bc(points))

    def perf(suite, ert_substring, associativity):
        for point in points:
            if (
                point.suite_label == suite
                and ert_substring in point.ert_label
                and point.associativity == associativity
            ):
                return point.relative_performance
        raise AssertionError("missing point")

    for suite in ("SPEC FP", "SPEC INT"):
        # 4-way recovers (or exceeds) the direct-mapped line-based performance.
        assert perf(suite, "CacheLine", 4) >= perf(suite, "CacheLine", 1) - 0.02
        # Every configuration stays within sane bounds of the best.
        for point in points:
            assert 0.5 <= point.relative_performance <= 1.0 + 1e-9

"""Section 5.2: per-epoch load/store-queue sizing.

Paper expectation: 64 load / 32 store entries per epoch stay within ~1% of an
unlimited per-epoch LSQ (the paper accepts a 0.9% average slowdown).
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import sec52_epoch_sizing
from repro.sim.tables import format_sec52


def test_sec52_epoch_sizing(benchmark, context):
    points = run_once(benchmark, sec52_epoch_sizing, context)
    print()
    print(format_sec52(points))

    by_sizing = {(point.load_entries, point.store_entries): point for point in points}
    paper_sizing = by_sizing[(64, 32)]
    # The paper's chosen sizing is within a few percent of unlimited.
    assert paper_sizing.slowdown_vs_unlimited < 0.05
    # Monotonicity: smaller queues never beat the unlimited reference by much.
    unlimited_ipc = points[-1].mean_ipc
    for point in points:
        assert point.mean_ipc <= unlimited_ipc * 1.02

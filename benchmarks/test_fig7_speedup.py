"""Figure 7: speed-up of the large-window LSQ schemes over the OoO-64 baseline.

Paper expectation: SPEC FP speed-ups around 2.1x and SPEC INT around
1.1-1.2x; the Store Queue Mirror adds ~1% on FP and visibly more on INT; the
ELSQ with SQM matches or beats the idealised central LSQ.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig7_speedups
from repro.sim.tables import format_fig7


def test_fig7_speedups(benchmark, context):
    rows, baseline_ipc = run_once(benchmark, fig7_speedups, context)
    print()
    print(format_fig7(rows, baseline_ipc))

    by_name = {row.machine_name: row for row in rows}
    hash_sqm = by_name["ELSQ Hash ERT + SQM"]
    hash_plain = by_name["ELSQ Hash ERT"]
    central = by_name["Central LSQ"]

    # Large-window machines clearly beat the 64-entry ROB on FP and the FP
    # gain is much larger than the INT gain.
    assert hash_sqm.speedup_by_suite["SPEC FP"] > 1.5
    assert hash_sqm.speedup_by_suite["SPEC INT"] > 0.95
    assert hash_sqm.speedup_by_suite["SPEC FP"] > hash_sqm.speedup_by_suite["SPEC INT"]

    # The SQM never hurts, and the ELSQ with SQM is at least competitive with
    # the idealised central queue.
    for suite in ("SPEC FP", "SPEC INT"):
        assert hash_sqm.speedup_by_suite[suite] >= hash_plain.speedup_by_suite[suite] - 0.02
        assert hash_sqm.speedup_by_suite[suite] >= central.speedup_by_suite[suite] - 0.05

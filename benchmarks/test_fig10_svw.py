"""Figure 10: Store Vulnerability Window re-execution on small and large windows.

Paper expectation: the large window re-executes far more loads per committed
instruction than the 64-entry ROB; fewer SSBF index bits mean more
re-executions; the Blind variant re-executes at least as much as CheckStores.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig10_svw_reexecution
from repro.sim.tables import format_fig10


def test_fig10_svw_reexecution(benchmark, context):
    points = run_once(benchmark, fig10_svw_reexecution, context)
    print()
    print(format_fig10(points))

    def mean_reexec(machine, variant, bits):
        values = [
            point.reexecutions_per_100m
            for point in points
            if point.machine_label == machine and point.variant == variant and point.ssbf_bits == bits
        ]
        return sum(values) / len(values)

    def mean_rel_ipc(machine, variant, bits):
        values = [
            point.relative_ipc
            for point in points
            if point.machine_label == machine and point.variant == variant and point.ssbf_bits == bits
        ]
        return sum(values) / len(values)

    # The large window re-executes more than the small window (same filter).
    assert mean_reexec("FMC", "Blind", 10) > mean_reexec("OoO-64", "Blind", 10)

    # Fewer index bits -> more aliasing -> more re-executions.
    assert mean_reexec("FMC", "Blind", 8) >= mean_reexec("FMC", "Blind", 12)

    # The no-unresolved-store filter only ever removes re-executions.
    for bits in (8, 10, 12):
        assert mean_reexec("FMC", "CheckStores", bits) <= mean_reexec("FMC", "Blind", bits) + 1.0

    # Re-execution costs IPC but never more than ~15% in this campaign.
    for machine in ("OoO-64", "FMC"):
        for bits in (8, 10, 12):
            assert mean_rel_ipc(machine, "Blind", bits) > 0.85
            assert mean_rel_ipc(machine, "CheckStores", bits) <= 1.02

"""Figure 11: time spent in high-locality mode versus L2 capacity.

Paper expectation: even with a 1 MB L2 the Memory Processor is idle for a
substantial fraction of the cycles, and the idle (high-locality) fraction
grows as the L2 grows to 8 MB.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig11_high_locality_mode
from repro.sim.tables import format_fig11


def test_fig11_high_locality_mode(benchmark, context):
    points = run_once(benchmark, fig11_high_locality_mode, context)
    print()
    print(format_fig11(points))

    by_l2 = {point.l2_mb: point for point in points}
    for suite in ("SPEC FP", "SPEC INT"):
        small = by_l2[1].inactivity_by_suite[suite]
        large = by_l2[8].inactivity_by_suite[suite]
        # The LL-LSQ is idle for a visible fraction of cycles even at 1 MB...
        assert small > 0.02
        # ... and a larger L2 does not dramatically reduce the idle time (the
        # quick FP campaign's far regions exceed even an 8 MB L2, so its curve
        # is close to flat; the INT curve carries the upward trend).
        assert large >= small - 0.10
    # Averaged over both suites the trend is strictly upward from 1 MB to 8 MB.
    mean_small = sum(by_l2[1].inactivity_by_suite.values()) / 2
    mean_large = sum(by_l2[8].inactivity_by_suite.values()) / 2
    assert mean_large > mean_small

"""Figure 9: restricted disambiguation models relative to full disambiguation.

Paper expectation: restricted SAC costs at most a couple of percent (its
slowdown concentrates in equake-like pointer-dereferencing stores), restricted
LAC costs more than restricted SAC, and restricting both is close to
restricted LAC.
"""

from __future__ import annotations

from conftest import run_once

from repro.common.config import DisambiguationModel
from repro.sim.experiments import fig9_restricted_models
from repro.sim.tables import format_fig9


def test_fig9_restricted_models(benchmark, context):
    points = run_once(benchmark, fig9_restricted_models, context)
    print()
    print(format_fig9(points))

    by_model = {point.model: point for point in points}
    full = by_model[DisambiguationModel.FULL]
    rsac = by_model[DisambiguationModel.RESTRICTED_SAC]
    rlac = by_model[DisambiguationModel.RESTRICTED_LAC]
    both = by_model[DisambiguationModel.RESTRICTED_SAC_LAC]

    for suite in ("SPEC FP", "SPEC INT"):
        assert full.relative_by_suite[suite] == 1.0
        # Every restricted model is at best a wash (small timing noise aside),
        # never a meaningful gain.
        assert rsac.relative_by_suite[suite] <= 1.05
        assert rlac.relative_by_suite[suite] <= 1.05
        # Restricted LAC hurts at least as much as restricted SAC (loads have
        # far more miss-dependent address calculations than stores).
        assert rlac.relative_by_suite[suite] <= rsac.relative_by_suite[suite] + 0.01
        # Restricting both tracks restricted LAC.
        assert abs(both.relative_by_suite[suite] - rlac.relative_by_suite[suite]) < 0.08
        # Nothing collapses: all models stay within ~15% of full.
        assert both.relative_by_suite[suite] > 0.80

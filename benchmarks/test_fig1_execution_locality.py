"""Figure 1: decode→address-calculation distance distribution.

Paper expectation: ~91% of loads and ~93% of stores compute their address
within 30 cycles of decode; loads have a heavier low-locality tail than
stores.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig1_execution_locality
from repro.sim.tables import format_fig1


def test_fig1_execution_locality(benchmark, context):
    distributions = run_once(benchmark, fig1_execution_locality, context)
    print()
    print(format_fig1(distributions))

    for label, distribution in distributions.items():
        # The overwhelming majority of address calculations is high locality.
        assert distribution.load_fraction_within_bin > 0.75, label
        assert distribution.store_fraction_within_bin > 0.75, label
        # Loads have at least as heavy a low-locality tail as stores.
        assert (
            distribution.load_fraction_within_bin <= distribution.store_fraction_within_bin + 0.05
        ), label

"""Section 6: energy comparison (ERT vs L1 reads, RSAC vs SVW).

Paper expectation: one ERT read costs about 2% of an L1 read; restricted SAC
performs no more ERT accesses, round trips or cache accesses than the SVW
configuration, which is the core of the paper's final recommendation.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import sec6_energy_comparison


def test_sec6_energy_comparison(benchmark, context):
    comparison = run_once(benchmark, sec6_energy_comparison, context)
    print()
    print("Section 6: energy comparison")
    print(f"  ERT read energy / L1 read energy: {comparison.ert_vs_l1_read_ratio:.3f}")
    for label in comparison.rsac_vs_svw_ert_accesses:
        print(
            "  {}: RSAC/SVW ERT accesses {:.2f}, round trips {:.2f}, cache accesses {:.2f}".format(
                label,
                comparison.rsac_vs_svw_ert_accesses[label],
                comparison.rsac_vs_svw_round_trips[label],
                comparison.rsac_vs_svw_cache_accesses[label],
            )
        )

    # The paper's headline ratio: the ERT read is roughly 2% of an L1 read.
    assert 0.005 < comparison.ert_vs_l1_read_ratio < 0.05

    for label in comparison.rsac_vs_svw_ert_accesses:
        # RSAC never increases cache pressure relative to SVW, and it avoids
        # the re-execution cache accesses, so the ratio stays at or below ~1.
        assert comparison.rsac_vs_svw_cache_accesses[label] <= 1.05
        # ERT accesses with RSAC are no higher than with SVW.
        assert comparison.rsac_vs_svw_ert_accesses[label] <= 1.10

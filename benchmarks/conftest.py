"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper on a reduced
campaign (two workloads per suite, short traces) so the whole harness runs in
minutes on a laptop.  The experiment context is session-scoped so all
benchmarks replay the exact same traces; use
``python -m pytest benchmarks --benchmark-only -s`` to see the regenerated
tables/figures inline.

All simulations go through the orchestration layer
(:class:`repro.exp.ExperimentRunner`).  Two environment variables tune it:

* ``REPRO_BENCH_JOBS`` -- worker processes for the sweeps (default 1,
  i.e. in-process; note that parallel timings measure the pool too).
* ``REPRO_BENCH_CACHE`` -- result cache directory.  Unset by default so the
  benchmarks always measure real simulation time, never cache reads.
"""

from __future__ import annotations

import os

import pytest

from repro.exp import ExperimentRunner, ResultCache
from repro.sim.experiments import ExperimentContext
from repro.workloads.suite import quick_fp_suite, quick_int_suite

#: Trace length per workload used by the benchmark campaign.
BENCH_INSTRUCTIONS = 8_000

#: RNG seed of the benchmark campaign.
BENCH_SEED = 2008


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The shared reduced experiment campaign, routed through the runner."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    runner = ExperimentRunner(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache=ResultCache(cache_dir) if cache_dir else None,
    )
    return ExperimentContext(
        fp_suite=quick_fp_suite(),
        int_suite=quick_int_suite(),
        instructions_per_workload=BENCH_INSTRUCTIONS,
        seed=BENCH_SEED,
        runner=runner,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

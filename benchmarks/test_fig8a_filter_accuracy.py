"""Figure 8a: ERT false positives versus filter size.

Paper expectation: false positives drop steeply with more hash bits; an ERT
of at least 4 KB (10 bits) keeps useless global searches below roughly one
per hundred instructions; the line-based table achieves comparable accuracy.
"""

from __future__ import annotations

from conftest import run_once

from repro.sim.experiments import fig8a_filter_accuracy
from repro.sim.tables import format_fig8a


def test_fig8a_filter_accuracy(benchmark, context):
    points = run_once(benchmark, fig8a_filter_accuracy, context)
    print()
    print(format_fig8a(points))

    by_label = {point.label: point for point in points}
    few_bits = by_label["6 bits"]
    paper_bits = by_label["10 bits"]
    many_bits = by_label["16 bits"]

    for suite in ("SPEC FP", "SPEC INT"):
        # Monotone improvement with filter size.
        assert few_bits.false_positives_per_100m[suite] >= paper_bits.false_positives_per_100m[suite]
        assert paper_bits.false_positives_per_100m[suite] >= many_bits.false_positives_per_100m[suite]
        # The paper's 10-bit (4 KB) point keeps false searches below ~1 per
        # 100 instructions = 1M per 100M instructions.
        assert paper_bits.false_positives_per_100m[suite] < 1_500_000

    # Storage bookkeeping matches the paper's sizing: 10 bits -> 4 KB total.
    assert by_label["10 bits"].storage_bytes == 4 * 1024

"""Synthetic workload families beyond the SPEC-like suites.

The paper evaluates the two-level LSQ only on SPEC-CPU-2000-like mixes.  The
families here are *stress axes*: each one isolates a single behaviour the
FMC's mechanisms respond to, so sensitivity sweeps (epoch count, locality
threshold) produce interpretable curves instead of averages over mixed
effects.

* **pointer_chase** -- dependent-miss chains (``p = p->next`` over
  multi-megabyte pools).  Serialised misses, minimal memory-level
  parallelism: the hardest case for the Memory Processor, which spends most
  of its time waiting on one outstanding miss whose result feeds the next
  address.
* **streaming** -- independent unit-stride misses over large arrays (high
  MLP, SPEC-FP-like but purer).  Epochs fill quickly with low-locality
  loads that never depend on each other, so epoch turnover and per-epoch
  LSQ capacity dominate.
* **branchy** -- irregular control flow with frequent, often miss-dependent
  mispredictions.  Stresses wrong-path activity and epoch recycling after
  squashes; the family analogue of what limits SPEC INT speedups.
* **phased** -- long alternating memory-bound / compute-bound regions.
  Exercises the locality predictor's mode switches, epoch open/close at
  phase boundaries, and the migration stalls paid when a burst of
  low-locality work exhausts the epoch pool.

Every family is a :class:`~repro.workloads.suite.WorkloadSuite` of two
calibrated members (a moderate and an extreme variant) and is registered in
the suite registry (``suite_by_name("pointer_chase")`` ...) next to the
SPEC-like suites, so the whole experiment/CLI/service stack can address it.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import WorkloadError
from repro.workloads.base import MemoryRegion, WorkloadParameters
from repro.workloads.suite import WorkloadSuite

_KB = 1024
_MB = 1024 * 1024


# ----------------------------------------------------------------------
# pointer_chase: dependent-miss chains
# ----------------------------------------------------------------------


def list_walk() -> WorkloadParameters:
    """Linked-list traversal: nearly every far load feeds the next address."""
    return WorkloadParameters(
        name="list_walk",
        load_fraction=0.34,
        store_fraction=0.06,
        branch_fraction=0.12,
        regions=(
            MemoryRegion(name="pool", size_bytes=32 * _MB, weight=0.030, pattern="random", is_far=True),
            MemoryRegion(name="stack", size_bytes=32 * _KB, weight=0.60, pattern="stream"),
            MemoryRegion(name="locals", size_bytes=256 * _KB, weight=0.37, pattern="random"),
        ),
        chased_load_fraction=0.55,
        chased_store_fraction=0.02,
        forwarding_fraction=0.06,
        forwarding_distance_mean=10.0,
        miss_consumer_fraction=0.30,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.03,
        mispredict_depends_on_miss_fraction=0.35,
        phase_length=0,
        seed=41,
    )


def tree_search() -> WorkloadParameters:
    """Pointer-structure search: chased loads over two far pools plus a hot index."""
    return WorkloadParameters(
        name="tree_search",
        load_fraction=0.30,
        store_fraction=0.08,
        branch_fraction=0.18,
        regions=(
            MemoryRegion(name="inner_nodes", size_bytes=8 * _MB, weight=0.022, pattern="random", is_far=True),
            MemoryRegion(name="leaves", size_bytes=24 * _MB, weight=0.014, pattern="random", is_far=True),
            MemoryRegion(name="index", size_bytes=48 * _KB, weight=0.56, pattern="random"),
            MemoryRegion(name="stack", size_bytes=32 * _KB, weight=0.404, pattern="stream"),
        ),
        chased_load_fraction=0.38,
        chased_store_fraction=0.02,
        forwarding_fraction=0.08,
        forwarding_distance_mean=8.0,
        miss_consumer_fraction=0.22,
        dependence_distance_mean=5.0,
        branch_mispredict_rate=0.045,
        mispredict_depends_on_miss_fraction=0.45,
        phase_length=0,
        seed=42,
    )


# ----------------------------------------------------------------------
# streaming: independent high-MLP misses
# ----------------------------------------------------------------------


def stream_copy() -> WorkloadParameters:
    """STREAM-style copy: unit-stride walks over arrays far larger than L2."""
    return WorkloadParameters(
        name="stream_copy",
        load_fraction=0.30,
        store_fraction=0.15,
        branch_fraction=0.06,
        fp_fraction=0.45,
        regions=(
            MemoryRegion(name="src", size_bytes=48 * _MB, weight=0.040, pattern="stream", is_far=True),
            MemoryRegion(name="dst", size_bytes=48 * _MB, weight=0.025, pattern="stream", is_far=True),
            MemoryRegion(name="scalars", size_bytes=8 * _KB, weight=0.935, pattern="stream"),
        ),
        chased_load_fraction=0.0,
        chased_store_fraction=0.0,
        forwarding_fraction=0.03,
        forwarding_distance_mean=20.0,
        miss_consumer_fraction=0.04,
        dependence_distance_mean=10.0,
        branch_mispredict_rate=0.005,
        mispredict_depends_on_miss_fraction=0.0,
        phase_length=0,
        seed=43,
    )


def gather_scan() -> WorkloadParameters:
    """Strided gather: independent random misses (prefetch-hostile, still high MLP)."""
    return WorkloadParameters(
        name="gather_scan",
        load_fraction=0.36,
        store_fraction=0.08,
        branch_fraction=0.08,
        fp_fraction=0.30,
        regions=(
            MemoryRegion(name="table", size_bytes=64 * _MB, weight=0.050, pattern="random", is_far=True),
            MemoryRegion(name="indices", size_bytes=2 * _MB, weight=0.020, pattern="stream", is_far=True),
            MemoryRegion(name="accum", size_bytes=16 * _KB, weight=0.93, pattern="stream"),
        ),
        chased_load_fraction=0.0,
        chased_store_fraction=0.0,
        forwarding_fraction=0.04,
        forwarding_distance_mean=16.0,
        miss_consumer_fraction=0.06,
        dependence_distance_mean=9.0,
        branch_mispredict_rate=0.01,
        mispredict_depends_on_miss_fraction=0.05,
        phase_length=0,
        seed=44,
    )


# ----------------------------------------------------------------------
# branchy: irregular control flow, wrong-path stress
# ----------------------------------------------------------------------


def interpreter_loop() -> WorkloadParameters:
    """Bytecode-interpreter-like dispatch: dense, poorly predicted branches."""
    return WorkloadParameters(
        name="interpreter_loop",
        load_fraction=0.26,
        store_fraction=0.10,
        branch_fraction=0.28,
        regions=(
            MemoryRegion(name="bytecode", size_bytes=4 * _MB, weight=0.018, pattern="random", is_far=True),
            MemoryRegion(name="dispatch", size_bytes=32 * _KB, weight=0.50, pattern="random"),
            MemoryRegion(name="operand_stack", size_bytes=24 * _KB, weight=0.482, pattern="stream"),
        ),
        chased_load_fraction=0.10,
        chased_store_fraction=0.01,
        forwarding_fraction=0.18,
        forwarding_distance_mean=5.0,
        miss_consumer_fraction=0.12,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.09,
        mispredict_depends_on_miss_fraction=0.40,
        phase_length=0,
        seed=45,
    )


def branchy_filter() -> WorkloadParameters:
    """Data-dependent filtering: mispredictions gated by missing loads."""
    return WorkloadParameters(
        name="branchy_filter",
        load_fraction=0.28,
        store_fraction=0.08,
        branch_fraction=0.24,
        regions=(
            MemoryRegion(name="records", size_bytes=16 * _MB, weight=0.025, pattern="stream", is_far=True),
            MemoryRegion(name="predicates", size_bytes=64 * _KB, weight=0.45, pattern="random"),
            MemoryRegion(name="output", size_bytes=128 * _KB, weight=0.525, pattern="stream"),
        ),
        chased_load_fraction=0.05,
        chased_store_fraction=0.01,
        forwarding_fraction=0.10,
        forwarding_distance_mean=7.0,
        miss_consumer_fraction=0.15,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.07,
        mispredict_depends_on_miss_fraction=0.60,
        phase_length=0,
        seed=46,
    )


# ----------------------------------------------------------------------
# phased: alternating memory/compute regions
# ----------------------------------------------------------------------


def burst_compute() -> WorkloadParameters:
    """Short memory bursts between long compute regions (epoch open/close churn)."""
    return WorkloadParameters(
        name="burst_compute",
        load_fraction=0.28,
        store_fraction=0.10,
        branch_fraction=0.12,
        fp_fraction=0.25,
        regions=(
            MemoryRegion(name="dataset", size_bytes=32 * _MB, weight=0.045, pattern="stream", is_far=True),
            MemoryRegion(name="tiles", size_bytes=24 * _KB, weight=0.70, pattern="stream"),
            MemoryRegion(name="workspace", size_bytes=256 * _KB, weight=0.255, pattern="random"),
        ),
        chased_load_fraction=0.02,
        chased_store_fraction=0.0,
        forwarding_fraction=0.08,
        forwarding_distance_mean=10.0,
        miss_consumer_fraction=0.10,
        dependence_distance_mean=6.0,
        branch_mispredict_rate=0.02,
        mispredict_depends_on_miss_fraction=0.15,
        phase_length=600,
        memory_phase_fraction=0.35,
        seed=47,
    )


def long_phases() -> WorkloadParameters:
    """Long memory-bound phases that saturate the epoch pool, then drain fully."""
    return WorkloadParameters(
        name="long_phases",
        load_fraction=0.32,
        store_fraction=0.10,
        branch_fraction=0.10,
        fp_fraction=0.20,
        regions=(
            MemoryRegion(name="matrix", size_bytes=48 * _MB, weight=0.060, pattern="stream", is_far=True),
            MemoryRegion(name="edges", size_bytes=12 * _MB, weight=0.020, pattern="random", is_far=True),
            MemoryRegion(name="hot", size_bytes=24 * _KB, weight=0.66, pattern="stream"),
            MemoryRegion(name="locals", size_bytes=128 * _KB, weight=0.26, pattern="random"),
        ),
        chased_load_fraction=0.06,
        chased_store_fraction=0.01,
        forwarding_fraction=0.08,
        forwarding_distance_mean=9.0,
        miss_consumer_fraction=0.12,
        dependence_distance_mean=6.0,
        branch_mispredict_rate=0.025,
        mispredict_depends_on_miss_fraction=0.20,
        phase_length=2500,
        memory_phase_fraction=0.50,
        seed=48,
    )


#: Member factories per family, in suite order.
_FAMILY_MEMBERS: Dict[str, Tuple[Callable[[], WorkloadParameters], ...]] = {
    "pointer_chase": (list_walk, tree_search),
    "streaming": (stream_copy, gather_scan),
    "branchy": (interpreter_loop, branchy_filter),
    "phased": (burst_compute, long_phases),
}

#: The family names, in the stable order sweeps iterate them.
FAMILY_NAMES: Tuple[str, ...] = tuple(_FAMILY_MEMBERS)


def family_suite(name: str) -> WorkloadSuite:
    """Return one workload family as a suite."""
    try:
        members = _FAMILY_MEMBERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload family {name!r}; available: {sorted(_FAMILY_MEMBERS)}"
        ) from None
    return WorkloadSuite(name=name, members=tuple(factory() for factory in members))


def family_suites() -> Dict[str, WorkloadSuite]:
    """Return every family suite keyed by family name, in stable order."""
    return {name: family_suite(name) for name in FAMILY_NAMES}

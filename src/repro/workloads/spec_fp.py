"""SPEC-CPU-2000-FP-like synthetic kernels.

Each kernel is a :class:`~repro.workloads.base.WorkloadParameters` preset
loosely modelled on the memory behaviour of one floating-point benchmark of
the suite the paper uses.  The models are *behavioural caricatures*, not
functional reproductions: what matters for the LSQ study is

* large, streaming working sets whose misses are address-independent
  (high memory-level parallelism),
* very few loads or stores whose address depends on a missing load
  (Figure 1: almost all FP address calculations are high-locality),
* a low branch misprediction rate (loop-dominated control flow),
* pronounced phase behaviour (compute phases over cache-resident data
  alternating with memory phases streaming through far arrays), which is what
  lets the Memory Processor drain and idle between miss bursts (Figure 11),
* working sets spread over sizes between a few hundred kilobytes and several
  megabytes so that L2 capacity sweeps change the miss rate.

The parameters were calibrated so that the OoO-64 baseline lands near the
paper's reported SPEC FP IPC (~1.4) and the FMC large-window machine gains
roughly the paper's 2x; see EXPERIMENTS.md for the measured values.

The one deliberate outlier is :func:`equake_like`, which models the
``smvp()`` sparse matrix-vector product the paper singles out in Section 5.5:
both load *and store* addresses are produced by chasing index arrays, which
is why restricted-SAC loses heavily on that benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import WorkloadError
from repro.workloads.base import MemoryRegion, WorkloadParameters

_KB = 1024
_MB = 1024 * 1024


def swim_like() -> WorkloadParameters:
    """Structured-grid stencil: long unit-stride streams over huge arrays."""
    return WorkloadParameters(
        name="swim_like",
        load_fraction=0.30,
        store_fraction=0.10,
        branch_fraction=0.04,
        fp_fraction=0.85,
        regions=(
            MemoryRegion(name="grid_a", size_bytes=12 * _MB, weight=0.020, pattern="stream", is_far=True),
            MemoryRegion(name="grid_b", size_bytes=12 * _MB, weight=0.012, pattern="stream", is_far=True),
            MemoryRegion(name="coeffs", size_bytes=48 * _KB, weight=0.55, pattern="stream"),
            MemoryRegion(name="locals", size_bytes=640 * _KB, weight=0.42, pattern="random"),
        ),
        chased_load_fraction=0.01,
        chased_store_fraction=0.002,
        forwarding_fraction=0.05,
        forwarding_distance_mean=20.0,
        miss_consumer_fraction=0.12,
        dependence_distance_mean=8.0,
        branch_mispredict_rate=0.004,
        mispredict_depends_on_miss_fraction=0.02,
        phase_length=2000,
        memory_phase_fraction=0.40,
        seed=11,
    )


def mgrid_like() -> WorkloadParameters:
    """Multigrid solver: nested streams over grids of several sizes."""
    return WorkloadParameters(
        name="mgrid_like",
        load_fraction=0.34,
        store_fraction=0.08,
        branch_fraction=0.03,
        fp_fraction=0.9,
        regions=(
            MemoryRegion(name="fine_grid", size_bytes=8 * _MB, weight=0.028, pattern="stream", is_far=True),
            MemoryRegion(name="coarse_grid", size_bytes=1 * _MB, weight=0.40, pattern="stream"),
            MemoryRegion(name="stencil", size_bytes=32 * _KB, weight=0.57, pattern="stream"),
        ),
        chased_load_fraction=0.01,
        chased_store_fraction=0.001,
        forwarding_fraction=0.05,
        forwarding_distance_mean=16.0,
        miss_consumer_fraction=0.10,
        dependence_distance_mean=10.0,
        branch_mispredict_rate=0.003,
        mispredict_depends_on_miss_fraction=0.02,
        phase_length=1800,
        memory_phase_fraction=0.40,
        seed=12,
    )


def applu_like() -> WorkloadParameters:
    """Blocked linear-algebra solver: medium working set, some reuse."""
    return WorkloadParameters(
        name="applu_like",
        load_fraction=0.32,
        store_fraction=0.11,
        branch_fraction=0.05,
        fp_fraction=0.85,
        regions=(
            MemoryRegion(name="blocks", size_bytes=3 * _MB, weight=0.05, pattern="stream", is_far=True),
            MemoryRegion(name="workspace", size_bytes=256 * _KB, weight=0.45, pattern="stream"),
            MemoryRegion(name="scalars", size_bytes=16 * _KB, weight=0.50, pattern="random"),
        ),
        chased_load_fraction=0.02,
        chased_store_fraction=0.004,
        forwarding_fraction=0.08,
        forwarding_distance_mean=10.0,
        miss_consumer_fraction=0.10,
        dependence_distance_mean=7.0,
        branch_mispredict_rate=0.008,
        mispredict_depends_on_miss_fraction=0.03,
        phase_length=1500,
        memory_phase_fraction=0.45,
        seed=13,
    )


def equake_like() -> WorkloadParameters:
    """Sparse matrix-vector product (smvp): index-chased loads *and* stores.

    This is the kernel that makes restricted store address calculation (RSAC)
    expensive in the paper: store addresses are obtained by dereferencing
    index arrays, so a visible fraction of store address calculations is
    miss-dependent.
    """
    return WorkloadParameters(
        name="equake_like",
        load_fraction=0.34,
        store_fraction=0.10,
        branch_fraction=0.06,
        fp_fraction=0.75,
        regions=(
            MemoryRegion(name="matrix_values", size_bytes=10 * _MB, weight=0.018, pattern="stream", is_far=True),
            MemoryRegion(name="index_arrays", size_bytes=6 * _MB, weight=0.012, pattern="stream", is_far=True),
            MemoryRegion(name="vector", size_bytes=3 * _MB, weight=0.020, pattern="random", is_far=True),
            MemoryRegion(name="locals", size_bytes=96 * _KB, weight=0.95, pattern="stream"),
        ),
        chased_load_fraction=0.18,
        chased_store_fraction=0.15,
        forwarding_fraction=0.06,
        forwarding_distance_mean=14.0,
        miss_consumer_fraction=0.15,
        dependence_distance_mean=6.0,
        branch_mispredict_rate=0.01,
        mispredict_depends_on_miss_fraction=0.05,
        phase_length=1500,
        memory_phase_fraction=0.5,
        seed=14,
    )


def art_like() -> WorkloadParameters:
    """Neural-network simulation: L2-sized working set scanned repeatedly."""
    return WorkloadParameters(
        name="art_like",
        load_fraction=0.36,
        store_fraction=0.07,
        branch_fraction=0.08,
        fp_fraction=0.8,
        regions=(
            MemoryRegion(name="weights", size_bytes=3500 * _KB, weight=0.06, pattern="stream", is_far=True),
            MemoryRegion(name="activations", size_bytes=256 * _KB, weight=0.40, pattern="stream"),
            MemoryRegion(name="locals", size_bytes=24 * _KB, weight=0.54, pattern="random"),
        ),
        chased_load_fraction=0.02,
        chased_store_fraction=0.002,
        forwarding_fraction=0.05,
        forwarding_distance_mean=18.0,
        miss_consumer_fraction=0.20,
        dependence_distance_mean=9.0,
        branch_mispredict_rate=0.006,
        mispredict_depends_on_miss_fraction=0.02,
        phase_length=2500,
        memory_phase_fraction=0.5,
        seed=15,
    )


def lucas_like() -> WorkloadParameters:
    """FFT-style kernel: strided streams, large footprint, deep FP chains."""
    return WorkloadParameters(
        name="lucas_like",
        load_fraction=0.28,
        store_fraction=0.14,
        branch_fraction=0.03,
        fp_fraction=0.9,
        regions=(
            MemoryRegion(name="signal", size_bytes=16 * _MB, weight=0.022, pattern="stream", stride=64, is_far=True),
            MemoryRegion(name="twiddles", size_bytes=1 * _MB, weight=0.38, pattern="stream"),
            MemoryRegion(name="scratch", size_bytes=128 * _KB, weight=0.60, pattern="stream"),
        ),
        chased_load_fraction=0.01,
        chased_store_fraction=0.001,
        forwarding_fraction=0.10,
        forwarding_distance_mean=8.0,
        miss_consumer_fraction=0.10,
        dependence_distance_mean=12.0,
        branch_mispredict_rate=0.002,
        mispredict_depends_on_miss_fraction=0.01,
        phase_length=2000,
        memory_phase_fraction=0.35,
        seed=16,
    )


#: Registry of the FP-like kernels by short name.
SPEC_FP_KERNELS: Dict[str, Callable[[], WorkloadParameters]] = {
    "swim": swim_like,
    "mgrid": mgrid_like,
    "applu": applu_like,
    "equake": equake_like,
    "art": art_like,
    "lucas": lucas_like,
}


def fp_kernel(name: str) -> WorkloadParameters:
    """Return the FP-like kernel registered under ``name``."""
    try:
        factory = SPEC_FP_KERNELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown FP kernel {name!r}; available: {sorted(SPEC_FP_KERNELS)}"
        ) from None
    return factory()


def fp_kernel_names() -> Tuple[str, ...]:
    """Return the names of all FP-like kernels in a stable order."""
    return tuple(sorted(SPEC_FP_KERNELS))

"""The parameterised synthetic workload generator.

A :class:`SyntheticWorkload` turns a :class:`WorkloadParameters` description
into a :class:`~repro.isa.trace.Trace`.  The generator models a program as a
stream of *dependence-carrying* instructions over a set of memory regions:

* **Regions** (:class:`MemoryRegion`) describe the data footprint.  Each
  region has a size, an access pattern (sequential streaming or random) and a
  relative weight.  Small regions fit in the caches and produce hits; large
  regions produce L2 misses.  Because the cache behaviour is decided by the
  simulated hierarchy -- not by the generator -- the same trace exhibits
  different miss rates under different cache configurations, which is what
  Figures 8b/c and 11 require.

* **Pointer chasing** wires the address operand of a load (or, rarely, a
  store) to the destination register of a recent load from a *far* region.
  Under simulation that recent load misses, so the dependent address
  calculation resolves only after the miss returns -- these are exactly the
  paper's *low-locality* memory instructions (Figure 1).

* **Store→load forwarding** makes a load read an address recently written by
  a store, at a configurable instruction distance, reproducing the local
  versus distant forwarding mix the two-level disambiguation exploits.

* **Branches** are mispredicted with a configurable rate, and a configurable
  fraction of the mispredicted branches depends on a far load -- this is the
  mechanism that limits SPEC-INT-like speedups on large windows.

The generator is deliberately *structural*: it encodes dependences and
addresses, never cycle counts.  All timing emerges from the processor models.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, List, Optional, Sequence, Tuple

from repro.common.errors import WorkloadError
from repro.common.rng import DeterministicRng
from repro.isa.columns import (
    CODE_BRANCH,
    CODE_FP_ALU,
    CODE_INT_ALU,
    CODE_LOAD,
    CODE_STORE,
    FLAG_HAS_ADDRESS,
    FLAG_MISPREDICTED,
    TraceColumns,
)
from repro.isa.instruction import FP_REGISTER_BASE, InstrClass
from repro.isa.trace import RegionFootprint, Trace

#: Environment knob forcing eager materialisation of the instruction-object
#: list after generation.  The generator always *emits* columns; with this
#: set (any value but ``"" ``/``"0"``) it additionally pays the per-object
#: construction cost up front, restoring the pre-columnar generation profile
#: for comparison (the CI ``bench-profile`` step uses it) and serving as a
#: safety hatch for object-API-heavy callers.
TRACE_OBJECTS_ENV = "REPRO_TRACE_OBJECTS"


def _pad4(srcs: Tuple[int, ...]) -> Tuple[int, int, int, int]:
    """Pad a source tuple (at most four registers) to the fixed column width."""
    count = len(srcs)
    if count == 0:
        return (-1, -1, -1, -1)
    if count == 1:
        return (srcs[0], -1, -1, -1)
    if count == 2:
        return (srcs[0], srcs[1], -1, -1)
    if count == 3:
        return (srcs[0], srcs[1], srcs[2], -1)
    return (srcs[0], srcs[1], srcs[2], srcs[3])

#: Integer registers reserved as always-available base registers (stack/global
#: pointers).  They are written once at the start of a trace and then only
#: read, so address calculations using them are always high-locality.
_NUM_BASE_REGISTERS = 8

#: General-purpose integer destination registers available for renaming-style
#: round-robin allocation by the generator.
_INT_DEST_REGISTERS = tuple(range(_NUM_BASE_REGISTERS, 56))

#: Registers reserved for the results of far-region (and pointer-chased)
#: loads.  Only such loads write them, so a later chased load or
#: miss-dependent branch that reads one genuinely depends on the missing load
#: -- the ``p = p->next`` pattern -- instead of on whatever instruction last
#: recycled an ordinary destination register.
_POINTER_REGISTERS = tuple(range(56, 64))

#: Floating point destination registers.
_FP_DEST_REGISTERS = tuple(range(FP_REGISTER_BASE, FP_REGISTER_BASE + 48))

#: Base registers (always ready).
_BASE_REGISTERS = tuple(range(_NUM_BASE_REGISTERS))


@dataclass(frozen=True)
class MemoryRegion:
    """One region of the synthetic program's data footprint.

    Attributes
    ----------
    name:
        Identifier used in diagnostics.
    size_bytes:
        Region capacity.  Regions larger than the simulated L2 produce
        recurring misses; regions smaller than L1 quickly become resident.
    weight:
        Relative probability that a memory access targets this region.
    pattern:
        ``"stream"`` walks the region sequentially (spatial locality,
        prefetch-friendly, independent misses -- typical of SPEC FP);
        ``"random"`` picks uniformly random addresses (pointer-structure-like,
        typical of SPEC INT).
    stride:
        Byte stride between consecutive accesses for the ``"stream"`` pattern.
    is_far:
        Marks the region as part of the *far* working set: loads from it are
        candidate producers for pointer-chased (low-locality) address
        calculations.
    """

    name: str
    size_bytes: int
    weight: float
    pattern: str = "stream"
    stride: int = 8
    is_far: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError(f"region {self.name!r}: size must be positive")
        if self.weight < 0:
            raise WorkloadError(f"region {self.name!r}: weight must be non-negative")
        if self.pattern not in ("stream", "random"):
            raise WorkloadError(
                f"region {self.name!r}: pattern must be 'stream' or 'random', got {self.pattern!r}"
            )
        if self.stride <= 0:
            raise WorkloadError(f"region {self.name!r}: stride must be positive")


@dataclass(frozen=True)
class WorkloadParameters:
    """Statistical description of a synthetic workload.

    The defaults produce a bland, cache-friendly integer workload; the named
    kernels in :mod:`repro.workloads.spec_fp` and
    :mod:`repro.workloads.spec_int` override them.
    """

    name: str = "synthetic"
    #: Instruction mix.  The remaining fraction is integer ALU work.
    load_fraction: float = 0.25
    store_fraction: float = 0.12
    branch_fraction: float = 0.12
    fp_fraction: float = 0.0
    #: Memory regions making up the data footprint.
    regions: Tuple[MemoryRegion, ...] = (
        MemoryRegion(name="hot", size_bytes=16 * 1024, weight=0.7, pattern="stream"),
        MemoryRegion(name="warm", size_bytes=512 * 1024, weight=0.3, pattern="random"),
    )
    #: Probability that a load's address depends on the result of a recent far
    #: load (pointer chasing): produces low-locality load address calculations.
    chased_load_fraction: float = 0.0
    #: Probability that a store's address depends on the result of a recent far
    #: load: produces low-locality store address calculations (rare; high for
    #: equake-like sparse codes).
    chased_store_fraction: float = 0.0
    #: Probability that a load reads an address recently written by a store.
    forwarding_fraction: float = 0.08
    #: Mean instruction distance between a forwarding store→load pair.
    forwarding_distance_mean: float = 12.0
    #: Maximum forwarding distance considered.
    forwarding_distance_max: int = 512
    #: Probability that the data consumed by a non-memory instruction comes
    #: from a register produced by a far (likely missing) load.
    miss_consumer_fraction: float = 0.05
    #: Mean register dependence distance for ALU operands.
    dependence_distance_mean: float = 6.0
    #: Branch misprediction rate.
    branch_mispredict_rate: float = 0.02
    #: Fraction of mispredicted branches whose condition depends on a far load.
    mispredict_depends_on_miss_fraction: float = 0.1
    #: Memory access size distribution: (size_bytes, weight) pairs.
    access_sizes: Tuple[Tuple[int, float], ...] = ((8, 0.7), (4, 0.3))
    #: Phase behaviour: real programs alternate between compute phases (cache
    #: resident) and memory phases (streaming/chasing through far regions).
    #: ``phase_length`` is the number of instructions per phase block; when it
    #: is zero the workload is phase-less and far regions are accessed
    #: uniformly.  ``memory_phase_fraction`` is the fraction of blocks that
    #: are memory phases (far regions enabled).
    phase_length: int = 0
    memory_phase_fraction: float = 0.5
    #: Base RNG seed; combined with the generator seed argument.
    seed: int = 2008

    def __post_init__(self) -> None:
        fractions = {
            "load_fraction": self.load_fraction,
            "store_fraction": self.store_fraction,
            "branch_fraction": self.branch_fraction,
            "fp_fraction": self.fp_fraction,
            "chased_load_fraction": self.chased_load_fraction,
            "chased_store_fraction": self.chased_store_fraction,
            "forwarding_fraction": self.forwarding_fraction,
            "miss_consumer_fraction": self.miss_consumer_fraction,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "mispredict_depends_on_miss_fraction": self.mispredict_depends_on_miss_fraction,
        }
        for field_name, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name!r}: {field_name} must lie in [0, 1], got {value}")
        if self.load_fraction + self.store_fraction + self.branch_fraction > 1.0:
            raise WorkloadError(
                f"{self.name!r}: load+store+branch fractions exceed 1.0"
            )
        if not self.regions:
            raise WorkloadError(f"{self.name!r}: at least one memory region is required")
        if sum(region.weight for region in self.regions) <= 0:
            raise WorkloadError(f"{self.name!r}: region weights must not all be zero")
        if self.forwarding_distance_mean <= 0:
            raise WorkloadError(f"{self.name!r}: forwarding_distance_mean must be positive")
        if self.forwarding_distance_max < 1:
            raise WorkloadError(f"{self.name!r}: forwarding_distance_max must be >= 1")
        if self.dependence_distance_mean <= 0:
            raise WorkloadError(f"{self.name!r}: dependence_distance_mean must be positive")
        if self.phase_length < 0:
            raise WorkloadError(f"{self.name!r}: phase_length must be non-negative")
        if not 0.0 <= self.memory_phase_fraction <= 1.0:
            raise WorkloadError(
                f"{self.name!r}: memory_phase_fraction must lie in [0, 1]"
            )
        if not self.access_sizes:
            raise WorkloadError(f"{self.name!r}: access_sizes must not be empty")
        for size, weight in self.access_sizes:
            if size <= 0 or size & (size - 1) != 0:
                raise WorkloadError(f"{self.name!r}: access size {size} must be a power of two")
            if weight < 0:
                raise WorkloadError(f"{self.name!r}: access size weights must be non-negative")

    def with_name(self, name: str) -> "WorkloadParameters":
        """Return a copy of these parameters under a different name."""
        return replace(self, name=name)


@dataclass
class _RegisterRecord:
    """Bookkeeping for a recently written register."""

    register: int
    seq: int
    from_far_load: bool


@dataclass
class _StoreRecord:
    """Bookkeeping for a recently generated store (forwarding candidates)."""

    seq: int
    address: int
    size: int


class _RegionCursor:
    """Mutable per-region address cursor used during generation."""

    def __init__(self, region: MemoryRegion, base_address: int, rng: DeterministicRng) -> None:
        self.region = region
        self.base_address = base_address
        self._offset = 0
        self._rng = rng

    def next_address(self) -> int:
        """Return the next address according to the region's access pattern."""
        if self.region.pattern == "stream":
            address = self.base_address + self._offset
            self._offset = (self._offset + self.region.stride) % self.region.size_bytes
            return address
        offset = self._rng.integer(0, self.region.size_bytes - 1)
        return self.base_address + (offset & ~0x7)


class SyntheticWorkload:
    """Generates instruction traces from a :class:`WorkloadParameters` description."""

    #: Regions are laid out in a flat address space with this much padding
    #: between them so that sets of different regions rarely alias perfectly.
    _REGION_PADDING = 1 << 20

    def __init__(self, parameters: WorkloadParameters, seed: Optional[int] = None) -> None:
        self.parameters = parameters
        self._seed = parameters.seed if seed is None else seed

    def generate(self, num_instructions: int) -> Trace:
        """Generate a trace of exactly ``num_instructions`` instructions.

        The stream is emitted straight into columnar storage
        (:class:`~repro.isa.columns.TraceColumns`): no per-instruction
        dataclass is allocated unless an object-API consumer later asks for
        one.  The random draws are identical to the historical object-built
        path, so the resulting trace is bit-identical either way (asserted
        by ``tests/test_columns.py``); setting :data:`TRACE_OBJECTS_ENV`
        additionally materialises the object list eagerly.
        """
        if num_instructions < 0:
            raise WorkloadError(f"num_instructions must be non-negative, got {num_instructions}")
        params = self.parameters
        rng = DeterministicRng(self._seed).spawn(params.name)
        region_rng = rng.spawn("regions")
        cursors = self._build_cursors(region_rng)
        region_weights = [region.weight for region in params.regions]

        compute_weights = [
            0.0 if region.is_far else region.weight for region in params.regions
        ]
        if sum(compute_weights) <= 0:
            compute_weights = list(region_weights)

        columns = TraceColumns()
        append_row = columns.append_row
        count = 0
        recent_registers: Deque[_RegisterRecord] = deque(maxlen=64)
        far_load_registers: Deque[_RegisterRecord] = deque(maxlen=len(_POINTER_REGISTERS))
        recent_stores: Deque[_StoreRecord] = deque(maxlen=params.forwarding_distance_max)
        int_dest_cursor = 0
        fp_dest_cursor = 0
        pointer_dest_cursor = 0

        # Seed the base registers so early address calculations have producers.
        for base_register in _BASE_REGISTERS:
            if count >= num_instructions:
                break
            append_row(CODE_INT_ALU, base_register, -1, -1, -1, -1, 0, 8, 0, 0)
            count += 1

        while count < num_instructions:
            seq = count
            weights = (
                region_weights
                if self._in_memory_phase(seq)
                else compute_weights
            )
            iclass = self._pick_class(rng)
            if iclass is InstrClass.LOAD:
                dest, srcs, address, size, record = self._make_load(
                    seq, rng, cursors, weights, recent_stores, far_load_registers,
                    _INT_DEST_REGISTERS[int_dest_cursor],
                    _POINTER_REGISTERS[pointer_dest_cursor],
                )
                s0, s1, s2, s3 = _pad4(srcs)
                append_row(CODE_LOAD, dest, s0, s1, s2, s3, address, size, FLAG_HAS_ADDRESS, 0)
                if record.from_far_load:
                    pointer_dest_cursor = (pointer_dest_cursor + 1) % len(_POINTER_REGISTERS)
                    far_load_registers.append(record)
                else:
                    int_dest_cursor = (int_dest_cursor + 1) % len(_INT_DEST_REGISTERS)
                recent_registers.append(record)
            elif iclass is InstrClass.STORE:
                srcs, address, size = self._make_store(
                    seq, rng, cursors, weights, recent_registers, far_load_registers,
                    recent_stores,
                )
                s0, s1, s2, s3 = _pad4(srcs)
                append_row(CODE_STORE, -1, s0, s1, s2, s3, address, size, FLAG_HAS_ADDRESS, 0)
            elif iclass is InstrClass.BRANCH:
                srcs, mispredicted = self._make_branch(
                    seq, rng, recent_registers, far_load_registers
                )
                s0, s1, s2, s3 = _pad4(srcs)
                append_row(
                    CODE_BRANCH, -1, s0, s1, s2, s3, 0, 8,
                    FLAG_MISPREDICTED if mispredicted else 0, 0,
                )
            elif iclass is InstrClass.FP_ALU:
                dest = _FP_DEST_REGISTERS[fp_dest_cursor]
                fp_dest_cursor = (fp_dest_cursor + 1) % len(_FP_DEST_REGISTERS)
                srcs = self._pick_alu_sources(rng, recent_registers, far_load_registers)
                s0, s1, s2, s3 = _pad4(srcs)
                append_row(CODE_FP_ALU, dest, s0, s1, s2, s3, 0, 8, 0, 0)
                recent_registers.append(_RegisterRecord(dest, seq, from_far_load=False))
            else:
                dest = _INT_DEST_REGISTERS[int_dest_cursor]
                int_dest_cursor = (int_dest_cursor + 1) % len(_INT_DEST_REGISTERS)
                srcs = self._pick_alu_sources(rng, recent_registers, far_load_registers)
                s0, s1, s2, s3 = _pad4(srcs)
                append_row(CODE_INT_ALU, dest, s0, s1, s2, s3, 0, 8, 0, 0)
                recent_registers.append(_RegisterRecord(dest, seq, from_far_load=False))
            count += 1

        footprints = tuple(
            RegionFootprint(
                name=cursor.region.name,
                base_address=cursor.base_address,
                size_bytes=cursor.region.size_bytes,
                weight=cursor.region.weight,
                pattern=cursor.region.pattern,
            )
            for cursor in cursors
        )
        trace = Trace.from_columns(columns, name=params.name, regions=footprints)
        if os.environ.get(TRACE_OBJECTS_ENV, "0") not in ("", "0"):
            trace.instructions()
        return trace

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _in_memory_phase(self, seq: int) -> bool:
        """Whether instruction ``seq`` falls into a memory (far-region) phase."""
        params = self.parameters
        if params.phase_length <= 0 or params.memory_phase_fraction >= 1.0:
            return True
        if params.memory_phase_fraction <= 0.0:
            return False
        block = seq // params.phase_length
        fraction = params.memory_phase_fraction
        return int((block + 1) * fraction) > int(block * fraction)

    def _build_cursors(self, rng: DeterministicRng) -> List[_RegionCursor]:
        cursors: List[_RegionCursor] = []
        base_address = self._REGION_PADDING
        for region in self.parameters.regions:
            cursors.append(_RegionCursor(region, base_address, rng.spawn(region.name)))
            base_address += region.size_bytes + self._REGION_PADDING
        return cursors

    def _pick_class(self, rng: DeterministicRng) -> InstrClass:
        params = self.parameters
        draw = rng.uniform()
        if draw < params.load_fraction:
            return InstrClass.LOAD
        draw -= params.load_fraction
        if draw < params.store_fraction:
            return InstrClass.STORE
        draw -= params.store_fraction
        if draw < params.branch_fraction:
            return InstrClass.BRANCH
        if rng.chance(params.fp_fraction):
            return InstrClass.FP_ALU
        return InstrClass.INT_ALU

    def _pick_region_cursor(
        self, rng: DeterministicRng, cursors: Sequence[_RegionCursor], weights: Sequence[float]
    ) -> _RegionCursor:
        return rng.weighted_choice(list(cursors), list(weights))

    def _pick_access_size(self, rng: DeterministicRng) -> int:
        sizes = [size for size, _ in self.parameters.access_sizes]
        weights = [weight for _, weight in self.parameters.access_sizes]
        return rng.weighted_choice(sizes, weights)

    def _pick_address_sources(
        self,
        rng: DeterministicRng,
        far_load_registers: Deque[_RegisterRecord],
        chase_probability: float,
    ) -> Tuple[Tuple[int, ...], bool]:
        """Return (address source registers, is_chased)."""
        if far_load_registers and rng.chance(chase_probability):
            record = rng.choice(list(far_load_registers))
            return (record.register,), True
        return (rng.choice(_BASE_REGISTERS),), False

    def _pick_alu_sources(
        self,
        rng: DeterministicRng,
        recent_registers: Deque[_RegisterRecord],
        far_load_registers: Deque[_RegisterRecord],
    ) -> Tuple[int, ...]:
        params = self.parameters
        sources: List[int] = []
        if far_load_registers and rng.chance(params.miss_consumer_fraction):
            sources.append(rng.choice(list(far_load_registers)).register)
        if recent_registers:
            distance = rng.geometric(params.dependence_distance_mean, len(recent_registers))
            sources.append(recent_registers[-distance].register)
        else:
            sources.append(rng.choice(_BASE_REGISTERS))
        return tuple(sources[:2])

    def _make_load(
        self,
        seq: int,
        rng: DeterministicRng,
        cursors: Sequence[_RegionCursor],
        weights: Sequence[float],
        recent_stores: Deque[_StoreRecord],
        far_load_registers: Deque[_RegisterRecord],
        normal_dest: int,
        pointer_dest: int,
    ) -> Tuple[int, Tuple[int, ...], int, int, _RegisterRecord]:
        """Draw one load; returns ``(dest, srcs, address, size, record)``."""
        params = self.parameters
        size = self._pick_access_size(rng)

        # Store→load forwarding: reuse the address of a recent store.
        if recent_stores and rng.chance(params.forwarding_fraction):
            distance = rng.geometric(params.forwarding_distance_mean, len(recent_stores))
            store_record = recent_stores[-distance]
            srcs = (rng.choice(_BASE_REGISTERS),)
            return (
                normal_dest,
                srcs,
                store_record.address,
                min(size, store_record.size),
                _RegisterRecord(normal_dest, seq, from_far_load=False),
            )

        srcs, chased = self._pick_address_sources(
            rng, far_load_registers, params.chased_load_fraction
        )
        cursor = self._pick_region_cursor(rng, cursors, weights)
        address = cursor.next_address()
        from_far = cursor.region.is_far or chased
        dest = pointer_dest if from_far else normal_dest
        return dest, srcs, address, size, _RegisterRecord(dest, seq, from_far_load=from_far)

    def _make_store(
        self,
        seq: int,
        rng: DeterministicRng,
        cursors: Sequence[_RegionCursor],
        weights: Sequence[float],
        recent_registers: Deque[_RegisterRecord],
        far_load_registers: Deque[_RegisterRecord],
        recent_stores: Deque[_StoreRecord],
    ) -> Tuple[Tuple[int, ...], int, int]:
        """Draw one store; returns ``(srcs, address, size)``."""
        params = self.parameters
        size = self._pick_access_size(rng)
        address_srcs, _chased = self._pick_address_sources(
            rng, far_load_registers, params.chased_store_fraction
        )
        cursor = self._pick_region_cursor(rng, cursors, weights)
        address = cursor.next_address()
        data_src = (
            recent_registers[-1].register if recent_registers else rng.choice(_BASE_REGISTERS)
        )
        recent_stores.append(_StoreRecord(seq=seq, address=address, size=size))
        return address_srcs + (data_src,), address, size

    def _make_branch(
        self,
        seq: int,
        rng: DeterministicRng,
        recent_registers: Deque[_RegisterRecord],
        far_load_registers: Deque[_RegisterRecord],
    ) -> Tuple[Tuple[int, ...], bool]:
        """Draw one branch; returns ``(srcs, mispredicted)``."""
        params = self.parameters
        mispredicted = rng.chance(params.branch_mispredict_rate)
        if (
            mispredicted
            and far_load_registers
            and rng.chance(params.mispredict_depends_on_miss_fraction)
        ):
            srcs: Tuple[int, ...] = (rng.choice(list(far_load_registers)).register,)
        elif recent_registers:
            distance = rng.geometric(params.dependence_distance_mean, len(recent_registers))
            srcs = (recent_registers[-distance].register,)
        else:
            srcs = (rng.choice(_BASE_REGISTERS),)
        return srcs, mispredicted

"""Workload suites: SPEC-FP-like and SPEC-INT-like collections.

The paper reports every result as the arithmetic mean over the SPEC FP and
SPEC INT benchmarks separately.  :class:`WorkloadSuite` mirrors that: it is a
named, ordered collection of :class:`~repro.workloads.base.WorkloadParameters`
that can generate one trace per member.  The experiment harness in
:mod:`repro.sim` runs each member and averages, exactly like the paper's
methodology (Section 5.1), only with far shorter traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import WorkloadError
from repro.isa.trace import Trace
from repro.workloads.base import SyntheticWorkload, WorkloadParameters
from repro.workloads.spec_fp import SPEC_FP_KERNELS
from repro.workloads.spec_int import SPEC_INT_KERNELS


@dataclass(frozen=True)
class WorkloadSuite:
    """An ordered, named collection of workload descriptions."""

    name: str
    members: Tuple[WorkloadParameters, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise WorkloadError(f"suite {self.name!r} must contain at least one workload")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise WorkloadError(f"suite {self.name!r} contains duplicate workload names")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[WorkloadParameters]:
        return iter(self.members)

    def member_names(self) -> List[str]:
        """Return the workload names in suite order."""
        return [member.name for member in self.members]

    def member(self, name: str) -> WorkloadParameters:
        """Return the member called ``name``."""
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"suite {self.name!r} has no member called {name!r}")

    def generate_traces(
        self, instructions_per_member: int, seed: Optional[int] = None
    ) -> List[Trace]:
        """Generate one trace per member, each with the given instruction count."""
        return [
            generate_member_trace(member, instructions_per_member, seed=seed)
            for member in self.members
        ]

    def subset(self, names: Sequence[str], suite_name: Optional[str] = None) -> "WorkloadSuite":
        """Return a new suite containing only the named members, in the given order."""
        members = tuple(self.member(name) for name in names)
        return WorkloadSuite(
            name=suite_name if suite_name is not None else f"{self.name}-subset", members=members
        )


def generate_member_trace(
    parameters: WorkloadParameters, num_instructions: int, seed: Optional[int] = None
) -> Trace:
    """Generate one member's trace, independent of every other member.

    This is the *seed-isolation contract* the parallel sweep runner relies
    on: the generator internally derives its stream from ``(seed,
    parameters.name)``, so a member's trace depends only on its own
    parameters, the campaign seed and the length -- never on which other
    members are generated, or in which order, or in which process.  A worker
    process regenerating a single member therefore produces a trace
    bit-identical to the one :meth:`WorkloadSuite.generate_traces` builds for
    the whole suite.

    The function is a picklable module-level entry point so multiprocessing
    workers can call it directly.
    """
    return SyntheticWorkload(parameters, seed=seed).generate(num_instructions)


def spec_fp_suite() -> WorkloadSuite:
    """Return the SPEC-FP-like suite (all FP kernels, stable order)."""
    members = tuple(SPEC_FP_KERNELS[name]() for name in sorted(SPEC_FP_KERNELS))
    return WorkloadSuite(name="spec_fp_like", members=members)


def spec_int_suite() -> WorkloadSuite:
    """Return the SPEC-INT-like suite (all INT kernels, stable order)."""
    members = tuple(SPEC_INT_KERNELS[name]() for name in sorted(SPEC_INT_KERNELS))
    return WorkloadSuite(name="spec_int_like", members=members)


def quick_fp_suite() -> WorkloadSuite:
    """A two-member FP subset used by fast tests and the quickstart example."""
    return spec_fp_suite().subset(["swim_like", "equake_like"], suite_name="spec_fp_quick")


def quick_int_suite() -> WorkloadSuite:
    """A two-member INT subset used by fast tests and the quickstart example."""
    return spec_int_suite().subset(["mcf_like", "gcc_like"], suite_name="spec_int_quick")


def _family_factory(family: str) -> Callable[[], WorkloadSuite]:
    """Lazy factory for a workload family (avoids a circular import:
    :mod:`repro.workloads.families` imports this module for WorkloadSuite)."""

    def factory() -> WorkloadSuite:
        from repro.workloads.families import family_suite

        return family_suite(family)

    return factory


_SUITES: Dict[str, Callable[[], WorkloadSuite]] = {
    "spec_fp_like": spec_fp_suite,
    "spec_int_like": spec_int_suite,
    "spec_fp_quick": quick_fp_suite,
    "spec_int_quick": quick_int_suite,
    # The stress-axis families of repro.workloads.families.
    "pointer_chase": _family_factory("pointer_chase"),
    "streaming": _family_factory("streaming"),
    "branchy": _family_factory("branchy"),
    "phased": _family_factory("phased"),
}


def suite_names() -> List[str]:
    """Return every registered suite name (SPEC-like suites plus families)."""
    return sorted(_SUITES)


def suite_by_name(name: str) -> WorkloadSuite:
    """Return a registered suite by name.

    Available suites: the SPEC-like suites (``spec_fp_like``,
    ``spec_int_like``, ``spec_fp_quick``, ``spec_int_quick``) and the
    workload families (``pointer_chase``, ``streaming``, ``branchy``,
    ``phased``).
    """
    try:
        factory = _SUITES[name]
    except KeyError:
        raise WorkloadError(f"unknown suite {name!r}; available: {sorted(_SUITES)}") from None
    return factory()


def workload_by_name(name: str) -> WorkloadParameters:
    """Resolve a workload (suite member) name across every registered suite.

    Used by ``repro trace record`` so any workload the repository knows --
    SPEC-like kernel or family member -- can be recorded by name alone.
    """
    seen = []
    for suite_name in sorted(_SUITES):
        # Quick suites are subsets of the full suites; skip the duplicates.
        if suite_name.endswith("_quick"):
            continue
        suite = _SUITES[suite_name]()
        for member in suite:
            if member.name == name:
                return member
            seen.append(member.name)
    raise WorkloadError(f"unknown workload {name!r}; available: {sorted(seen)}")

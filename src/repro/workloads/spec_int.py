"""SPEC-CPU-2000-INT-like synthetic kernels.

Counterparts to :mod:`repro.workloads.spec_fp` for the integer side of the
suite.  The integer kernels differ from the FP kernels in exactly the ways
the paper's analysis depends on:

* pointer-heavy data structures, so a visible fraction of *load* address
  calculations depends on a previous missing load (serialised misses, low
  memory-level parallelism, low-locality loads in Figure 1),
* higher branch density and higher misprediction rates, with a substantial
  fraction of mispredictions depending on missing loads -- this is what limits
  SPEC INT speedups to ~1.2x on the large window (Figure 7) and what inflates
  wrong-path LSQ activity (Section 6),
* smaller but randomly accessed working sets, so the line-based ERT's
  cache-line locking sees more set conflicts than under streaming FP access
  (Figure 8b/c), and
* more frequent, shorter-distance store→load forwarding (spills, struct
  fields), which favours local (in-epoch / HL) forwarding.

Like the FP kernels, the miss-producing (far) regions are visited in phases
so the Memory Processor drains between bursts, and the parameters are
calibrated so the OoO-64 baseline lands near the paper's SPEC INT IPC
(~1.55) with a modest FMC gain; see EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import WorkloadError
from repro.workloads.base import MemoryRegion, WorkloadParameters

_KB = 1024
_MB = 1024 * 1024


def mcf_like() -> WorkloadParameters:
    """Network-simplex pointer chasing over a multi-megabyte graph."""
    return WorkloadParameters(
        name="mcf_like",
        load_fraction=0.32,
        store_fraction=0.09,
        branch_fraction=0.18,
        fp_fraction=0.0,
        regions=(
            MemoryRegion(name="arcs", size_bytes=24 * _MB, weight=0.018, pattern="random", is_far=True),
            MemoryRegion(name="nodes", size_bytes=4 * _MB, weight=0.012, pattern="random", is_far=True),
            MemoryRegion(name="stack", size_bytes=48 * _KB, weight=0.55, pattern="stream"),
            MemoryRegion(name="locals", size_bytes=512 * _KB, weight=0.42, pattern="random"),
        ),
        chased_load_fraction=0.22,
        chased_store_fraction=0.02,
        forwarding_fraction=0.10,
        forwarding_distance_mean=8.0,
        miss_consumer_fraction=0.25,
        dependence_distance_mean=5.0,
        branch_mispredict_rate=0.055,
        mispredict_depends_on_miss_fraction=0.50,
        phase_length=1500,
        memory_phase_fraction=0.45,
        seed=21,
    )


def gcc_like() -> WorkloadParameters:
    """Compiler-style workload: branchy, medium working set, many short forwards."""
    return WorkloadParameters(
        name="gcc_like",
        load_fraction=0.26,
        store_fraction=0.14,
        branch_fraction=0.20,
        fp_fraction=0.0,
        regions=(
            MemoryRegion(name="ir_nodes", size_bytes=2 * _MB, weight=0.015, pattern="random", is_far=True),
            MemoryRegion(name="tables", size_bytes=512 * _KB, weight=0.40, pattern="random"),
            MemoryRegion(name="stack", size_bytes=64 * _KB, weight=0.585, pattern="stream"),
        ),
        chased_load_fraction=0.10,
        chased_store_fraction=0.012,
        forwarding_fraction=0.16,
        forwarding_distance_mean=6.0,
        miss_consumer_fraction=0.12,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.045,
        mispredict_depends_on_miss_fraction=0.30,
        phase_length=1200,
        memory_phase_fraction=0.45,
        seed=22,
    )


def gzip_like() -> WorkloadParameters:
    """Compression: small hot dictionary plus a streaming input buffer."""
    return WorkloadParameters(
        name="gzip_like",
        load_fraction=0.24,
        store_fraction=0.12,
        branch_fraction=0.18,
        fp_fraction=0.0,
        regions=(
            MemoryRegion(name="window", size_bytes=256 * _KB, weight=0.55, pattern="random"),
            MemoryRegion(name="input", size_bytes=6 * _MB, weight=0.016, pattern="stream", is_far=True),
            MemoryRegion(name="huffman", size_bytes=16 * _KB, weight=0.434, pattern="random"),
        ),
        chased_load_fraction=0.06,
        chased_store_fraction=0.01,
        forwarding_fraction=0.14,
        forwarding_distance_mean=7.0,
        miss_consumer_fraction=0.10,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.04,
        mispredict_depends_on_miss_fraction=0.20,
        phase_length=1800,
        memory_phase_fraction=0.40,
        seed=23,
    )


def parser_like() -> WorkloadParameters:
    """Natural-language parser: dictionary lookups and linked structures."""
    return WorkloadParameters(
        name="parser_like",
        load_fraction=0.28,
        store_fraction=0.11,
        branch_fraction=0.21,
        fp_fraction=0.0,
        regions=(
            MemoryRegion(name="dictionary", size_bytes=5 * _MB, weight=0.015, pattern="random", is_far=True),
            MemoryRegion(name="parse_heap", size_bytes=768 * _KB, weight=0.40, pattern="random"),
            MemoryRegion(name="stack", size_bytes=48 * _KB, weight=0.585, pattern="stream"),
        ),
        chased_load_fraction=0.16,
        chased_store_fraction=0.02,
        forwarding_fraction=0.15,
        forwarding_distance_mean=6.0,
        miss_consumer_fraction=0.15,
        dependence_distance_mean=4.0,
        branch_mispredict_rate=0.05,
        mispredict_depends_on_miss_fraction=0.40,
        phase_length=1500,
        memory_phase_fraction=0.45,
        seed=24,
    )


def vpr_like() -> WorkloadParameters:
    """Place-and-route: graph walks over a medium netlist plus random probes."""
    return WorkloadParameters(
        name="vpr_like",
        load_fraction=0.30,
        store_fraction=0.10,
        branch_fraction=0.16,
        fp_fraction=0.10,
        regions=(
            MemoryRegion(name="netlist", size_bytes=3 * _MB, weight=0.02, pattern="random", is_far=True),
            MemoryRegion(name="routing_grid", size_bytes=1024 * _KB, weight=0.35, pattern="random"),
            MemoryRegion(name="locals", size_bytes=48 * _KB, weight=0.63, pattern="stream"),
        ),
        chased_load_fraction=0.12,
        chased_store_fraction=0.015,
        forwarding_fraction=0.12,
        forwarding_distance_mean=8.0,
        miss_consumer_fraction=0.14,
        dependence_distance_mean=5.0,
        branch_mispredict_rate=0.04,
        mispredict_depends_on_miss_fraction=0.30,
        phase_length=1500,
        memory_phase_fraction=0.45,
        seed=25,
    )


def bzip2_like() -> WorkloadParameters:
    """Block-sorting compression: cache-resident hot loop with streaming input."""
    return WorkloadParameters(
        name="bzip2_like",
        load_fraction=0.27,
        store_fraction=0.13,
        branch_fraction=0.17,
        fp_fraction=0.0,
        regions=(
            MemoryRegion(name="block", size_bytes=850 * _KB, weight=0.55, pattern="random"),
            MemoryRegion(name="input", size_bytes=8 * _MB, weight=0.012, pattern="stream", is_far=True),
            MemoryRegion(name="counters", size_bytes=64 * _KB, weight=0.438, pattern="random"),
        ),
        chased_load_fraction=0.05,
        chased_store_fraction=0.01,
        forwarding_fraction=0.13,
        forwarding_distance_mean=9.0,
        miss_consumer_fraction=0.08,
        dependence_distance_mean=5.0,
        branch_mispredict_rate=0.045,
        mispredict_depends_on_miss_fraction=0.15,
        phase_length=2000,
        memory_phase_fraction=0.40,
        seed=26,
    )


#: Registry of the INT-like kernels by short name.
SPEC_INT_KERNELS: Dict[str, Callable[[], WorkloadParameters]] = {
    "mcf": mcf_like,
    "gcc": gcc_like,
    "gzip": gzip_like,
    "parser": parser_like,
    "vpr": vpr_like,
    "bzip2": bzip2_like,
}


def int_kernel(name: str) -> WorkloadParameters:
    """Return the INT-like kernel registered under ``name``."""
    try:
        factory = SPEC_INT_KERNELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown INT kernel {name!r}; available: {sorted(SPEC_INT_KERNELS)}"
        ) from None
    return factory()


def int_kernel_names() -> Tuple[str, ...]:
    """Return the names of all INT-like kernels in a stable order."""
    return tuple(sorted(SPEC_INT_KERNELS))

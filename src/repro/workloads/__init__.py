"""Synthetic workload generators.

The paper evaluates ELSQ with SPEC CPU 2000 SimPoints executed on an Alpha
functional simulator.  Neither the binaries nor a functional Alpha front end
are reproducible inside this library, so the evaluation is driven by
*synthetic* workloads whose statistical properties are parameterised to match
the characteristics the paper reports and relies on:

* instruction mix (loads / stores / branches / FP),
* working-set structure (several regions of different sizes and access
  patterns, so that miss rates respond to cache size as in Figure 11),
* the fraction of loads and stores whose *address calculation* depends on a
  cache-missing load (the execution-locality split of Figure 1),
* memory-level parallelism (independent streaming misses for FP-like
  workloads versus serialised pointer chasing for INT-like workloads),
* store→load forwarding distances (local versus distant forwarding), and
* branch misprediction rates, including branches that depend on missing
  loads (the control-speculation limit of SPEC INT discussed in Section 6).

:mod:`repro.workloads.base` provides the generic generator;
:mod:`repro.workloads.spec_fp` and :mod:`repro.workloads.spec_int` define
named kernels loosely modelled on individual SPEC benchmarks; and
:mod:`repro.workloads.suite` groups them into the two suites used throughout
the evaluation.
"""

from repro.workloads.base import (
    MemoryRegion,
    SyntheticWorkload,
    WorkloadParameters,
)
from repro.workloads.spec_fp import SPEC_FP_KERNELS, fp_kernel
from repro.workloads.spec_int import SPEC_INT_KERNELS, int_kernel
from repro.workloads.suite import (
    WorkloadSuite,
    spec_fp_suite,
    spec_int_suite,
    suite_by_name,
)

__all__ = [
    "MemoryRegion",
    "SPEC_FP_KERNELS",
    "SPEC_INT_KERNELS",
    "SyntheticWorkload",
    "WorkloadParameters",
    "WorkloadSuite",
    "fp_kernel",
    "int_kernel",
    "spec_fp_suite",
    "spec_int_suite",
    "suite_by_name",
]

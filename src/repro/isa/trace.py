"""Trace containers and summary statistics.

A :class:`Trace` is an immutable, validated sequence of
:class:`~repro.isa.instruction.Instruction` records in program order.  It is
the unit of work handed to a processor model.  Traces can be built from any
iterable of instructions (typically a workload generator), summarised with
:class:`TraceStatistics`, sliced, concatenated and serialised to a simple
line-oriented text format for offline inspection.

A trace has two interchangeable storage forms: the instruction-object list
(the historical representation) and the columnar structure-of-arrays form
(:class:`~repro.isa.columns.TraceColumns`), which the workload generators
emit natively, the binary container loads in bulk, and the ``fast``
simulation engine drives directly.  :meth:`Trace.columns` and the lazy
object materialisation convert between the two on demand and cache the
result, so either API can be used on any trace without the other being paid
for up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.common.errors import TraceError
from repro.isa.instruction import InstrClass, Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.columns import TraceColumns


@dataclass(frozen=True)
class RegionFootprint:
    """Location and access statistics of one data region of a trace.

    Synthetic workloads attach one footprint per memory region so the
    simulator can perform a *region-aware functional cache warm-up*: regions
    are replayed into the hierarchy in increasing access-density order before
    the timed run, leaving the caches in the steady state a long execution
    would have reached (dense, small structures resident; structures larger
    than a level still missing).
    """

    name: str
    base_address: int
    size_bytes: int
    weight: float
    pattern: str
    line_hint: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TraceError(f"region {self.name!r}: size must be positive")
        if self.base_address < 0:
            raise TraceError(f"region {self.name!r}: base address must be non-negative")
        if self.weight < 0:
            raise TraceError(f"region {self.name!r}: weight must be non-negative")

    @property
    def access_density(self) -> float:
        """Relative access probability per byte (used to order warm-up)."""
        return self.weight / self.size_bytes


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate composition statistics of a trace."""

    num_instructions: int
    num_loads: int
    num_stores: int
    num_branches: int
    num_int_alu: int
    num_fp_alu: int
    num_mispredicted_branches: int
    unique_lines_touched: int

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that are loads or stores."""
        if self.num_instructions == 0:
            return 0.0
        return (self.num_loads + self.num_stores) / self.num_instructions

    @property
    def load_fraction(self) -> float:
        """Fraction of instructions that are loads."""
        if self.num_instructions == 0:
            return 0.0
        return self.num_loads / self.num_instructions

    @property
    def store_fraction(self) -> float:
        """Fraction of instructions that are stores."""
        if self.num_instructions == 0:
            return 0.0
        return self.num_stores / self.num_instructions

    @property
    def branch_fraction(self) -> float:
        """Fraction of instructions that are branches."""
        if self.num_instructions == 0:
            return 0.0
        return self.num_branches / self.num_instructions

    @property
    def branch_mispredict_rate(self) -> float:
        """Fraction of branches that were mispredicted."""
        if self.num_branches == 0:
            return 0.0
        return self.num_mispredicted_branches / self.num_branches


class Trace:
    """An immutable program-order sequence of instructions.

    Parameters
    ----------
    instructions:
        The instructions in program order.  Sequence numbers must be the
        consecutive integers ``0, 1, 2, ...``; the constructor validates this
        so that downstream structures may index by ``seq`` directly.
    name:
        Optional human-readable name (e.g. the workload that produced it).
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        name: str = "trace",
        regions: Tuple[RegionFootprint, ...] = (),
    ) -> None:
        self._instructions: Optional[List[Instruction]] = list(instructions)
        self._name = name
        self._regions = tuple(regions)
        self._columns: Optional["TraceColumns"] = None
        for index, instruction in enumerate(self._instructions):
            if instruction.seq != index:
                raise TraceError(
                    f"trace {name!r}: instruction at position {index} has seq "
                    f"{instruction.seq}; sequence numbers must be consecutive from zero"
                )

    @classmethod
    def from_columns(
        cls,
        columns: "TraceColumns",
        name: str = "trace",
        regions: Tuple[RegionFootprint, ...] = (),
    ) -> "Trace":
        """Build a trace directly over columnar storage.

        Instruction objects are materialised lazily, only if an object-API
        consumer asks for them; the fast engine and the binary container
        operate on the columns alone.  Sequence numbers are positional by
        construction, so the consecutive-``seq`` validation the object
        constructor performs holds trivially.
        """
        trace = cls.__new__(cls)
        trace._instructions = None
        trace._columns = columns
        trace._name = name
        trace._regions = tuple(regions)
        return trace

    def columns(self) -> "TraceColumns":
        """The columnar form of this trace (built once, then cached)."""
        if self._columns is None:
            from repro.isa.columns import TraceColumns

            self._columns = TraceColumns.from_instructions(self._instructions)
        return self._columns

    def _materialize(self) -> List[Instruction]:
        if self._instructions is None:
            self._instructions = self._columns.to_instructions()
        return self._instructions

    @property
    def name(self) -> str:
        """Human-readable name of the trace."""
        return self._name

    @property
    def regions(self) -> Tuple[RegionFootprint, ...]:
        """Data-region footprints for cache warm-up (empty for hand-built traces)."""
        return self._regions

    def __len__(self) -> int:
        if self._instructions is not None:
            return len(self._instructions)
        return len(self._columns)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._materialize())

    def __getitem__(self, index: Union[int, slice]) -> Union[Instruction, Sequence[Instruction]]:
        return self._materialize()[index]

    def instructions(self) -> Sequence[Instruction]:
        """Return the underlying instruction list (do not mutate)."""
        return self._materialize()

    def memory_operations(self) -> Iterator[Instruction]:
        """Iterate over the loads and stores of the trace in program order."""
        for instruction in self._materialize():
            if instruction.is_memory:
                yield instruction

    def statistics(self, line_size: int = 32) -> TraceStatistics:
        """Compute composition statistics; lines are counted at ``line_size`` granularity."""
        if self._instructions is None:
            return self._statistics_from_columns(line_size)
        loads = stores = branches = int_ops = fp_ops = mispredicts = 0
        lines = set()
        for instruction in self._instructions:
            if instruction.iclass is InstrClass.LOAD:
                loads += 1
            elif instruction.iclass is InstrClass.STORE:
                stores += 1
            elif instruction.iclass is InstrClass.BRANCH:
                branches += 1
                if instruction.mispredicted:
                    mispredicts += 1
            elif instruction.iclass is InstrClass.FP_ALU:
                fp_ops += 1
            else:
                int_ops += 1
            if instruction.is_memory and instruction.address is not None:
                lines.add(instruction.address // line_size)
        return TraceStatistics(
            num_instructions=len(self._instructions),
            num_loads=loads,
            num_stores=stores,
            num_branches=branches,
            num_int_alu=int_ops,
            num_fp_alu=fp_ops,
            num_mispredicted_branches=mispredicts,
            unique_lines_touched=len(lines),
        )

    def _statistics_from_columns(self, line_size: int) -> TraceStatistics:
        """Column-driven statistics (no instruction objects materialised)."""
        from repro.isa.columns import (
            CODE_BRANCH,
            CODE_FP_ALU,
            CODE_LOAD,
            CODE_STORE,
            FLAG_MISPREDICTED,
        )

        columns = self._columns
        iclass = columns.iclass
        flags = columns.flags
        address = columns.address
        loads = stores = branches = fp_ops = mispredicts = 0
        lines = set()
        for seq in range(len(iclass)):
            code = iclass[seq]
            if code == CODE_LOAD:
                loads += 1
                lines.add(address[seq] // line_size)
            elif code == CODE_STORE:
                stores += 1
                lines.add(address[seq] // line_size)
            elif code == CODE_BRANCH:
                branches += 1
                if flags[seq] & FLAG_MISPREDICTED:
                    mispredicts += 1
            elif code == CODE_FP_ALU:
                fp_ops += 1
        total = len(iclass)
        return TraceStatistics(
            num_instructions=total,
            num_loads=loads,
            num_stores=stores,
            num_branches=branches,
            num_int_alu=total - loads - stores - branches - fp_ops,
            num_fp_alu=fp_ops,
            num_mispredicted_branches=mispredicts,
            unique_lines_touched=len(lines),
        )

    def concatenate(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Return a new trace containing this trace followed by ``other``.

        Sequence numbers of the second trace are rebased so the result is a
        valid trace.
        """
        own = self._materialize()
        offset = len(own)
        rebased = [
            Instruction(
                seq=offset + instruction.seq,
                iclass=instruction.iclass,
                dest=instruction.dest,
                srcs=instruction.srcs,
                address=instruction.address,
                size=instruction.size,
                mispredicted=instruction.mispredicted,
                latency=instruction.latency,
            )
            for instruction in other
        ]
        return Trace(
            own + rebased,
            name=name if name is not None else f"{self._name}+{other.name}",
        )

    def prefix(self, length: int, name: Optional[str] = None) -> "Trace":
        """Return a new trace containing the first ``length`` instructions."""
        if length < 0:
            raise TraceError(f"prefix length must be non-negative, got {length}")
        return Trace(
            self._materialize()[:length],
            name=name if name is not None else f"{self._name}[:{length}]",
        )

    # ------------------------------------------------------------------
    # Serialisation: a simple whitespace-separated line format.
    # ------------------------------------------------------------------

    _FIELD_SEPARATOR = " "

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` in a simple line-oriented text format."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            handle.write(f"# repro-trace name={self._name}\n")
            for instruction in self._materialize():
                handle.write(self._encode_line(instruction))
                handle.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`save`."""
        source = Path(path)
        name = source.stem
        instructions: List[Instruction] = []
        with source.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                line = raw_line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if "name=" in line:
                        name = line.split("name=", 1)[1].strip()
                    continue
                try:
                    instructions.append(cls._decode_line(line))
                except (ValueError, KeyError) as exc:
                    raise TraceError(f"{source}:{line_number}: malformed record: {exc}") from exc
        return cls(instructions, name=name)

    @classmethod
    def _encode_line(cls, instruction: Instruction) -> str:
        fields = [
            str(instruction.seq),
            instruction.iclass.value,
            "-" if instruction.dest is None else str(instruction.dest),
            ",".join(str(src) for src in instruction.srcs) or "-",
            "-" if instruction.address is None else str(instruction.address),
            str(instruction.size),
            "1" if instruction.mispredicted else "0",
            "-" if instruction.latency is None else str(instruction.latency),
        ]
        return cls._FIELD_SEPARATOR.join(fields)

    @classmethod
    def _decode_line(cls, line: str) -> Instruction:
        fields = line.split()
        if len(fields) != 8:
            raise TraceError(f"expected 8 fields, got {len(fields)}")
        seq = int(fields[0])
        iclass = InstrClass(fields[1])
        dest = None if fields[2] == "-" else int(fields[2])
        srcs = () if fields[3] == "-" else tuple(int(part) for part in fields[3].split(","))
        address = None if fields[4] == "-" else int(fields[4])
        size = int(fields[5])
        mispredicted = fields[6] == "1"
        latency = None if fields[7] == "-" else int(fields[7])
        return Instruction(
            seq=seq,
            iclass=iclass,
            dest=dest,
            srcs=srcs,
            address=address,
            size=size,
            mispredicted=mispredicted,
            latency=latency,
        )

"""The dynamic instruction record replayed by the timing models.

The reproduction does not interpret a real ISA.  Instead every dynamic
instruction is described by the information the timing models and the ELSQ
actually consume:

* its class (integer ALU, floating-point ALU, branch, load, store),
* the architectural registers it reads and writes (dependences),
* for memory operations, the byte address and access size,
* for branches, whether the branch was mispredicted at fetch time,
* an optional execution latency override.

Registers are plain integers.  Integer registers occupy ``0 ..
FP_REGISTER_BASE-1`` and floating point registers ``FP_REGISTER_BASE ..``.
The split only matters for issue-queue accounting and for workload realism;
the dependence tracking itself is register-space agnostic.

The module also provides small factory helpers (:func:`int_alu`,
:func:`load`, ...) that the workload generators use to keep construction
readable and validated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import TraceError

#: First register index considered a floating-point register.
FP_REGISTER_BASE = 64

#: Total number of architectural registers (integer + floating point).
NUM_ARCH_REGISTERS = 128


class InstrClass(enum.Enum):
    """The instruction classes distinguished by the timing model."""

    INT_ALU = "int_alu"
    FP_ALU = "fp_alu"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"

    @property
    def is_memory(self) -> bool:
        """Whether the instruction accesses memory."""
        return self in (InstrClass.LOAD, InstrClass.STORE)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One committed dynamic instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream, starting at zero and
        strictly increasing within a trace.
    iclass:
        The instruction class.
    dest:
        Destination architectural register, or ``None`` for instructions that
        do not produce a register value (stores and branches).
    srcs:
        Source architectural registers.  For loads these are the address
        operands; for stores the address operands plus the data operand.
    address:
        Byte address for memory operations, ``None`` otherwise.
    size:
        Access size in bytes for memory operations (defaults to 8).
    mispredicted:
        For branches, whether the branch was mispredicted at fetch time.
    latency:
        Optional execution-latency override.  When ``None`` the core applies
        its per-class default (Table 1 latencies).
    """

    seq: int
    iclass: InstrClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    address: Optional[int] = None
    size: int = 8
    mispredicted: bool = False
    latency: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TraceError(f"instruction seq must be non-negative, got {self.seq}")
        if self.iclass.is_memory:
            if self.address is None:
                raise TraceError(f"{self.iclass.value} at seq {self.seq} is missing an address")
            if self.address < 0:
                raise TraceError(f"memory address must be non-negative, got {self.address}")
            if self.size <= 0:
                raise TraceError(f"memory access size must be positive, got {self.size}")
        else:
            if self.address is not None:
                raise TraceError(
                    f"{self.iclass.value} at seq {self.seq} must not carry an address"
                )
        if self.mispredicted and self.iclass is not InstrClass.BRANCH:
            raise TraceError("only branches may be marked mispredicted")
        if self.dest is not None and not 0 <= self.dest < NUM_ARCH_REGISTERS:
            raise TraceError(f"destination register {self.dest} out of range")
        for src in self.srcs:
            if not 0 <= src < NUM_ARCH_REGISTERS:
                raise TraceError(f"source register {src} out of range")
        if self.latency is not None and self.latency < 0:
            raise TraceError(f"latency override must be non-negative, got {self.latency}")

    @property
    def is_load(self) -> bool:
        """Whether this instruction is a load."""
        return self.iclass is InstrClass.LOAD

    @property
    def is_store(self) -> bool:
        """Whether this instruction is a store."""
        return self.iclass is InstrClass.STORE

    @property
    def is_memory(self) -> bool:
        """Whether this instruction is a load or a store."""
        return self.iclass.is_memory

    @property
    def is_branch(self) -> bool:
        """Whether this instruction is a branch."""
        return self.iclass is InstrClass.BRANCH

    @property
    def is_fp(self) -> bool:
        """Whether this instruction executes on the floating-point pipeline."""
        return self.iclass is InstrClass.FP_ALU or (
            self.dest is not None and self.dest >= FP_REGISTER_BASE
        )

    def byte_range(self) -> Tuple[int, int]:
        """Return the half-open ``[start, end)`` byte range touched by a memory op."""
        if not self.is_memory:
            raise TraceError(f"instruction {self.seq} is not a memory operation")
        assert self.address is not None
        return self.address, self.address + self.size

    def overlaps(self, other: "Instruction") -> bool:
        """Whether two memory operations touch at least one common byte."""
        start_a, end_a = self.byte_range()
        start_b, end_b = other.byte_range()
        return start_a < end_b and start_b < end_a


def int_alu(seq: int, dest: int, srcs: Tuple[int, ...] = (), latency: Optional[int] = None) -> Instruction:
    """Create an integer ALU instruction."""
    return Instruction(seq=seq, iclass=InstrClass.INT_ALU, dest=dest, srcs=srcs, latency=latency)


def fp_alu(seq: int, dest: int, srcs: Tuple[int, ...] = (), latency: Optional[int] = None) -> Instruction:
    """Create a floating-point ALU instruction."""
    return Instruction(seq=seq, iclass=InstrClass.FP_ALU, dest=dest, srcs=srcs, latency=latency)


def branch(seq: int, srcs: Tuple[int, ...] = (), mispredicted: bool = False) -> Instruction:
    """Create a conditional branch instruction."""
    return Instruction(
        seq=seq, iclass=InstrClass.BRANCH, dest=None, srcs=srcs, mispredicted=mispredicted
    )


def load(
    seq: int,
    dest: int,
    address: int,
    srcs: Tuple[int, ...] = (),
    size: int = 8,
) -> Instruction:
    """Create a load instruction reading ``size`` bytes at ``address``."""
    return Instruction(
        seq=seq, iclass=InstrClass.LOAD, dest=dest, srcs=srcs, address=address, size=size
    )


def store(
    seq: int,
    address: int,
    srcs: Tuple[int, ...] = (),
    size: int = 8,
) -> Instruction:
    """Create a store instruction writing ``size`` bytes at ``address``."""
    return Instruction(
        seq=seq, iclass=InstrClass.STORE, dest=None, srcs=srcs, address=address, size=size
    )

"""Instruction and trace model.

The simulator is *trace driven*: a workload generator emits a sequence of
:class:`~repro.isa.instruction.Instruction` records that describe the
committed (correct-path) dynamic instruction stream with register
dependences, memory addresses and branch outcomes.  The timing models in
:mod:`repro.uarch` and :mod:`repro.fmc` replay this stream to compute cycle
timings, and the ELSQ structures in :mod:`repro.core` observe the memory
operations flowing through it.
"""

from repro.isa.instruction import (
    FP_REGISTER_BASE,
    InstrClass,
    Instruction,
    int_alu,
    fp_alu,
    branch,
    load,
    store,
)
from repro.isa.trace import Trace, TraceStatistics

__all__ = [
    "FP_REGISTER_BASE",
    "InstrClass",
    "Instruction",
    "Trace",
    "TraceStatistics",
    "branch",
    "fp_alu",
    "int_alu",
    "load",
    "store",
]

"""Columnar (structure-of-arrays) representation of an instruction stream.

The object API -- a Python list of
:class:`~repro.isa.instruction.Instruction` dataclasses -- is the right
interface for building, validating and inspecting traces, but it is the
wrong *storage* for the hot paths: a 30k-instruction trace costs 30k frozen
dataclass allocations to generate, 30k attribute walks per simulated pass,
and a deep pickle to cross a process boundary.  :class:`TraceColumns` stores
the same information as ten parallel typed columns (stdlib :mod:`array`
buffers), one entry per instruction:

======== ======== =======================================================
column   typecode meaning
======== ======== =======================================================
iclass   ``B``    instruction-class code (see :data:`ICLASS_BY_CODE`)
dest     ``b``    destination register, ``-1`` when absent
src0..3  ``b``    source registers in order, ``-1`` padding
address  ``Q``    byte address of a memory access, ``0`` when absent
size     ``H``    access size in bytes
flags    ``B``    bit0 has-address, bit1 mispredicted, bit2 has-latency
latency  ``I``    execution-latency override, ``0`` when absent
======== ======== =======================================================

The sequence number is implicit (an instruction's position in the columns),
which the :class:`~repro.isa.trace.Trace` constructor has always enforced
anyway.  The class-code table and the flag bits deliberately match the
binary trace container (:mod:`repro.trace.format`), so a recorded trace
loads into columns with bulk ``frombytes`` copies -- or with zero-copy
``memoryview`` casts when the container bytes live in shared memory.

Conversion is faithful in both directions:
:meth:`TraceColumns.from_instructions` / :meth:`TraceColumns.to_instructions`
round-trip every field bit-for-bit (property-tested in
``tests/test_columns.py``).  The columns themselves carry no per-record
validation; materialising an :class:`~repro.isa.instruction.Instruction`
re-runs the full dataclass validation.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, List, Sequence, Tuple

from repro.common.errors import TraceError
from repro.isa.instruction import InstrClass, Instruction

#: Stable instruction-class codes, shared with the binary trace container.
#: Appending is fine; reordering is a format change.
ICLASS_BY_CODE: Tuple[InstrClass, ...] = (
    InstrClass.INT_ALU,
    InstrClass.FP_ALU,
    InstrClass.BRANCH,
    InstrClass.LOAD,
    InstrClass.STORE,
)
CODE_BY_ICLASS = {iclass: code for code, iclass in enumerate(ICLASS_BY_CODE)}

#: Codes the engines special-case, exported so drive loops can bind them to
#: locals instead of re-deriving them from the enum.
CODE_INT_ALU = CODE_BY_ICLASS[InstrClass.INT_ALU]
CODE_FP_ALU = CODE_BY_ICLASS[InstrClass.FP_ALU]
CODE_BRANCH = CODE_BY_ICLASS[InstrClass.BRANCH]
CODE_LOAD = CODE_BY_ICLASS[InstrClass.LOAD]
CODE_STORE = CODE_BY_ICLASS[InstrClass.STORE]

FLAG_HAS_ADDRESS = 1 << 0
FLAG_MISPREDICTED = 1 << 1
FLAG_HAS_LATENCY = 1 << 2

#: Maximum number of source registers a column row can carry (matches the
#: fixed-width trace record).
MAX_SRCS = 4

#: (attribute, array typecode, itemsize) for every column, in the stable
#: order the binary container serialises them.
COLUMN_LAYOUT: Tuple[Tuple[str, str, int], ...] = (
    ("iclass", "B", 1),
    ("dest", "b", 1),
    ("src0", "b", 1),
    ("src1", "b", 1),
    ("src2", "b", 1),
    ("src3", "b", 1),
    ("address", "Q", 8),
    ("size", "H", 2),
    ("flags", "B", 1),
    ("latency", "I", 4),
)

# The container format promises fixed little-endian widths; stdlib array
# typecodes map to C types, so pin the assumption loudly rather than writing
# unreadable files on an exotic ABI.
for _name, _typecode, _itemsize in COLUMN_LAYOUT:
    if array(_typecode).itemsize != _itemsize:
        raise ImportError(
            f"array typecode {_typecode!r} has itemsize {array(_typecode).itemsize} "
            f"on this platform; the columnar trace layout requires {_itemsize}"
        )

_NEEDS_BYTESWAP = sys.byteorder == "big"


class TraceColumns:
    """Parallel typed columns describing one instruction stream.

    Columns are stdlib arrays when built in-process, or ``memoryview`` casts
    into a foreign buffer (a loaded container, a shared-memory segment) when
    constructed zero-copy via :meth:`from_buffers`.  Both kinds index to
    plain integers, which is all the drive loops consume.
    """

    __slots__ = (
        "iclass",
        "dest",
        "src0",
        "src1",
        "src2",
        "src3",
        "address",
        "size",
        "flags",
        "latency",
        "owner",
        "__weakref__",
    )

    def __init__(self) -> None:
        for name, typecode, _itemsize in COLUMN_LAYOUT:
            setattr(self, name, array(typecode))
        #: Optional object keeping a foreign buffer alive (e.g. the shared
        #: memory segment zero-copy columns point into).
        self.owner = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction]) -> "TraceColumns":
        """Build columns from instruction objects (each field copied out)."""
        columns = cls()
        append = columns.append_row
        code_by_iclass = CODE_BY_ICLASS
        for instruction in instructions:
            srcs = instruction.srcs
            if len(srcs) > MAX_SRCS:
                raise TraceError(
                    f"instruction {instruction.seq} has {len(srcs)} sources; the "
                    f"columnar layout holds at most {MAX_SRCS}"
                )
            padded = tuple(srcs) + (-1,) * (MAX_SRCS - len(srcs))
            flags = 0
            if instruction.address is not None:
                flags |= FLAG_HAS_ADDRESS
            if instruction.mispredicted:
                flags |= FLAG_MISPREDICTED
            if instruction.latency is not None:
                flags |= FLAG_HAS_LATENCY
            append(
                code_by_iclass[instruction.iclass],
                -1 if instruction.dest is None else instruction.dest,
                padded[0],
                padded[1],
                padded[2],
                padded[3],
                instruction.address or 0,
                instruction.size,
                flags,
                instruction.latency or 0,
            )
        return columns

    @classmethod
    def from_buffers(cls, buffers: Sequence, owner=None) -> "TraceColumns":
        """Wrap pre-existing per-column buffers without copying.

        ``buffers`` supplies one buffer per :data:`COLUMN_LAYOUT` entry, in
        layout order.  Each is cast to the column's typecode, so the caller
        may hand raw ``memoryview`` slices of a loaded container (or of a
        shared-memory segment) and the columns index straight into it.
        ``owner`` is retained on the instance to keep the underlying buffer
        alive for as long as the columns are.
        """
        if len(buffers) != len(COLUMN_LAYOUT):
            raise TraceError(
                f"expected {len(COLUMN_LAYOUT)} column buffers, got {len(buffers)}"
            )
        columns = cls.__new__(cls)
        columns.owner = owner
        length = None
        for (name, typecode, _itemsize), buffer in zip(COLUMN_LAYOUT, buffers):
            if isinstance(buffer, array):
                view = buffer
            else:
                view = memoryview(buffer).cast(typecode)
            if length is None:
                length = len(view)
            elif len(view) != length:
                raise TraceError(
                    f"column {name!r} holds {len(view)} entries, expected {length}"
                )
            setattr(columns, name, view)
        return columns

    def append_row(
        self,
        iclass_code: int,
        dest: int,
        src0: int,
        src1: int,
        src2: int,
        src3: int,
        address: int,
        size: int,
        flags: int,
        latency: int,
    ) -> None:
        """Append one instruction row (generator hot path)."""
        self.iclass.append(iclass_code)
        self.dest.append(dest)
        self.src0.append(src0)
        self.src1.append(src1)
        self.src2.append(src2)
        self.src3.append(src3)
        self.address.append(address)
        self.size.append(size)
        self.flags.append(flags)
        self.latency.append(latency)

    # ------------------------------------------------------------------
    # Introspection and conversion back to objects
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.iclass)

    def validate_codes(self) -> None:
        """Fail loudly when any class code falls outside the known table."""
        iclass = self.iclass
        if len(iclass) and max(iclass) >= len(ICLASS_BY_CODE):
            bad = max(iclass)
            raise TraceError(f"unknown instruction-class code {bad} in columns")

    def validate_canonical(self) -> None:
        """Reject streams no canonical writer produces (loader fail-loud path).

        The drive loops assume the invariants every in-process builder
        upholds: known class codes, sources left-packed (no absent slot
        before a present one), the has-address flag agreeing with the
        instruction class, misprediction only on branches, and positive
        memory access sizes.  A crafted or corrupted container violating
        them would otherwise simulate *differently* under the columnar fast
        loop than under the object-materialising reference walk -- exactly
        the divergence the engines promise cannot happen -- so container
        loading rejects such rows up front.
        """
        self.validate_codes()
        iclass = self.iclass
        flags = self.flags
        src0 = self.src0
        src1 = self.src1
        src2 = self.src2
        src3 = self.src3
        size = self.size
        for seq in range(len(iclass)):
            code = iclass[seq]
            row_flags = flags[seq]
            if code == CODE_LOAD or code == CODE_STORE:
                if not row_flags & FLAG_HAS_ADDRESS:
                    raise TraceError(f"row {seq}: memory operation without an address")
                if size[seq] == 0:
                    raise TraceError(f"row {seq}: memory access size must be positive")
            elif row_flags & FLAG_HAS_ADDRESS:
                raise TraceError(f"row {seq}: non-memory instruction carries an address")
            if row_flags & FLAG_MISPREDICTED and code != CODE_BRANCH:
                raise TraceError(f"row {seq}: only branches may be marked mispredicted")
            if src0[seq] < 0:
                if src1[seq] >= 0 or src2[seq] >= 0 or src3[seq] >= 0:
                    raise TraceError(f"row {seq}: source registers are not left-packed")
            elif src1[seq] < 0:
                if src2[seq] >= 0 or src3[seq] >= 0:
                    raise TraceError(f"row {seq}: source registers are not left-packed")
            elif src2[seq] < 0 and src3[seq] >= 0:
                raise TraceError(f"row {seq}: source registers are not left-packed")

    def srcs_tuple(self, seq: int) -> Tuple[int, ...]:
        """The source-register tuple of row ``seq`` (padding stripped)."""
        return tuple(
            src
            for src in (self.src0[seq], self.src1[seq], self.src2[seq], self.src3[seq])
            if src >= 0
        )

    def instruction(self, seq: int) -> Instruction:
        """Materialise row ``seq`` as a fully validated instruction object."""
        code = self.iclass[seq]
        try:
            iclass = ICLASS_BY_CODE[code]
        except IndexError:
            raise TraceError(f"row {seq}: unknown instruction-class code {code}") from None
        dest = self.dest[seq]
        flags = self.flags[seq]
        return Instruction(
            seq=seq,
            iclass=iclass,
            dest=None if dest < 0 else dest,
            srcs=self.srcs_tuple(seq),
            address=self.address[seq] if flags & FLAG_HAS_ADDRESS else None,
            size=self.size[seq],
            mispredicted=bool(flags & FLAG_MISPREDICTED),
            latency=self.latency[seq] if flags & FLAG_HAS_LATENCY else None,
        )

    def to_instructions(self) -> List[Instruction]:
        """Materialise every row (used when object-API callers need the list)."""
        return [self.instruction(seq) for seq in range(len(self))]

    # ------------------------------------------------------------------
    # Serialisation support
    # ------------------------------------------------------------------

    def column_bytes(self, name: str) -> bytes:
        """Little-endian raw bytes of one column (container serialisation)."""
        column = getattr(self, name)
        if isinstance(column, array):
            if _NEEDS_BYTESWAP and column.itemsize > 1:  # pragma: no cover - BE hosts
                swapped = array(column.typecode, column)
                swapped.byteswap()
                return swapped.tobytes()
            return column.tobytes()
        return bytes(column)

    def materialized(self) -> "TraceColumns":
        """Return an array-backed copy (detached from any foreign buffer)."""
        copy = TraceColumns.__new__(TraceColumns)
        copy.owner = None
        for name, typecode, _itemsize in COLUMN_LAYOUT:
            column = getattr(self, name)
            if isinstance(column, array):
                setattr(copy, name, array(typecode, column))
            else:
                fresh = array(typecode)
                fresh.frombytes(bytes(column))
                if _NEEDS_BYTESWAP and fresh.itemsize > 1:  # pragma: no cover
                    fresh.byteswap()
                setattr(copy, name, fresh)
        return copy

    # Memoryview-backed columns reference buffers (shared memory, mmap) that
    # cannot cross a pickle boundary; detach into plain arrays first.
    def __getstate__(self):
        materialized = self.materialized()
        return tuple(getattr(materialized, name) for name, _tc, _sz in COLUMN_LAYOUT)

    def __setstate__(self, state) -> None:
        self.owner = None
        for (name, _typecode, _itemsize), column in zip(COLUMN_LAYOUT, state):
            setattr(self, name, column)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return all(
            self.column_bytes(name) == other.column_bytes(name)
            for name, _tc, _sz in COLUMN_LAYOUT
        )

    def __repr__(self) -> str:
        kind = "view" if not isinstance(self.iclass, array) else "array"
        return f"TraceColumns({len(self)} instructions, {kind}-backed)"

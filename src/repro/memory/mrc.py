"""Miss-ratio-curve (MRC) profiler: miss rate versus cache size per policy.

A miss-ratio curve answers the first-order question of any cache study:
how fast does the miss rate fall as capacity grows, and how much of that
fall does the *replacement policy* capture?  The profiler replays the
load/store line stream of a recorded trace -- straight off the columnar
form, no timing model -- through :class:`~repro.memory.cache.SetAssociativeCache`
instances of increasing capacity, once per registered replacement policy,
and reports one curve per (workload, policy) pair.

Belady's OPT rides the same machinery: a first pass over the columnar
address stream computes each access's next-use position, the forward pass
maintains a ``line -> next use`` map, and :class:`~repro.memory.replacement.OptState`
consumes it as its oracle.  Because every registered policy is a per-set
demand policy over the same set mapping, per-set Belady is the lower bound:
OPT's miss ratio is <= every other policy's on the same trace at every size
-- an invariant :func:`policy_sweep` checks on every curve it emits.

The profiler is an experiment like any figure: ``policy-sweep`` in
:data:`repro.sim.experiments.EXPERIMENTS`, so the CLI
(``python -m repro policy-sweep``), the service (``repro submit
policy-sweep``) and the load harness all address it by name.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import StatsRegistry
from repro.isa.trace import Trace
from repro.memory.cache import SetAssociativeCache
from repro.memory.replacement import POLICY_NAMES, validate_policy_name

#: Artifact schema version of the MRC document (bump on breaking changes).
MRC_SCHEMA_VERSION = 1

#: Cache sizes the default sweep profiles, smallest first.
DEFAULT_SIZES_BYTES: Tuple[int, ...] = tuple(kb * 1024 for kb in (1, 2, 4, 8, 16, 32))

#: Geometry shared by every profiled size (the paper's L1 line/assoc).
DEFAULT_ASSOCIATIVITY = 4
DEFAULT_LINE_SIZE = 32


def line_stream(trace: Trace, line_size: int = DEFAULT_LINE_SIZE) -> List[int]:
    """The global line number of every load/store, in program order.

    Read straight from the columnar form -- no instruction objects are
    materialised, which is what makes the two OPT passes cheap.
    """
    from repro.isa.columns import CODE_LOAD, CODE_STORE

    columns = trace.columns()
    iclass = columns.iclass
    address = columns.address
    shift = line_size.bit_length() - 1
    return [
        address[seq] >> shift
        for seq in range(len(iclass))
        if iclass[seq] == CODE_LOAD or iclass[seq] == CODE_STORE
    ]


def next_use_positions(lines: Sequence[int]) -> List[float]:
    """For each access, the position of the line's next reference.

    The backward pass of the OPT oracle: ``result[i]`` is the smallest
    ``j > i`` with ``lines[j] == lines[i]``, or ``float("inf")`` when the
    line is never referenced again.
    """
    result: List[float] = [float("inf")] * len(lines)
    last_seen: Dict[int, int] = {}
    for position in range(len(lines) - 1, -1, -1):
        line = lines[position]
        next_position = last_seen.get(line)
        if next_position is not None:
            result[position] = next_position
        last_seen[line] = position
    return result


def simulate_miss_ratio(
    lines: Sequence[int],
    policy: str,
    size_bytes: int,
    *,
    associativity: int = DEFAULT_ASSOCIATIVITY,
    line_size: int = DEFAULT_LINE_SIZE,
) -> float:
    """Replay ``lines`` through one single-level cache; return its miss ratio.

    Uses the timing model's own :class:`SetAssociativeCache` (not a private
    reimplementation), so the curve reflects exactly the replacement
    behaviour the simulated machines exhibit.  For ``policy="opt"`` the
    two-pass future-reuse oracle is built here -- the one place in the tree
    where the future is knowable.
    """
    validate_policy_name(policy)
    config = CacheConfig(
        size_bytes=size_bytes,
        associativity=associativity,
        line_size=line_size,
        latency=0,
        name="mrc",
        replacement_policy=policy,
    )
    next_use = None
    if policy == "opt":
        next_of = next_use_positions(lines)
        upcoming: Dict[int, float] = {}
        for position in range(len(lines) - 1, -1, -1):
            upcoming[lines[position]] = position

        def next_use(line: int, _upcoming=upcoming) -> float:
            return _upcoming.get(line, float("inf"))

    stats = StatsRegistry()
    cache = SetAssociativeCache(config, stats, next_use=next_use)
    if not lines:
        return 0.0
    if policy == "opt":
        for position, line in enumerate(lines):
            # Advance the oracle *before* the access: every cached line's
            # entry then points at its next reference strictly after now,
            # which is exactly the future Belady compares victims on.
            upcoming[line] = next_of[position]
            cache.access(line * line_size)
    else:
        for line in lines:
            cache.access(line * line_size)
    misses = stats.value("mrc.misses")
    return misses / len(lines)


def miss_ratio_curve(
    lines: Sequence[int],
    policy: str,
    sizes_bytes: Sequence[int] = DEFAULT_SIZES_BYTES,
    *,
    associativity: int = DEFAULT_ASSOCIATIVITY,
    line_size: int = DEFAULT_LINE_SIZE,
) -> List[float]:
    """The policy's miss ratio at each profiled size, smallest first."""
    if not sizes_bytes:
        raise ConfigurationError("the MRC sweep needs at least one cache size")
    return [
        simulate_miss_ratio(
            lines, policy, size, associativity=associativity, line_size=line_size
        )
        for size in sizes_bytes
    ]


def profile_trace(
    trace: Trace,
    policies: Sequence[str] = POLICY_NAMES,
    sizes_bytes: Sequence[int] = DEFAULT_SIZES_BYTES,
    *,
    associativity: int = DEFAULT_ASSOCIATIVITY,
    line_size: int = DEFAULT_LINE_SIZE,
) -> Dict[str, object]:
    """One trace's MRC document: per-policy curves plus stream statistics."""
    lines = line_stream(trace, line_size)
    curves = {
        policy: miss_ratio_curve(
            lines, policy, sizes_bytes, associativity=associativity, line_size=line_size
        )
        for policy in policies
    }
    return {
        "trace": trace.name,
        "accesses": len(lines),
        "unique_lines": len(set(lines)),
        "miss_ratios": curves,
    }


def check_opt_lower_bound(document: Dict[str, object]) -> None:
    """Assert OPT's curve lower-bounds every policy's (per profiled trace).

    Per-set Belady with the true future is optimal among the per-set demand
    policies the registry contains; a violation means the oracle or a
    policy's bookkeeping is wrong, so it fails loudly rather than shipping
    a bogus artifact.
    """
    curves = document["miss_ratios"]
    opt = curves.get("opt")
    if opt is None:
        return
    for policy, curve in curves.items():
        for opt_ratio, ratio in zip(opt, curve):
            if opt_ratio > ratio + 1e-12:
                raise SimulationError(
                    f"OPT miss ratio {opt_ratio:.6f} exceeds {policy}'s "
                    f"{ratio:.6f} on trace {document['trace']!r}"
                )


def policy_sweep(context) -> Dict[str, object]:
    """The ``policy-sweep`` experiment: one MRC artifact per workload family.

    Profiles every member of every workload family at the campaign's trace
    length and seed, under every registered policy (including OPT -- this
    offline replay is where the future-reuse oracle exists).  The per-family
    ``curves`` block averages the members' miss ratios, giving the
    family-level miss-rate-versus-size picture the scenario matrix sweeps.
    """
    from repro.workloads.families import FAMILY_NAMES, family_suite
    from repro.workloads.suite import generate_member_trace

    sizes = list(DEFAULT_SIZES_BYTES)
    families: Dict[str, Dict[str, object]] = {}
    for family in FAMILY_NAMES:
        members = {}
        for member in family_suite(family).members:
            trace = generate_member_trace(
                member, context.instructions_per_workload, seed=context.seed
            )
            document = profile_trace(trace)
            check_opt_lower_bound(document)
            members[member.name] = document
        curves = {
            policy: [
                sum(member["miss_ratios"][policy][index] for member in members.values())
                / len(members)
                for index in range(len(sizes))
            ]
            for policy in POLICY_NAMES
        }
        families[family] = {"members": members, "curves": curves}
    return {
        "artifact": "repro-mrc",
        "schema_version": MRC_SCHEMA_VERSION,
        "instructions": context.instructions_per_workload,
        "seed": context.seed,
        "line_size": DEFAULT_LINE_SIZE,
        "associativity": DEFAULT_ASSOCIATIVITY,
        "sizes_bytes": sizes,
        "policies": list(POLICY_NAMES),
        "families": families,
    }

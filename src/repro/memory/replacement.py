"""LRU replacement state with lock awareness.

The line-based Epoch Resolution Table (Section 3.4 of the paper) requires
that every line referenced by an address-known low-locality memory
instruction stay resident in the L1 until its epoch commits.  The paper
implements this by letting the replacement algorithm skip locked lines:

    "Locking cache lines does not involve any additional structures as the
    replacement algorithm can take care of everything.  It will only replace
    lines for which there are no active bits in the ERT."

:class:`LruState` models the recency ordering of one cache set and picks
victims accordingly: the least recently used *unlocked* way.  When every way
of the set is locked there is no victim and the caller must fall back to the
paper's stall / squash handling.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError, SimulationError


class LruState:
    """Recency ordering of the ways of a single cache set.

    Way indices run from 0 to ``associativity - 1``.  The state tracks, for
    every way, its position in the recency stack (position 0 = most recently
    used) and whether the way is currently locked against replacement.
    """

    __slots__ = ("_order", "_locked")

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigurationError(f"associativity must be positive, got {associativity}")
        #: recency stack: _order[0] is the most recently used way index.
        self._order: List[int] = list(range(associativity))
        self._locked: List[bool] = [False] * associativity

    @property
    def associativity(self) -> int:
        """Number of ways tracked by this state."""
        return len(self._order)

    def touch(self, way: int) -> None:
        """Mark ``way`` as the most recently used.

        This is the hottest method of the cache model, so the bounds check
        rides on the list search itself (a zero-cost ``try`` in the common
        case) instead of a separate validation pass per access.
        """
        order = self._order
        try:
            order.remove(way)
        except ValueError:
            self._validate_way(way)
            raise
        order.insert(0, way)

    def lock(self, way: int) -> None:
        """Protect ``way`` against replacement."""
        self._validate_way(way)
        self._locked[way] = True

    def unlock(self, way: int) -> None:
        """Allow ``way`` to be replaced again."""
        self._validate_way(way)
        self._locked[way] = False

    def is_locked(self, way: int) -> bool:
        """Whether ``way`` is currently locked."""
        self._validate_way(way)
        return self._locked[way]

    def locked_count(self) -> int:
        """Number of locked ways in the set."""
        return sum(1 for locked in self._locked if locked)

    def all_locked(self) -> bool:
        """Whether every way of the set is locked (no victim available)."""
        return all(self._locked)

    def victim(self) -> Optional[int]:
        """Return the way to evict: the least recently used unlocked way.

        Returns ``None`` when every way is locked, which callers must treat
        as a replacement conflict (the paper stalls insertion or squashes).
        """
        for way in reversed(self._order):
            if not self._locked[way]:
                return way
        return None

    def recency_position(self, way: int) -> int:
        """Return the recency position of ``way`` (0 = most recently used)."""
        self._validate_way(way)
        return self._order.index(way)

    def _validate_way(self, way: int) -> None:
        if not 0 <= way < len(self._order):
            raise SimulationError(
                f"way {way} out of range for a {len(self._order)}-way set"
            )

"""Lock-aware replacement policies for set-associative caches.

The line-based Epoch Resolution Table (Section 3.4 of the paper) requires
that every line referenced by an address-known low-locality memory
instruction stay resident in the L1 until its epoch commits.  The paper
implements this by letting the replacement algorithm skip locked lines:

    "Locking cache lines does not involve any additional structures as the
    replacement algorithm can take care of everything.  It will only replace
    lines for which there are no active bits in the ERT."

The paper evaluates LRU only, but the locking contract is a property of the
*replacement interface*, not of any one algorithm: any policy that never
returns a locked way from :meth:`ReplacementPolicy.victim` satisfies it.
This module therefore defines the abstract lock-aware contract, a registry
of implementations (:data:`POLICY_NAMES`, :func:`create_policy`) and six
policies:

* ``lru`` -- :class:`LruState`, the paper's policy (bit-identical to the
  original single-policy implementation);
* ``fifo`` -- :class:`FifoState`, eviction in insertion order;
* ``lfu`` -- :class:`LfuState`, least frequently used with deterministic
  lowest-way tie-breaking;
* ``2q`` -- :class:`TwoQState`, a probationary FIFO (A1) feeding a
  protected LRU list (Am) on reuse;
* ``arc`` -- :class:`ArcState`, adaptive replacement with per-set ghost
  lists of recently evicted line numbers;
* ``opt`` -- :class:`OptState`, Belady's offline optimum.  It needs a
  future-reuse oracle, so it is only constructible where one exists (the
  miss-ratio-curve profiler's two-pass sweep, :mod:`repro.memory.mrc`);
  :func:`create_policy` without an oracle rejects it.

Every policy shares one locking substrate (:class:`ReplacementPolicy`):
``lock``/``unlock`` toggle per-way lock bits and every ``victim``
implementation skips locked ways symmetrically, returning ``None`` when the
whole set is locked (the caller falls back to the paper's stall / squash
handling).  ``capture``/``restore`` snapshot the policy's decision state so
the fast engine's warm-up memo can replay it exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.common.errors import ConfigurationError, SimulationError

#: Every registered policy name, in registry order.
POLICY_NAMES: Tuple[str, ...] = ("lru", "fifo", "lfu", "2q", "arc", "opt")

#: The policies a *timing* cache can run online.  ``opt`` needs future
#: knowledge of the reference stream, which only the two-pass miss-ratio
#: profiler has; an online simulation asking for it is a configuration
#: error, not a silent approximation.
TIMING_POLICY_NAMES: Tuple[str, ...] = ("lru", "fifo", "lfu", "2q", "arc")


class ReplacementPolicy:
    """Lock-aware replacement state of one cache set.

    Way indices run from 0 to ``associativity - 1``.  Subclasses implement
    the decision state (:meth:`touch`, :meth:`insert`, :meth:`victim`,
    :meth:`capture`, :meth:`restore`); the locking substrate is shared so
    the "never evict a locked way" contract cannot drift per policy.
    """

    __slots__ = ("_locked",)

    #: Registry name of the policy (set per subclass).
    name = "abstract"

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigurationError(f"associativity must be positive, got {associativity}")
        self._locked: List[bool] = [False] * associativity

    @property
    def associativity(self) -> int:
        """Number of ways tracked by this state."""
        return len(self._locked)

    # ------------------------------------------------------------------
    # Decision state (per policy)
    # ------------------------------------------------------------------

    def touch(self, way: int) -> None:
        """Record a hit on ``way`` (a reuse event)."""
        raise NotImplementedError

    def insert(self, way: int, line: Optional[int] = None) -> None:
        """Record a fill of ``way`` with ``line`` (a miss-allocation event).

        ``line`` is the global line number being installed; policies that
        key history by line identity (ARC's ghost lists, OPT's oracle
        lookups) need it, the others ignore it.
        """
        raise NotImplementedError

    def victim(self) -> Optional[int]:
        """Return the way to evict, never a locked one.

        Returns ``None`` when every way is locked, which callers must treat
        as a replacement conflict (the paper stalls insertion or squashes).
        """
        raise NotImplementedError

    def capture(self) -> Any:
        """Snapshot the decision state (lock bits are warm-up-free)."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Restore a snapshot previously produced by :meth:`capture`."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Locking substrate (shared)
    # ------------------------------------------------------------------

    def lock(self, way: int) -> None:
        """Protect ``way`` against replacement."""
        self._validate_way(way)
        self._locked[way] = True

    def unlock(self, way: int) -> None:
        """Allow ``way`` to be replaced again."""
        self._validate_way(way)
        self._locked[way] = False

    def is_locked(self, way: int) -> bool:
        """Whether ``way`` is currently locked."""
        self._validate_way(way)
        return self._locked[way]

    def locked_count(self) -> int:
        """Number of locked ways in the set."""
        return sum(1 for locked in self._locked if locked)

    def all_locked(self) -> bool:
        """Whether every way of the set is locked (no victim available)."""
        return all(self._locked)

    def _validate_way(self, way: int) -> None:
        if not 0 <= way < len(self._locked):
            raise SimulationError(
                f"way {way} out of range for a {len(self._locked)}-way set"
            )


class LruState(ReplacementPolicy):
    """Recency ordering of the ways of a single cache set (the paper's policy).

    The state tracks, for every way, its position in the recency stack
    (position 0 = most recently used); the victim is the least recently
    used unlocked way.
    """

    __slots__ = ("_order",)

    name = "lru"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        #: recency stack: _order[0] is the most recently used way index.
        self._order: List[int] = list(range(associativity))

    def touch(self, way: int) -> None:
        """Mark ``way`` as the most recently used.

        This is the hottest method of the cache model, so the bounds check
        rides on the list search itself (a zero-cost ``try`` in the common
        case) instead of a separate validation pass per access.
        """
        order = self._order
        try:
            order.remove(way)
        except ValueError:
            self._validate_way(way)
            raise
        order.insert(0, way)

    def insert(self, way: int, line: Optional[int] = None) -> None:
        """A fill is a recency event: identical to :meth:`touch` for LRU."""
        self.touch(way)

    def victim(self) -> Optional[int]:
        for way in reversed(self._order):
            if not self._locked[way]:
                return way
        return None

    def recency_position(self, way: int) -> int:
        """Return the recency position of ``way`` (0 = most recently used)."""
        self._validate_way(way)
        return self._order.index(way)

    def capture(self) -> Tuple[int, ...]:
        return tuple(self._order)

    def restore(self, state: Tuple[int, ...]) -> None:
        self._order = list(state)


class FifoState(ReplacementPolicy):
    """First-in first-out: evict in fill order, hits never reorder."""

    __slots__ = ("_queue",)

    name = "fifo"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        #: fill queue: _queue[0] is the oldest (next victim) way index.
        self._queue: List[int] = list(range(associativity))

    def touch(self, way: int) -> None:
        self._validate_way(way)  # hits do not reorder a FIFO

    def insert(self, way: int, line: Optional[int] = None) -> None:
        queue = self._queue
        try:
            queue.remove(way)
        except ValueError:
            self._validate_way(way)
            raise
        queue.append(way)

    def victim(self) -> Optional[int]:
        for way in self._queue:
            if not self._locked[way]:
                return way
        return None

    def capture(self) -> Tuple[int, ...]:
        return tuple(self._queue)

    def restore(self, state: Tuple[int, ...]) -> None:
        self._queue = list(state)


class LfuState(ReplacementPolicy):
    """Least frequently used, lowest-way tie-break.

    Frequency counts reset on fill (a new line does not inherit its way's
    history).  Ties pick the lowest way index so the policy is a pure
    function of the access sequence.
    """

    __slots__ = ("_counts",)

    name = "lfu"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._counts: List[int] = [0] * associativity

    def touch(self, way: int) -> None:
        self._validate_way(way)
        self._counts[way] += 1

    def insert(self, way: int, line: Optional[int] = None) -> None:
        self._validate_way(way)
        self._counts[way] = 1

    def victim(self) -> Optional[int]:
        best: Optional[int] = None
        best_count = 0
        for way, count in enumerate(self._counts):
            if self._locked[way]:
                continue
            if best is None or count < best_count:
                best = way
                best_count = count
        return best

    def capture(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    def restore(self, state: Tuple[int, ...]) -> None:
        self._counts = list(state)


class TwoQState(ReplacementPolicy):
    """Simplified 2Q: a probationary FIFO (A1) and a protected LRU list (Am).

    Fills enter A1; a hit promotes the way into Am (or refreshes its Am
    recency).  Victims drain A1 in FIFO order first -- lines touched only
    once never displace the protected working set -- then fall back to the
    LRU end of Am.
    """

    __slots__ = ("_a1", "_am")

    name = "2q"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        #: probationary FIFO: _a1[0] is the oldest (first victim) way.
        self._a1: List[int] = list(range(associativity))
        #: protected list: _am[0] is the most recently used way.
        self._am: List[int] = []

    def touch(self, way: int) -> None:
        self._validate_way(way)
        if way in self._a1:
            self._a1.remove(way)
            self._am.insert(0, way)
        else:
            self._am.remove(way)
            self._am.insert(0, way)

    def insert(self, way: int, line: Optional[int] = None) -> None:
        self._validate_way(way)
        if way in self._a1:
            self._a1.remove(way)
        else:
            self._am.remove(way)
        self._a1.append(way)

    def victim(self) -> Optional[int]:
        for way in self._a1:
            if not self._locked[way]:
                return way
        for way in reversed(self._am):
            if not self._locked[way]:
                return way
        return None

    def capture(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (tuple(self._a1), tuple(self._am))

    def restore(self, state: Tuple[Tuple[int, ...], Tuple[int, ...]]) -> None:
        a1, am = state
        self._a1 = list(a1)
        self._am = list(am)


class ArcState(ReplacementPolicy):
    """Adaptive replacement (ARC) over one set, with per-set ghost lists.

    T1 holds ways whose line was referenced once since fill, T2 ways whose
    line was reused; B1/B2 are bounded ghost lists of *line numbers*
    recently evicted from T1/T2.  A miss whose line is remembered by a
    ghost list grows the corresponding live list's target size (the
    integer ``p`` = T1's target length), so the set adapts between
    recency-favouring and frequency-favouring behaviour.
    """

    __slots__ = ("_t1", "_t2", "_b1", "_b2", "_p", "_lines")

    name = "arc"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        #: live lists: index 0 is the LRU end, the last element the MRU end.
        self._t1: List[int] = list(range(associativity))
        self._t2: List[int] = []
        #: ghost lists of evicted line numbers, oldest first, <= assoc long.
        self._b1: List[int] = []
        self._b2: List[int] = []
        #: target length of T1 (integer for exact reproducibility).
        self._p = 0
        #: line currently installed in each way (None = never filled).
        self._lines: List[Optional[int]] = [None] * associativity

    def touch(self, way: int) -> None:
        self._validate_way(way)
        if way in self._t1:
            self._t1.remove(way)
        else:
            self._t2.remove(way)
        self._t2.append(way)

    def insert(self, way: int, line: Optional[int] = None) -> None:
        self._validate_way(way)
        evicted = self._lines[way]
        if way in self._t1:
            self._t1.remove(way)
            ghost = self._b1
        else:
            self._t2.remove(way)
            ghost = self._b2
        if evicted is not None:
            ghost.append(evicted)
            if len(ghost) > self.associativity:
                ghost.pop(0)
        if line is not None and line in self._b1:
            self._p = min(self.associativity, self._p + max(1, len(self._b2) // max(1, len(self._b1))))
            self._b1.remove(line)
            self._t2.append(way)
        elif line is not None and line in self._b2:
            self._p = max(0, self._p - max(1, len(self._b1) // max(1, len(self._b2))))
            self._b2.remove(line)
            self._t2.append(way)
        else:
            self._t1.append(way)
        self._lines[way] = line

    def victim(self) -> Optional[int]:
        prefer_t1 = len(self._t1) > self._p or not self._t2
        lists = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for ways in lists:
            for way in ways:
                if not self._locked[way]:
                    return way
        return None

    def capture(self) -> Tuple[Any, ...]:
        return (
            tuple(self._t1),
            tuple(self._t2),
            tuple(self._b1),
            tuple(self._b2),
            self._p,
            tuple(self._lines),
        )

    def restore(self, state: Tuple[Any, ...]) -> None:
        t1, t2, b1, b2, p, lines = state
        self._t1 = list(t1)
        self._t2 = list(t2)
        self._b1 = list(b1)
        self._b2 = list(b2)
        self._p = p
        self._lines = list(lines)


class OptState(ReplacementPolicy):
    """Belady's optimum: evict the line whose next reference is farthest.

    Needs a *future-reuse oracle* ``next_use(line) -> position`` returning
    the stream position of the line's next reference (``float("inf")``
    when the line is never referenced again).  The miss-ratio-curve
    profiler builds the oracle in a first pass over the recorded columnar
    trace; an online timing simulation has no such pass, so
    :func:`create_policy` refuses ``"opt"`` without an oracle.
    """

    __slots__ = ("_next_use", "_lines")

    name = "opt"

    def __init__(self, associativity: int, next_use: Callable[[int], float]) -> None:
        super().__init__(associativity)
        self._next_use = next_use
        self._lines: List[Optional[int]] = [None] * associativity

    def touch(self, way: int) -> None:
        self._validate_way(way)  # the oracle already knows the future

    def insert(self, way: int, line: Optional[int] = None) -> None:
        self._validate_way(way)
        self._lines[way] = line

    def victim(self) -> Optional[int]:
        best: Optional[int] = None
        best_distance = -1.0
        for way, line in enumerate(self._lines):
            if self._locked[way]:
                continue
            distance = float("inf") if line is None else self._next_use(line)
            if distance > best_distance:
                best = way
                best_distance = distance
        return best

    def capture(self) -> Tuple[Optional[int], ...]:
        return tuple(self._lines)

    def restore(self, state: Tuple[Optional[int], ...]) -> None:
        self._lines = list(state)


_POLICY_CLASSES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LruState,
    "fifo": FifoState,
    "lfu": LfuState,
    "2q": TwoQState,
    "arc": ArcState,
    "opt": OptState,
}


def validate_policy_name(name: str, *, timing_only: bool = False) -> str:
    """Validate a policy name against the registry and return it.

    ``timing_only`` additionally rejects ``"opt"``, which cannot run in an
    online timing simulation (no future-reuse oracle exists there).
    """
    allowed = TIMING_POLICY_NAMES if timing_only else POLICY_NAMES
    if name not in allowed:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; expected one of {', '.join(allowed)}"
        )
    return name


def create_policy(
    name: str,
    associativity: int,
    *,
    next_use: Optional[Callable[[int], float]] = None,
) -> ReplacementPolicy:
    """Build one set's replacement state for the named policy.

    ``next_use`` is the future-reuse oracle ``opt`` requires; passing it
    for any other policy is harmless (they ignore the future).
    """
    validate_policy_name(name)
    if name == "opt":
        if next_use is None:
            raise ConfigurationError(
                "replacement policy 'opt' needs a future-reuse oracle; it is "
                "only available offline (the miss-ratio-curve profiler), not "
                "in online timing simulations"
            )
        return OptState(associativity, next_use)
    return _POLICY_CLASSES[name](associativity)

"""Cache hierarchy substrate.

The paper's default memory system (Table 1) is a 32 KB 4-way L1 with 32-byte
lines and 1-cycle latency, a 2 MB 4-way L2 with 10-cycle latency and a
400-cycle main memory.  This package provides:

* :mod:`repro.memory.replacement` -- the lock-aware replacement-policy
  registry (LRU, FIFO, LFU, 2Q, ARC and the offline Belady OPT oracle).
  Every policy supports *locked* ways (needed by the line-based Epoch
  Resolution Table, which pins lines referenced by in-flight low-locality
  memory instructions) and never evicts one.
* :mod:`repro.memory.cache` -- a set-associative cache model with per-line
  lock/unlock bookkeeping and access statistics.
* :mod:`repro.memory.hierarchy` -- the two-level hierarchy plus main memory,
  returning the access latency and the level that serviced each access.
* :mod:`repro.memory.mrc` -- the miss-ratio-curve profiler: miss rate versus
  cache size per workload family, for every registered policy.
"""

from repro.memory.cache import AccessResult, SetAssociativeCache
from repro.memory.hierarchy import HierarchyAccess, MemoryHierarchy, MemoryLevel
from repro.memory.replacement import (
    POLICY_NAMES,
    TIMING_POLICY_NAMES,
    ArcState,
    FifoState,
    LfuState,
    LruState,
    OptState,
    ReplacementPolicy,
    TwoQState,
    create_policy,
    validate_policy_name,
)

__all__ = [
    "AccessResult",
    "ArcState",
    "FifoState",
    "HierarchyAccess",
    "LfuState",
    "LruState",
    "MemoryHierarchy",
    "MemoryLevel",
    "OptState",
    "POLICY_NAMES",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "TIMING_POLICY_NAMES",
    "TwoQState",
    "create_policy",
    "validate_policy_name",
]

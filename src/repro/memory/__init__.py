"""Cache hierarchy substrate.

The paper's default memory system (Table 1) is a 32 KB 4-way L1 with 32-byte
lines and 1-cycle latency, a 2 MB 4-way L2 with 10-cycle latency and a
400-cycle main memory.  This package provides:

* :mod:`repro.memory.replacement` -- LRU replacement state with support for
  *locked* ways (needed by the line-based Epoch Resolution Table, which pins
  lines referenced by in-flight low-locality memory instructions).
* :mod:`repro.memory.cache` -- a set-associative cache model with per-line
  lock/unlock bookkeeping and access statistics.
* :mod:`repro.memory.hierarchy` -- the two-level hierarchy plus main memory,
  returning the access latency and the level that serviced each access.
"""

from repro.memory.cache import AccessResult, SetAssociativeCache
from repro.memory.hierarchy import HierarchyAccess, MemoryHierarchy, MemoryLevel
from repro.memory.replacement import LruState

__all__ = [
    "AccessResult",
    "HierarchyAccess",
    "LruState",
    "MemoryHierarchy",
    "MemoryLevel",
    "SetAssociativeCache",
]

"""A set-associative cache with line locking.

:class:`SetAssociativeCache` models tag state (which lines are resident), a
pluggable lock-aware replacement policy (``CacheConfig.replacement_policy``,
resolved through :func:`repro.memory.replacement.create_policy`) and the
per-line *lock* bookkeeping required by the line-based Epoch Resolution
Table.  It does not model data contents -- the simulator is trace driven --
only residency, which is all the timing and filtering models need.

Locking semantics (Section 3.4 of the paper):

* A line may be locked by one or more *owners* (epochs).  A locked line is
  never chosen as a replacement victim.
* Locking a non-resident line first allocates it ("the data need not be
  available").  If every way of the target set is already locked the
  allocation fails and the caller must stall or squash -- the cache reports
  this as a :class:`LockResult` with ``conflict=True``.
* When an epoch commits, :meth:`SetAssociativeCache.unlock_owner` clears all
  of its locks in one sweep, mirroring how clearing the epoch's ERT column
  implicitly unlocks its lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.memory.replacement import ReplacementPolicy, create_policy


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    evicted_line: Optional[int]
    #: True when the access wanted to allocate but every way was locked.
    allocation_blocked: bool = False


@dataclass(frozen=True)
class LockResult:
    """Outcome of a lock request from the line-based ERT."""

    locked: bool
    conflict: bool
    allocated: bool


#: Shared outcome singletons for the two result shapes that carry no
#: per-access payload; the access path is hot enough that allocating a fresh
#: frozen dataclass per hit shows up in profiles.
_HIT_RESULT = AccessResult(hit=True, evicted_line=None)
_MISS_RESULT = AccessResult(hit=False, evicted_line=None)


class SetAssociativeCache:
    """Tag-state model of one cache level.

    Parameters
    ----------
    config:
        Geometry and latency of the cache.
    stats:
        Optional statistics registry; access counters are recorded under
        ``{name}.hits``, ``{name}.misses``, ``{name}.evictions`` and
        ``{name}.lock_conflicts``.
    next_use:
        Future-reuse oracle required by the ``opt`` replacement policy
        (see :class:`repro.memory.replacement.OptState`); ignored by every
        online policy.  Constructing an ``opt`` cache without it raises
        :class:`~repro.common.errors.ConfigurationError`.
    """

    def __init__(
        self,
        config: CacheConfig,
        stats: Optional[StatsRegistry] = None,
        *,
        next_use: Optional[Callable[[int], float]] = None,
    ) -> None:
        self.config = config
        self._stats = stats if stats is not None else StatsRegistry()
        #: When False, accesses update tag/LRU state but record no statistics
        #: (used by the functional cache warm-up pass).
        self.stats_enabled = True
        self._num_sets = config.num_sets
        self._line_shift = config.line_size.bit_length() - 1
        # Counter names are fixed per cache; formatting them on every access
        # would dominate the (very hot) tag-probe path.
        self._hits_name = f"{config.name}.hits"
        self._misses_name = f"{config.name}.misses"
        self._evictions_name = f"{config.name}.evictions"
        self._lock_conflicts_name = f"{config.name}.lock_conflicts"
        self._lines_locked_name = f"{config.name}.lines_locked"
        #: per-set mapping from way index to resident line number (tag+index).
        self._tags: List[List[Optional[int]]] = [
            [None] * config.associativity for _ in range(self._num_sets)
        ]
        #: per-set replacement state (the attribute name predates the policy
        #: registry; every policy, not just LRU, lives here).
        self._lru: List[ReplacementPolicy] = [
            create_policy(config.replacement_policy, config.associativity, next_use=next_use)
            for _ in range(self._num_sets)
        ]
        #: line number -> set of lock owners.
        self._lock_owners: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        if self.stats_enabled:
            self._stats.bump(name, amount)

    def line_number(self, address: int) -> int:
        """Return the global line number containing ``address``."""
        return address >> self._line_shift

    def set_index(self, address: int) -> int:
        """Return the set index for ``address``."""
        return self.line_number(address) % self._num_sets

    # ------------------------------------------------------------------
    # Residency queries and accesses
    # ------------------------------------------------------------------

    def is_resident(self, address: int) -> bool:
        """Whether the line containing ``address`` is currently resident."""
        return self._find_way(address) is not None

    def access(self, address: int, allocate_on_miss: bool = True) -> AccessResult:
        """Access ``address``: update LRU on a hit, allocate on a miss.

        When ``allocate_on_miss`` is false the access only probes the tags
        (used for residency checks that must not disturb state).
        """
        line = address >> self._line_shift
        set_index = line % self._num_sets
        try:
            way = self._tags[set_index].index(line)
        except ValueError:
            way = -1
        if way >= 0:
            self._lru[set_index].touch(way)
            if self.stats_enabled:
                self._stats.bump(self._hits_name)
            return _HIT_RESULT
        if self.stats_enabled:
            self._stats.bump(self._misses_name)
        if not allocate_on_miss:
            return _MISS_RESULT
        evicted, blocked = self._allocate(address)
        return AccessResult(hit=False, evicted_line=evicted, allocation_blocked=blocked)

    def probe(self, address: int) -> bool:
        """Probe the tags without updating LRU or allocating."""
        return self._find_way(address) is not None

    # ------------------------------------------------------------------
    # Line locking (line-based ERT support)
    # ------------------------------------------------------------------

    def lock_line(self, address: int, owner: int) -> LockResult:
        """Lock the line containing ``address`` on behalf of ``owner``.

        Allocates the line if it is not resident.  Returns ``conflict=True``
        without changing any state when allocation is required but every way
        of the set is locked.
        """
        line = self.line_number(address)
        set_index = self.set_index(address)
        way = self._find_way(address)
        allocated = False
        if way is None:
            if self._lru[set_index].all_locked():
                self._bump(self._lock_conflicts_name)
                return LockResult(locked=False, conflict=True, allocated=False)
            evicted, blocked = self._allocate(address)
            if blocked:
                self._bump(self._lock_conflicts_name)
                return LockResult(locked=False, conflict=True, allocated=False)
            way = self._find_way(address)
            allocated = True
            if way is None:
                raise SimulationError("allocation succeeded but the line is not resident")
        # The counter tracks *distinct* lines locked (the locked_line_count
        # semantics): bump only on the unlocked -> locked transition, not
        # when a resident locked line merely gains another owner.
        first_lock = line not in self._lock_owners
        owners = self._lock_owners.setdefault(line, set())
        owners.add(owner)
        self._lru[set_index].lock(way)
        if first_lock:
            self._bump(self._lines_locked_name)
        return LockResult(locked=True, conflict=False, allocated=allocated)

    def unlock_owner(self, owner: int) -> int:
        """Release every lock held by ``owner``; return the number released."""
        released = 0
        for line, owners in list(self._lock_owners.items()):
            if owner in owners:
                owners.discard(owner)
                released += 1
                if not owners:
                    del self._lock_owners[line]
                    self._unlock_way_for_line(line)
        return released

    def is_locked(self, address: int) -> bool:
        """Whether the line containing ``address`` is locked by any owner."""
        return bool(self._lock_owners.get(self.line_number(address)))

    def locked_line_count(self) -> int:
        """Number of distinct lines currently locked."""
        return len(self._lock_owners)

    def set_fully_locked(self, address: int) -> bool:
        """Whether every way of the set containing ``address`` is locked."""
        return self._lru[self.set_index(address)].all_locked()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _find_way(self, address: int) -> Optional[int]:
        line = address >> self._line_shift
        try:
            return self._tags[line % self._num_sets].index(line)
        except ValueError:
            return None

    def _allocate(self, address: int) -> Tuple[Optional[int], bool]:
        """Allocate the line containing ``address``; return (evicted_line, blocked)."""
        line = address >> self._line_shift
        set_index = line % self._num_sets
        lru = self._lru[set_index]
        victim_way = lru.victim()
        if victim_way is None:
            return None, True
        set_tags = self._tags[set_index]
        evicted = set_tags[victim_way]
        if evicted is not None and self.stats_enabled:
            self._stats.bump(self._evictions_name)
            # A victim is never locked, so no lock bookkeeping to clean up.
        set_tags[victim_way] = line
        lru.insert(victim_way, line)
        return evicted, False

    def _unlock_way_for_line(self, line: int) -> None:
        set_index = line % self._num_sets
        set_tags = self._tags[set_index]
        for way, resident in enumerate(set_tags):
            if resident == line:
                self._lru[set_index].unlock(way)
                return
        # The line may have been evicted only if it was never resident while
        # locked; reaching here indicates an accounting bug.
        raise SimulationError(f"locked line {line} is not resident in set {set_index}")

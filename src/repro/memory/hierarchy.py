"""The L1 / L2 / main-memory hierarchy.

:class:`MemoryHierarchy` composes two :class:`~repro.memory.cache.SetAssociativeCache`
levels with a fixed-latency main memory and answers the only question the
timing models ask: *how long does this access take, and which level serviced
it?*  Inclusive allocation is modelled (a miss allocates in both levels), and
write accesses allocate like reads (write-allocate, write-back behaviour at
the granularity the timing model needs).

The hierarchy also exposes the L1 line-locking interface used by the
line-based Epoch Resolution Table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.config import MemoryHierarchyConfig
from repro.common.stats import StatsRegistry
from repro.memory.cache import LockResult, SetAssociativeCache


class MemoryLevel(enum.Enum):
    """The level of the hierarchy that serviced an access."""

    L1 = "l1"
    L2 = "l2"
    MAIN_MEMORY = "memory"


@dataclass(frozen=True)
class HierarchyAccess:
    """Outcome of one access to the hierarchy."""

    level: MemoryLevel
    latency: int

    @property
    def is_l2_miss(self) -> bool:
        """Whether the access had to go to main memory."""
        return self.level is MemoryLevel.MAIN_MEMORY

    @property
    def is_l1_hit(self) -> bool:
        """Whether the access hit in the first-level cache."""
        return self.level is MemoryLevel.L1


class MemoryHierarchy:
    """Two cache levels plus main memory with Table 1 latencies."""

    def __init__(
        self, config: Optional[MemoryHierarchyConfig] = None, stats: Optional[StatsRegistry] = None
    ) -> None:
        self.config = config if config is not None else MemoryHierarchyConfig()
        self.stats = stats if stats is not None else StatsRegistry()
        self.l1 = SetAssociativeCache(self.config.l1, self.stats)
        self.l2 = SetAssociativeCache(self.config.l2, self.stats)

    def access(self, address: int, is_write: bool = False) -> HierarchyAccess:
        """Perform an access and return the servicing level and total latency.

        Latency is cumulative: an L2 hit pays L1 + L2 latency, a main-memory
        access pays L1 + L2 + memory latency, matching the lookup-then-miss
        flow of a real hierarchy.
        """
        self.stats.bump("hierarchy.accesses")
        if is_write:
            self.stats.bump("hierarchy.writes")
        else:
            self.stats.bump("hierarchy.reads")

        l1_result = self.l1.access(address)
        if l1_result.hit:
            return HierarchyAccess(level=MemoryLevel.L1, latency=self.config.l1.latency)

        l2_result = self.l2.access(address)
        if l2_result.hit:
            latency = self.config.l1.latency + self.config.l2.latency
            return HierarchyAccess(level=MemoryLevel.L2, latency=latency)

        latency = (
            self.config.l1.latency + self.config.l2.latency + self.config.main_memory_latency
        )
        self.stats.bump("hierarchy.main_memory_accesses")
        return HierarchyAccess(level=MemoryLevel.MAIN_MEMORY, latency=latency)

    def warm_up(self, addresses) -> int:
        """Functionally warm the caches with ``addresses`` (no statistics recorded).

        Trace-driven runs over a few tens of thousands of instructions would
        otherwise be dominated by compulsory misses that a real SimPoint-length
        execution has long amortised.  The warm-up performs one stats-silent
        pass of the given addresses through the hierarchy so that the timed run
        starts from a steady-state tag state: structures that fit in a cache
        level are resident, structures that do not keep missing.

        Returns the number of addresses replayed.
        """
        self.l1.stats_enabled = False
        self.l2.stats_enabled = False
        count = 0
        try:
            for address in addresses:
                l1_result = self.l1.access(address)
                if not l1_result.hit:
                    self.l2.access(address)
                count += 1
        finally:
            self.l1.stats_enabled = True
            self.l2.stats_enabled = True
        return count

    def warm_up_regions(self, regions) -> int:
        """Warm the caches from data-region footprints (stats-silent).

        Short synthetic traces cannot establish cache residency the way a
        SimPoint-length execution does, so the warm-up reconstructs the steady
        state analytically: every region's lines are replayed into the caches
        in *increasing access-density* order, so the most frequently accessed
        data is inserted last and survives LRU replacement.  Regions larger
        than a cache level naturally overflow it and keep missing during the
        timed run, which is exactly the paper's steady-state behaviour.

        ``regions`` is an iterable of
        :class:`~repro.isa.trace.RegionFootprint`.  Returns the number of
        line insertions performed.
        """
        footprints = sorted(regions, key=lambda region: region.access_density)
        if not footprints:
            return 0
        self.l1.stats_enabled = False
        self.l2.stats_enabled = False
        insertions = 0
        try:
            l2_line = self.config.l2.line_size
            l2_capacity_lines = self.config.l2.num_lines
            l1_line = self.config.l1.line_size
            l1_capacity_lines = self.config.l1.num_lines
            for region in footprints:
                lines_in_region = max(1, region.size_bytes // l2_line)
                fill_lines = min(lines_in_region, l2_capacity_lines)
                # Insert the *last* lines of the region: for streamed regions
                # the timed run restarts at the beginning, so data beyond the
                # resident tail misses, as it would in steady state.
                start = region.base_address + (lines_in_region - fill_lines) * l2_line
                for index in range(fill_lines):
                    self.l2.access(start + index * l2_line)
                    insertions += 1
            for region in footprints:
                lines_in_region = max(1, region.size_bytes // l1_line)
                fill_lines = min(lines_in_region, l1_capacity_lines)
                start = region.base_address + (lines_in_region - fill_lines) * l1_line
                for index in range(fill_lines):
                    self.l1.access(start + index * l1_line)
                    insertions += 1
        finally:
            self.l1.stats_enabled = True
            self.l2.stats_enabled = True
        return insertions

    def probe_level(self, address: int) -> MemoryLevel:
        """Return the level that currently holds ``address`` without disturbing state."""
        if self.l1.probe(address):
            return MemoryLevel.L1
        if self.l2.probe(address):
            return MemoryLevel.L2
        return MemoryLevel.MAIN_MEMORY

    def latency_for_level(self, level: MemoryLevel) -> int:
        """Return the cumulative access latency for a given servicing level."""
        if level is MemoryLevel.L1:
            return self.config.l1.latency
        if level is MemoryLevel.L2:
            return self.config.l1.latency + self.config.l2.latency
        return self.config.l1.latency + self.config.l2.latency + self.config.main_memory_latency

    # ------------------------------------------------------------------
    # Line locking passthrough (line-based ERT)
    # ------------------------------------------------------------------

    def lock_l1_line(self, address: int, owner: int) -> LockResult:
        """Lock the L1 line containing ``address`` for epoch ``owner``."""
        return self.l1.lock_line(address, owner)

    def unlock_l1_owner(self, owner: int) -> int:
        """Release every L1 line lock held by epoch ``owner``."""
        return self.l1.unlock_owner(owner)

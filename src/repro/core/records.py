"""Timed memory-operation records shared by every LSQ model.

The timing cores (:mod:`repro.uarch`, :mod:`repro.fmc`) process the trace in
program order and, for every load and store, hand the LSQ policy a *record*
carrying the cycles the core has computed (decode, address-ready, data-ready,
commit) together with the execution-locality classification and, for
low-locality operations, the epoch the operation lives in.

Because the simulator is one-pass, a record's timing fields are fully known
by the time younger operations are processed; the LSQ structures therefore
answer "was this store still buffered when that load issued?" by comparing
cycles rather than by replaying allocation and deallocation events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SimulationError


class Locality(enum.Enum):
    """Execution-locality class of an instruction (Section 2.2)."""

    HIGH = "high"
    LOW = "low"


@dataclass(slots=True)
class LoadRecord:
    """A load as seen by the LSQ models.

    ``issue_cycle`` is the cycle the address becomes available and the load
    searches the store queue(s) / accesses the cache.  ``commit_cycle`` is
    filled in by the core once in-order commit reaches the load.
    """

    seq: int
    address: int
    size: int
    decode_cycle: int
    issue_cycle: int
    locality: Locality
    epoch_id: Optional[int] = None
    #: Cycle at which the load migrated from the HL-LSQ to its LL epoch, or
    #: ``None`` when it never migrated (Memory Processor idle).
    migration_cycle: Optional[int] = None
    commit_cycle: Optional[int] = None
    forwarded_from: Optional[int] = None
    #: Whether, at issue time, an older store with a not-yet-known address was
    #: in flight between the forwarding store (if any) and this load.  Used by
    #: the SVW "CheckStores" (no-unresolved-store) filter.
    unresolved_older_store_at_issue: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(f"load {self.seq}: size must be positive")
        if self.issue_cycle < self.decode_cycle:
            raise SimulationError(
                f"load {self.seq}: issue cycle {self.issue_cycle} precedes decode "
                f"cycle {self.decode_cycle}"
            )
        if self.locality is Locality.LOW and self.epoch_id is None:
            raise SimulationError(f"load {self.seq}: low-locality loads must carry an epoch id")

    @property
    def line_address(self) -> int:
        """The byte address of the first byte (alias for ``address``)."""
        return self.address

    def byte_range(self) -> tuple:
        """Half-open byte range touched by this load."""
        return (self.address, self.address + self.size)


@dataclass(slots=True)
class StoreRecord:
    """A store as seen by the LSQ models.

    ``addr_ready_cycle`` is when the store's address calculation completes;
    ``data_ready_cycle`` when the store's data operand is available (a load
    forwarding from this store before that point must wait);
    ``commit_cycle`` when the store leaves the store queue and writes the
    data cache.
    """

    seq: int
    address: int
    size: int
    decode_cycle: int
    addr_ready_cycle: int
    data_ready_cycle: int
    commit_cycle: int
    locality: Locality
    epoch_id: Optional[int] = None
    #: Cycle at which the store migrated from the HL-LSQ to its LL epoch, or
    #: ``None`` when it never migrated (Memory Processor idle).
    migration_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(f"store {self.seq}: size must be positive")
        if self.addr_ready_cycle < self.decode_cycle:
            raise SimulationError(
                f"store {self.seq}: address-ready cycle precedes decode cycle"
            )
        if self.commit_cycle < self.addr_ready_cycle:
            raise SimulationError(
                f"store {self.seq}: commit cycle {self.commit_cycle} precedes address-ready "
                f"cycle {self.addr_ready_cycle}"
            )
        if self.locality is Locality.LOW and self.epoch_id is None:
            raise SimulationError(f"store {self.seq}: low-locality stores must carry an epoch id")

    def byte_range(self) -> tuple:
        """Half-open byte range written by this store."""
        return (self.address, self.address + self.size)

    def overlaps(self, address: int, size: int) -> bool:
        """Whether this store writes any byte of ``[address, address + size)``."""
        return self.address < address + size and address < self.address + self.size

    def in_flight_at(self, cycle: int) -> bool:
        """Whether the store still occupies a store-queue entry at ``cycle``."""
        return self.decode_cycle <= cycle < self.commit_cycle

    def address_known_at(self, cycle: int) -> bool:
        """Whether the store's address calculation had completed by ``cycle``."""
        return self.addr_ready_cycle <= cycle

    def hl_resident_at(self, cycle: int) -> bool:
        """Whether the store occupies a High-Locality SQ entry at ``cycle``.

        A store lives in the HL-SQ from decode until it migrates to an epoch
        or, if it never migrates, until it commits.
        """
        if cycle < self.decode_cycle:
            return False
        hl_end = self.commit_cycle if self.migration_cycle is None else self.migration_cycle
        return cycle < hl_end

    def ll_resident_at(self, cycle: int, epoch_commit_cycle: Optional[int] = None) -> bool:
        """Whether the store occupies a Low-Locality (epoch) SQ entry at ``cycle``.

        ``epoch_commit_cycle`` is the commit cycle of the store's epoch when
        known; a still-open epoch is treated as live.
        """
        if self.migration_cycle is None or cycle < self.migration_cycle:
            return False
        if epoch_commit_cycle is None:
            return True
        return cycle < epoch_commit_cycle


@dataclass(frozen=True, slots=True)
class ForwardingResult:
    """Outcome of searching a store queue on behalf of a load."""

    store: Optional[StoreRecord] = None
    #: Entries examined by the associative search (for energy accounting).
    entries_searched: int = 0

    @property
    def hit(self) -> bool:
        """Whether a forwarding store was found."""
        return self.store is not None


@dataclass(slots=True)
class EpochState:
    """Lifecycle of one epoch (LL-LSQ bank) as seen by the LSQ models."""

    epoch_id: int
    open_cycle: int
    commit_cycle: Optional[int] = None
    instruction_count: int = 0
    load_count: int = 0
    store_count: int = 0
    metadata: dict = field(default_factory=dict)

    def live_at(self, cycle: int) -> bool:
        """Whether the epoch still holds instructions at ``cycle``."""
        return self.open_cycle <= cycle and (self.commit_cycle is None or cycle < self.commit_cycle)

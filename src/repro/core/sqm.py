"""The Store Queue Mirror (SQM).

Section 4 of the paper adds one final structure to the ELSQ: a replica of the
low-locality store queues placed next to the Epoch Resolution Table in the
Cache Processor.  Its purpose is purely latency: a high-locality load that
must forward from a low-locality store would otherwise pay a full CP→MP→CP
network round trip (more than 8 cycles); with the mirror the forwarding data
is available one cycle after the ERT lookup.

The mirror also acts as the store buffer feeding commit, so it adds no
network traffic of its own.  For the timing model this reduces to two things,
which this class encapsulates:

* the forwarding latency charged to a high-locality load that hits in the
  ERT (``access_latency`` cycles after the ERT instead of a round trip), and
* an access counter used by the energy accounting of Section 6.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.stats import StatsRegistry


class StoreQueueMirror:
    """Latency/accounting model of the SQM."""

    def __init__(self, stats: StatsRegistry, access_latency: int = 1) -> None:
        if access_latency < 0:
            raise ConfigurationError("SQM access latency must be non-negative")
        self.stats = stats
        self.access_latency = access_latency

    def access(self) -> int:
        """Record one SQM access and return its latency in cycles."""
        self.stats.bump("sqm.accesses")
        return self.access_latency

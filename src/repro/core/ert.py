"""The Epoch Resolution Table (ERT) -- global disambiguation filters.

The ERT (Section 3.4 of the paper) is the structure that makes two-level
disambiguation cheap: instead of broadcasting every global search to all
epochs, a load (or store) first consults a small table that records, per
address bucket, *which epochs* contain a low-locality memory instruction to
that bucket.  Only the indicated epochs are searched, most recent first.

Two organisations are modelled:

* :class:`LineBasedERT` -- one row per L1 cache line.  Inserting an address
  requires the corresponding line to be resident and *locked* in the L1 (the
  data need not be valid); when every way of the set is already locked the
  insertion reports a conflict and the caller stalls (HL-side insertion) or
  squashes (LL-side address resolution), exactly as the paper describes.
* :class:`HashBasedERT` -- a Bloom-style table indexed by the low ``n`` bits
  of the word address, fully decoupled from the cache.

Both keep two logical tables -- one for loads and one for stores -- and clear
an epoch's contribution in a single step when the epoch commits, which for
the line-based variant also unlocks the epoch's cache lines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.common.config import CacheConfig, ERTConfig, ERTKind
from repro.common.errors import ConfigurationError
from repro.common.stats import StatsRegistry
from repro.core.bloom import AddressHash
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class ERTInsertOutcome:
    """Result of inserting an address into the ERT."""

    inserted: bool
    #: Line-based only: every way of the L1 set was locked, so the line could
    #: not be pinned and the insertion did not happen.
    lock_conflict: bool = False


class EpochResolutionTable(abc.ABC):
    """Base class of the two ERT organisations.

    The table is *content agnostic*: it only answers "which live epochs might
    hold a matching store (or load)?".  The caller performs the actual epoch
    search and decides whether a candidate was a false positive.
    """

    def __init__(self, config: ERTConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats
        #: per-table mapping: index -> {epoch_id: insertion count}
        self._store_table: Dict[int, Dict[int, int]] = {}
        self._load_table: Dict[int, Dict[int, int]] = {}
        #: reverse index for epoch clearing: epoch -> {index: count} per table.
        self._store_epoch_indices: Dict[int, Dict[int, int]] = {}
        self._load_epoch_indices: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def index_of(self, address: int) -> int:
        """Return the table row that ``address`` maps to."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Total storage of the load + store tables in bytes."""

    # ------------------------------------------------------------------
    # Insertions
    # ------------------------------------------------------------------

    def insert_store(self, address: int, epoch_id: int) -> ERTInsertOutcome:
        """Record that ``epoch_id`` holds a store with a known address at ``address``."""
        return self._insert(address, epoch_id, self._store_table, self._store_epoch_indices)

    def insert_load(self, address: int, epoch_id: int) -> ERTInsertOutcome:
        """Record that ``epoch_id`` holds a load with a known address at ``address``."""
        return self._insert(address, epoch_id, self._load_table, self._load_epoch_indices)

    def _insert(
        self,
        address: int,
        epoch_id: int,
        table: Dict[int, Dict[int, int]],
        reverse: Dict[int, Dict[int, int]],
    ) -> ERTInsertOutcome:
        index = self.index_of(address)
        row = table.setdefault(index, {})
        row[epoch_id] = row.get(epoch_id, 0) + 1
        epoch_rows = reverse.setdefault(epoch_id, {})
        epoch_rows[index] = epoch_rows.get(index, 0) + 1
        self.stats.bump("ert.insertions")
        return ERTInsertOutcome(inserted=True)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def store_candidate_epochs(
        self, address: int, live_epochs: Iterable[int], exclude: Optional[int] = None
    ) -> List[int]:
        """Return live epochs that may hold a matching *store*, most recent first."""
        return self._candidates(address, self._store_table, live_epochs, exclude)

    def load_candidate_epochs(
        self, address: int, live_epochs: Iterable[int], exclude: Optional[int] = None
    ) -> List[int]:
        """Return live epochs that may hold a matching *load*, most recent first."""
        return self._candidates(address, self._load_table, live_epochs, exclude)

    def _candidates(
        self,
        address: int,
        table: Dict[int, Dict[int, int]],
        live_epochs: Iterable[int],
        exclude: Optional[int],
    ) -> List[int]:
        row = table.get(self.index_of(address))
        if not row:
            return []
        live: Set[int] = set(live_epochs)
        matches = [
            epoch_id
            for epoch_id in row
            if epoch_id in live and epoch_id != exclude
        ]
        matches.sort(reverse=True)
        return matches

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def clear_epoch(self, epoch_id: int) -> None:
        """Remove every contribution of ``epoch_id`` (both tables, one sweep)."""
        for reverse, table in (
            (self._store_epoch_indices, self._store_table),
            (self._load_epoch_indices, self._load_table),
        ):
            rows = reverse.pop(epoch_id, None)
            if not rows:
                continue
            for index in rows:
                row = table.get(index)
                if row is None:
                    continue
                row.pop(epoch_id, None)
                if not row:
                    del table[index]

    def live_entry_count(self) -> int:
        """Total number of (row, epoch) pairs currently recorded (both tables)."""
        return sum(len(row) for row in self._store_table.values()) + sum(
            len(row) for row in self._load_table.values()
        )


class HashBasedERT(EpochResolutionTable):
    """ERT indexed by the low ``n`` bits of the word address (Bloom filter style)."""

    def __init__(self, config: ERTConfig, stats: StatsRegistry) -> None:
        if config.kind is not ERTKind.HASH:
            raise ConfigurationError("HashBasedERT requires an ERTConfig with kind=HASH")
        super().__init__(config, stats)
        self._hash = AddressHash(config.hash_bits)

    def index_of(self, address: int) -> int:
        return self._hash.index(address)

    def storage_bytes(self) -> int:
        # Two tables (loads + stores), entry_bits per row.
        return 2 * self.config.hash_entries * self.config.entry_bits // 8


class LineBasedERT(EpochResolutionTable):
    """ERT with one row per L1 cache line, backed by line locking.

    Inserting an address pins its line in the L1 through
    :meth:`~repro.memory.hierarchy.MemoryHierarchy.lock_l1_line`; clearing an
    epoch releases all of that epoch's locks.  A failed lock (every way of the
    set already locked) is reported as ``lock_conflict=True`` and nothing is
    recorded -- the caller decides between stalling and squashing.
    """

    def __init__(
        self, config: ERTConfig, stats: StatsRegistry, hierarchy: MemoryHierarchy
    ) -> None:
        if config.kind is not ERTKind.LINE:
            raise ConfigurationError("LineBasedERT requires an ERTConfig with kind=LINE")
        super().__init__(config, stats)
        self._hierarchy = hierarchy
        self._line_shift = hierarchy.config.l1.line_size.bit_length() - 1

    @property
    def l1_config(self) -> CacheConfig:
        """The L1 geometry this table is coupled to."""
        return self._hierarchy.config.l1

    def index_of(self, address: int) -> int:
        return address >> self._line_shift

    def storage_bytes(self) -> int:
        return 2 * self.l1_config.num_lines * self.config.entry_bits // 8

    def _insert(
        self,
        address: int,
        epoch_id: int,
        table: Dict[int, Dict[int, int]],
        reverse: Dict[int, Dict[int, int]],
    ) -> ERTInsertOutcome:
        lock = self._hierarchy.lock_l1_line(address, owner=epoch_id)
        outcome = super()._insert(address, epoch_id, table, reverse)
        if not lock.locked:
            # The set is fully locked: the paper stalls the insertion (HL side)
            # or squashes (LL side) and retries, so the entry does land
            # eventually.  We record it now and report the conflict so the
            # caller can charge the stall / squash penalty.
            self.stats.bump("ert.lock_conflicts")
            return ERTInsertOutcome(inserted=outcome.inserted, lock_conflict=True)
        return outcome

    def clear_epoch(self, epoch_id: int) -> None:
        super().clear_epoch(epoch_id)
        self._hierarchy.unlock_l1_owner(epoch_id)


def build_ert(
    config: ERTConfig, stats: StatsRegistry, hierarchy: Optional[MemoryHierarchy] = None
) -> Optional[EpochResolutionTable]:
    """Construct the ERT described by ``config``.

    Returns ``None`` for :attr:`ERTKind.NONE`.  Line-based tables require the
    memory hierarchy for line locking.
    """
    if config.kind is ERTKind.NONE:
        return None
    if config.kind is ERTKind.HASH:
        return HashBasedERT(config, stats)
    if hierarchy is None:
        raise ConfigurationError("a line-based ERT requires the memory hierarchy")
    return LineBasedERT(config, stats, hierarchy)

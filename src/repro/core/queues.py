"""Content-search structures over in-flight stores.

The one-pass timing models process instructions in program order, so by the
time a load issues every older store's timing (address-ready, data-ready,
commit, migration) is already known.  :class:`StoreBuffer` exploits this: it
records every store and answers the three questions every LSQ organisation
asks, *as of a given cycle*:

* "Which is the youngest older store to the same bytes that was still
  buffered in queue X when the load issued?" (store→load forwarding, per
  residency class: HL-SQ, a particular LL epoch, or anywhere),
* "Was there an older store whose address was still unknown when the load
  issued?" (ordering violations and the no-unresolved-store filter), and
* "Does an older in-flight store to the same bytes exist whose address was
  unknown at load issue?" (the actual violation that forces a squash or a
  re-execution).

Searches are indexed by 8-byte word (the workloads issue word-aligned 4- or
8-byte accesses) so each query touches only the handful of stores that ever
wrote that word.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.records import ForwardingResult, StoreRecord

#: Number of low address bits ignored by the word index.
_WORD_SHIFT = 3

#: Per-word history depth.  Forwarding and violation checks only ever need
#: the youngest few stores to a word; older ones are dead for disambiguation.
_PER_WORD_HISTORY = 32

#: Stores whose address resolves more than this many cycles after decode are
#: tracked as "slow" for the unresolved-older-store checks.
_SLOW_ADDRESS_THRESHOLD = 15

#: How many of the most recent stores are always checked for unresolved
#: addresses (covers the short decode→issue window of ordinary stores).
_RECENT_WINDOW = 48


class StoreBuffer:
    """Timing-aware record of every store processed so far."""

    def __init__(self) -> None:
        self._by_word: Dict[int, Deque[StoreRecord]] = {}
        self._recent: Deque[StoreRecord] = deque(maxlen=_RECENT_WINDOW)
        self._slow: List[StoreRecord] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def add(self, store: StoreRecord) -> None:
        """Record a processed store."""
        word = store.address >> _WORD_SHIFT
        bucket = self._by_word.get(word)
        if bucket is None:
            bucket = deque(maxlen=_PER_WORD_HISTORY)
            self._by_word[word] = bucket
        bucket.append(store)
        self._recent.append(store)
        if store.addr_ready_cycle - store.decode_cycle > _SLOW_ADDRESS_THRESHOLD:
            self._slow.append(store)
        self._count += 1

    def prune_slow(self, before_cycle: int) -> None:
        """Drop slow-store bookkeeping for stores resolved before ``before_cycle``."""
        if self._slow and len(self._slow) > 64:
            self._slow = [store for store in self._slow if store.addr_ready_cycle >= before_cycle]

    # ------------------------------------------------------------------
    # Forwarding searches
    # ------------------------------------------------------------------

    def find_hl_forwarding(
        self, address: int, size: int, before_seq: int, cycle: int
    ) -> ForwardingResult:
        """Youngest older store to the same bytes resident in the HL-SQ at ``cycle``."""
        return self._find(
            address,
            size,
            before_seq,
            cycle,
            residency=lambda store: store.hl_resident_at(cycle),
        )

    def find_epoch_forwarding(
        self,
        epoch_id: int,
        address: int,
        size: int,
        before_seq: int,
        cycle: int,
        epoch_commit_cycle: Optional[int] = None,
    ) -> ForwardingResult:
        """Youngest older matching store resident in epoch ``epoch_id`` at ``cycle``."""
        return self._find(
            address,
            size,
            before_seq,
            cycle,
            residency=lambda store: store.epoch_id == epoch_id
            and store.ll_resident_at(cycle, epoch_commit_cycle),
        )

    def find_any_forwarding(
        self, address: int, size: int, before_seq: int, cycle: int
    ) -> ForwardingResult:
        """Youngest older matching store still in flight anywhere at ``cycle``.

        Used by the conventional and idealised central LSQs, which keep a
        single store queue.
        """
        return self._find(
            address,
            size,
            before_seq,
            cycle,
            residency=lambda store: store.in_flight_at(cycle),
        )

    def _find(self, address, size, before_seq, cycle, residency) -> ForwardingResult:
        bucket = self._by_word.get(address >> _WORD_SHIFT)
        if not bucket:
            return ForwardingResult(store=None, entries_searched=0)
        searched = 0
        for store in reversed(bucket):
            if store.seq >= before_seq:
                continue
            searched += 1
            if not store.overlaps(address, size):
                continue
            if not store.address_known_at(cycle):
                # The matching store's address was still unknown when the load
                # issued; the load cannot forward from it (this is the
                # violation case, reported separately).
                continue
            if residency(store):
                return ForwardingResult(store=store, entries_searched=searched)
            # The youngest matching store is not resident in the searched
            # structure; an older matching store must not forward (it holds a
            # stale value), so stop at the first address match.
            return ForwardingResult(store=None, entries_searched=searched)
        return ForwardingResult(store=None, entries_searched=searched)

    # ------------------------------------------------------------------
    # Violation and unresolved-store checks
    # ------------------------------------------------------------------

    def find_violating_store(
        self, address: int, size: int, before_seq: int, after_seq: int, cycle: int
    ) -> Optional[StoreRecord]:
        """Return an older overlapping store whose address was unknown at ``cycle``.

        Only stores with ``after_seq < seq < before_seq`` are considered: a
        store older than the one the load forwarded from cannot supersede the
        forwarded value.  A non-``None`` result means the load obtained stale
        data and the window must be repaired (squash or re-execution).
        """
        bucket = self._by_word.get(address >> _WORD_SHIFT)
        if not bucket:
            return None
        for store in reversed(bucket):
            if store.seq >= before_seq or store.seq <= after_seq:
                continue
            if not store.overlaps(address, size):
                continue
            if store.in_flight_at(cycle) and not store.address_known_at(cycle):
                return store
        return None

    def any_unresolved_older_store(self, before_seq: int, after_seq: int, cycle: int) -> bool:
        """Whether any store with ``after_seq < seq < before_seq`` had an unknown address at ``cycle``.

        This is the predicate of the no-unresolved-store filter
        ("CheckStores"): it is address independent, so it must consider every
        in-flight older store, not just those writing the load's word.
        """
        for store in reversed(self._recent):
            if store.seq >= before_seq or store.seq <= after_seq:
                continue
            if store.in_flight_at(cycle) and not store.address_known_at(cycle):
                return True
        for store in self._slow:
            if store.seq >= before_seq or store.seq <= after_seq:
                continue
            if store.in_flight_at(cycle) and not store.address_known_at(cycle):
                return True
        return False

    # ------------------------------------------------------------------
    # Occupancy estimates (for energy accounting / diagnostics)
    # ------------------------------------------------------------------

    def stores_to_word(self, address: int) -> int:
        """Number of recorded stores that wrote the word containing ``address``."""
        bucket = self._by_word.get(address >> _WORD_SHIFT)
        return len(bucket) if bucket else 0

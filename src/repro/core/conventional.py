"""Conventional and idealised central load/store queues.

These are the two baselines the paper compares ELSQ against:

* :class:`ConventionalLSQ` -- the associative load/store queue of the OoO-64
  baseline processor (and of the OoO-64-SVW variant, where the load queue is
  replaced by Store-Vulnerability-Window re-execution).
* :class:`IdealCentralLSQ` -- the "single-cycle, unlimited-size centralized
  Load Store Queue" of Figure 7, located in the Cache Processor of the large
  window machine: high-locality operations see it in one cycle, but loads that
  execute in the Memory Processor pay the CP↔MP round trip for every search
  and cache access.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import LoadQueueScheme, SVWConfig
from repro.common.stats import StatsRegistry
from repro.core.policy import CommitOutcome, LoadOutcome, LSQPolicy, StoreOutcome
from repro.core.queues import StoreBuffer
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.core.svw import StoreVulnerabilityWindow
from repro.memory.hierarchy import MemoryHierarchy

#: Store→load forwarding latency inside a single associative queue.
_FORWARD_LATENCY = 1


class ConventionalLSQ(LSQPolicy):
    """The age-indexed associative LSQ of a conventional out-of-order core.

    Loads search the store queue at issue; stores search the load queue for
    ordering violations at issue (unless the load queue has been removed in
    favour of SVW re-execution); stores write the data cache at commit.
    """

    def __init__(
        self,
        stats: StatsRegistry,
        hierarchy: MemoryHierarchy,
        load_queue_scheme: LoadQueueScheme = LoadQueueScheme.ASSOCIATIVE,
        svw_config: Optional[SVWConfig] = None,
    ) -> None:
        super().__init__(stats)
        self.hierarchy = hierarchy
        self.load_queue_scheme = load_queue_scheme
        self._stores = StoreBuffer()
        self._svw: Optional[StoreVulnerabilityWindow] = None
        if load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION:
            self._svw = StoreVulnerabilityWindow(
                svw_config if svw_config is not None else SVWConfig(), stats
            )
            self.wrong_path_searches_load_queue = False

    # -- issue-time events ------------------------------------------------

    def load_issued(self, load: LoadRecord) -> LoadOutcome:
        self.stats.bump("hl_sq.searches")
        self._stores.prune_slow(load.decode_cycle)
        forwarding = self._stores.find_any_forwarding(
            load.address, load.size, load.seq, load.issue_cycle
        )
        forwarding_seq = forwarding.store.seq if forwarding.hit else -1
        load.unresolved_older_store_at_issue = self._stores.any_unresolved_older_store(
            load.seq, forwarding_seq, load.issue_cycle
        )
        violating = self._stores.find_violating_store(
            load.address, load.size, load.seq, forwarding_seq, load.issue_cycle
        )
        violation = violating is not None and self._svw is None
        if violation:
            self.stats.bump("lsq.violations")

        if forwarding.hit:
            assert forwarding.store is not None
            load.forwarded_from = forwarding.store.seq
            self.stats.bump("lsq.forwarded_loads")
            data_wait = max(0, forwarding.store.data_ready_cycle - load.issue_cycle)
            return LoadOutcome(
                latency=_FORWARD_LATENCY + data_wait,
                forwarded=True,
                forwarding_store_seq=forwarding.store.seq,
                violation=violation,
            )

        self.stats.bump("cache.accesses")
        access = self.hierarchy.access(load.address)
        return LoadOutcome(latency=access.latency, violation=violation)

    def store_issued(self, store: StoreRecord) -> StoreOutcome:
        self._stores.add(store)
        if self._svw is None:
            self.stats.bump("hl_lq.searches")
        return StoreOutcome()

    # -- commit-time events -----------------------------------------------

    def load_committed(self, load: LoadRecord) -> CommitOutcome:
        if self._svw is None:
            return CommitOutcome()
        decision = self._svw.check_load(load)
        if not decision.reexecute:
            return CommitOutcome()
        self.stats.bump("cache.accesses")
        self.stats.bump("cache.reexecution_accesses")
        access = self.hierarchy.access(load.address)
        return CommitOutcome(extra_latency=access.latency, reexecuted=True)

    def store_committed(self, store: StoreRecord) -> CommitOutcome:
        outcome = super().store_committed(store)
        if self._svw is not None:
            self._svw.store_committed(store)
        return outcome


class IdealCentralLSQ(LSQPolicy):
    """Unlimited, single-cycle centralized LSQ located in the Cache Processor.

    Used as the "Central LSQ" reference point of Figure 7.  High-locality
    memory operations see a one-cycle associative search over the whole
    window; operations executing in the Memory Processor pay the interconnect
    round trip for both queue searches and cache accesses because the queue
    and the L1 live on the Cache Processor side.
    """

    def __init__(
        self,
        stats: StatsRegistry,
        hierarchy: MemoryHierarchy,
        round_trip_latency: int = 8,
    ) -> None:
        super().__init__(stats)
        self.hierarchy = hierarchy
        self.round_trip_latency = round_trip_latency
        self._stores = StoreBuffer()

    def load_issued(self, load: LoadRecord) -> LoadOutcome:
        self.stats.bump("central_lsq.searches")
        self._stores.prune_slow(load.decode_cycle)
        remote = load.locality is Locality.LOW
        remote_penalty = self.round_trip_latency if remote else 0
        if remote:
            self.stats.bump("network.round_trips")

        forwarding = self._stores.find_any_forwarding(
            load.address, load.size, load.seq, load.issue_cycle
        )
        forwarding_seq = forwarding.store.seq if forwarding.hit else -1
        load.unresolved_older_store_at_issue = self._stores.any_unresolved_older_store(
            load.seq, forwarding_seq, load.issue_cycle
        )
        violating = self._stores.find_violating_store(
            load.address, load.size, load.seq, forwarding_seq, load.issue_cycle
        )
        violation = violating is not None
        if violation:
            self.stats.bump("lsq.violations")

        if forwarding.hit:
            assert forwarding.store is not None
            load.forwarded_from = forwarding.store.seq
            self.stats.bump("lsq.forwarded_loads")
            data_wait = max(0, forwarding.store.data_ready_cycle - load.issue_cycle)
            return LoadOutcome(
                latency=_FORWARD_LATENCY + data_wait + remote_penalty,
                forwarded=True,
                forwarding_store_seq=forwarding.store.seq,
                violation=violation,
            )

        self.stats.bump("cache.accesses")
        access = self.hierarchy.access(load.address)
        return LoadOutcome(latency=access.latency + remote_penalty, violation=violation)

    def store_issued(self, store: StoreRecord) -> StoreOutcome:
        self._stores.add(store)
        self.stats.bump("central_lsq.searches")
        if store.locality is Locality.LOW:
            self.stats.bump("network.round_trips")
        return StoreOutcome()

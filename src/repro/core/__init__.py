"""The Epoch-based Load/Store Queue and the baseline queue organisations.

This package contains the paper's primary contribution and everything it is
compared against:

* :class:`~repro.core.elsq.EpochBasedLSQ` -- the two-level, epoch-partitioned
  LSQ with line-based or hash-based Epoch Resolution Table, optional Store
  Queue Mirror, restricted disambiguation models and optional SVW load
  re-execution.
* :class:`~repro.core.conventional.ConventionalLSQ` -- the associative LSQ of
  the OoO-64 baseline (optionally with SVW re-execution).
* :class:`~repro.core.conventional.IdealCentralLSQ` -- the idealised
  single-cycle, unlimited central LSQ of Figure 7.

Supporting structures -- :class:`~repro.core.ert.EpochResolutionTable`,
:class:`~repro.core.sqm.StoreQueueMirror`,
:class:`~repro.core.svw.StoreVulnerabilityWindow`,
:class:`~repro.core.queues.StoreBuffer`, the bloom filters and the timed
records -- are exported for direct use and unit testing.
"""

from repro.core.bloom import AddressHash, CountingBloomFilter
from repro.core.conventional import ConventionalLSQ, IdealCentralLSQ
from repro.core.elsq import EpochBasedLSQ
from repro.core.ert import (
    EpochResolutionTable,
    ERTInsertOutcome,
    HashBasedERT,
    LineBasedERT,
    build_ert,
)
from repro.core.policy import CommitOutcome, LoadOutcome, LSQPolicy, StoreOutcome
from repro.core.queues import StoreBuffer
from repro.core.records import (
    EpochState,
    ForwardingResult,
    Locality,
    LoadRecord,
    StoreRecord,
)
from repro.core.sqm import StoreQueueMirror
from repro.core.svw import ReexecutionDecision, StoreVulnerabilityWindow

__all__ = [
    "AddressHash",
    "CommitOutcome",
    "ConventionalLSQ",
    "CountingBloomFilter",
    "EpochBasedLSQ",
    "EpochResolutionTable",
    "EpochState",
    "ERTInsertOutcome",
    "ForwardingResult",
    "HashBasedERT",
    "IdealCentralLSQ",
    "LineBasedERT",
    "LoadOutcome",
    "LoadRecord",
    "Locality",
    "LSQPolicy",
    "ReexecutionDecision",
    "StoreBuffer",
    "StoreOutcome",
    "StoreQueueMirror",
    "StoreRecord",
    "StoreVulnerabilityWindow",
    "build_ert",
]

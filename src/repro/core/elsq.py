"""The Epoch-based Load/Store Queue (ELSQ) -- the paper's contribution.

:class:`EpochBasedLSQ` implements the full two-level disambiguation scheme of
Sections 3 and 4 on top of the structural pieces in this package:

* a small **High-Locality LSQ** searched by every high-locality load and
  store (one-cycle local search),
* a banked **Low-Locality LSQ**: one store/load queue per *epoch*, each
  mapped onto one memory engine of the FMC,
* an **Epoch Resolution Table** (line-based or hash-based) that filters
  global searches down to the epochs that may actually contain a match, and
  whose false positives are counted for Figure 8a,
* an optional **Store Queue Mirror** that lets high-locality loads forward
  from low-locality stores without a network round trip,
* the four **restricted disambiguation models** of Section 3.3, which remove
  the Load-ERT (RSAC) and/or the global load searches, and
* optional **SVW load re-execution** in place of associative load queues.

The class is an :class:`~repro.core.policy.LSQPolicy`: the FMC timing core
drives it with issue/commit events and consumes only latencies, violation
flags and stall/squash penalties.  Every structure access is recorded in the
statistics registry using the Table 2 vocabulary (``hl_lq``, ``hl_sq``,
``ll_lq``, ``ll_sq``, ``ert``, ``ssbf``, ``network.round_trips``, ``cache``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import (
    DisambiguationModel,
    ELSQConfig,
    ERTKind,
    InterconnectConfig,
    LoadQueueScheme,
)
from repro.common.stats import StatsRegistry
from repro.core.ert import EpochResolutionTable, build_ert
from repro.core.policy import CommitOutcome, LoadOutcome, LSQPolicy, StoreOutcome
from repro.core.queues import StoreBuffer
from repro.core.records import EpochState, Locality, LoadRecord, StoreRecord
from repro.core.sqm import StoreQueueMirror
from repro.core.svw import StoreVulnerabilityWindow
from repro.memory.hierarchy import MemoryHierarchy

#: Latency of a local (same-queue) store→load forwarding.
_LOCAL_FORWARD_LATENCY = 1

#: Latency of one ERT lookup as seen by a load (SRAM comparable to the L1).
_ERT_LOOKUP_LATENCY = 1

#: Stall charged when a line-based ERT insertion from the HL side finds its
#: L1 set fully locked (the paper stalls migration until a way frees up).
_LOCK_STALL_PENALTY = 16

#: Squash penalty charged when a low-locality reference resolves its address
#: and cannot lock its line (the window is squashed from that instruction).
_LOCK_SQUASH_PENALTY = 64


class EpochBasedLSQ(LSQPolicy):
    """Two-level, epoch-partitioned load/store queue."""

    def __init__(
        self,
        config: ELSQConfig,
        stats: StatsRegistry,
        hierarchy: MemoryHierarchy,
        interconnect: Optional[InterconnectConfig] = None,
    ) -> None:
        super().__init__(stats)
        self.config = config
        self.hierarchy = hierarchy
        self.interconnect = interconnect if interconnect is not None else InterconnectConfig()
        self._stores = StoreBuffer()
        self._ert: Optional[EpochResolutionTable] = build_ert(config.ert, stats, hierarchy)
        self._sqm: Optional[StoreQueueMirror] = (
            StoreQueueMirror(stats) if config.store_queue_mirror else None
        )
        self._svw: Optional[StoreVulnerabilityWindow] = None
        if config.load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION:
            self._svw = StoreVulnerabilityWindow(config.svw, stats)
            self.wrong_path_searches_load_queue = False
        #: epoch id -> lifecycle record.
        self._epochs: Dict[int, EpochState] = {}
        #: epochs whose commit has been announced but whose ERT contribution
        #: has not yet been cleared (cleared once no future query can need it).
        self._pending_clears: List[EpochState] = []

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    def epoch_opened(self, epoch_id: int, cycle: int) -> None:
        self._epochs[epoch_id] = EpochState(epoch_id=epoch_id, open_cycle=cycle)
        self.stats.bump("elsq.epochs_opened")

    def epoch_committed(self, epoch_id: int, cycle: int) -> None:
        state = self._epochs.get(epoch_id)
        if state is None:
            state = EpochState(epoch_id=epoch_id, open_cycle=cycle)
            self._epochs[epoch_id] = state
        state.commit_cycle = cycle
        self._pending_clears.append(state)
        self.stats.bump("elsq.epochs_committed")

    def _purge_committed_epochs(self, safe_cycle: int) -> None:
        """Clear ERT state of epochs no future query can still observe.

        ``safe_cycle`` is the decode cycle of the instruction being processed;
        every future query happens at or after it, so epochs that committed
        before it are invisible from now on and their ERT columns (and L1 line
        locks, for the line-based table) can be released.
        """
        if not self._pending_clears:
            return
        remaining: List[EpochState] = []
        for state in self._pending_clears:
            if state.commit_cycle is not None and state.commit_cycle <= safe_cycle:
                if self._ert is not None:
                    self._ert.clear_epoch(state.epoch_id)
                self._epochs.pop(state.epoch_id, None)
            else:
                remaining.append(state)
        self._pending_clears = remaining

    def _live_epochs_at(self, cycle: int, exclude: Optional[int] = None) -> List[int]:
        return [
            epoch_id
            for epoch_id, state in self._epochs.items()
            if state.live_at(cycle) and epoch_id != exclude
        ]

    def _epoch_commit_cycle(self, epoch_id: int) -> Optional[int]:
        state = self._epochs.get(epoch_id)
        return state.commit_cycle if state is not None else None

    # ------------------------------------------------------------------
    # Derived properties of the configuration
    # ------------------------------------------------------------------

    @property
    def _needs_load_ert(self) -> bool:
        """Whether the Loads-ERT exists (removed by restricted SAC)."""
        if self._svw is not None:
            return False
        return not self.config.disambiguation.restricts_store_address_calculation

    @property
    def _associative_load_queues(self) -> bool:
        """Whether stores search load queues for violations (no SVW)."""
        return self._svw is None

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load_issued(self, load: LoadRecord) -> LoadOutcome:
        self._purge_committed_epochs(load.decode_cycle)
        self._stores.prune_slow(load.decode_cycle)
        if load.locality is Locality.HIGH:
            outcome = self._high_locality_load(load)
        else:
            outcome = self._low_locality_load(load)
        return outcome

    def _high_locality_load(self, load: LoadRecord) -> LoadOutcome:
        cycle = load.issue_cycle
        # Local level: the HL-SQ is always searched (and the ERT in parallel).
        self.stats.bump("hl_sq.searches")
        local = self._stores.find_hl_forwarding(load.address, load.size, load.seq, cycle)
        if local.hit:
            assert local.store is not None
            return self._forwarded_outcome(load, local.store, extra_latency=0, local=True)

        # Global level: consult the ERT only while low-locality epochs exist
        # (otherwise the whole LL machinery is in its low-power mode).
        filter_penalty = 0
        live = self._live_epochs_at(cycle)
        if self._ert is not None and live:
            self.stats.bump("ert.lookups")
            candidates = self._ert.store_candidate_epochs(load.address, live)
            if candidates:
                filter_penalty = self._global_search_penalty()
                store, searched_epochs = self._search_candidate_epochs(load, candidates, cycle)
                if store is not None:
                    if self._sqm is None:
                        self.stats.bump("network.round_trips")
                    extra = filter_penalty + max(0, searched_epochs - 1)
                    return self._forwarded_outcome(load, store, extra_latency=extra, local=False)

        # No forwarding: the value comes from the data cache; the load still
        # pays the filter penalty when the ERT sent it on a useless search.
        self.stats.bump("cache.accesses")
        access = self.hierarchy.access(load.address)
        violation = self._check_violation(load, forwarding_seq=-1)
        return LoadOutcome(latency=access.latency + filter_penalty, violation=violation)

    def _low_locality_load(self, load: LoadRecord) -> LoadOutcome:
        cycle = load.issue_cycle
        epoch_id = load.epoch_id if load.epoch_id is not None else -1
        # The Loads-ERT (when present) learns this address; with the line-based
        # table this is where line-lock overflows squash the window.
        squash_penalty = 0
        if self._ert is not None and self._needs_load_ert and load.epoch_id is not None:
            insert = self._ert.insert_load(load.address, load.epoch_id)
            if insert.lock_conflict:
                squash_penalty += _LOCK_SQUASH_PENALTY
                self.stats.bump("elsq.lock_squashes")

        # Local level: the epoch's own store queue.
        self.stats.bump("ll_sq.searches")
        local = self._stores.find_epoch_forwarding(
            epoch_id, load.address, load.size, load.seq, cycle,
            self._epoch_commit_cycle(epoch_id),
        )
        if local.hit:
            assert local.store is not None
            self.stats.bump("elsq.local_ll_forwards")
            outcome = self._forwarded_outcome(load, local.store, extra_latency=0, local=True)
            return LoadOutcome(
                latency=outcome.latency,
                forwarded=True,
                forwarding_store_seq=outcome.forwarding_store_seq,
                violation=outcome.violation,
                squash_penalty=squash_penalty,
            )

        # Global level: older epochs indicated by the ERT (younger epochs and
        # the HL-SQ hold only younger stores, which must not forward).
        filter_penalty = 0
        if self._ert is not None:
            older_live = [
                candidate
                for candidate in self._live_epochs_at(cycle, exclude=epoch_id)
                if candidate < epoch_id
            ]
            if older_live:
                self.stats.bump("ert.lookups")
                candidates = self._ert.store_candidate_epochs(
                    load.address, older_live, exclude=epoch_id
                )
                if candidates:
                    filter_penalty = _ERT_LOOKUP_LATENCY
                    store, searched = self._search_candidate_epochs(
                        load, candidates, cycle, remote_from_epoch=epoch_id
                    )
                    if store is not None:
                        hops = abs(epoch_id - (store.epoch_id or 0))
                        extra = filter_penalty + hops * self.interconnect.hop_latency
                        self.stats.bump("network.round_trips")
                        outcome = self._forwarded_outcome(
                            load, store, extra_latency=extra, local=False
                        )
                        return LoadOutcome(
                            latency=outcome.latency,
                            forwarded=True,
                            forwarding_store_seq=outcome.forwarding_store_seq,
                            violation=outcome.violation,
                            squash_penalty=squash_penalty,
                        )

        # Cache access from a memory engine: data travels over the CP<->MP bus.
        self.stats.bump("cache.accesses")
        self.stats.bump("network.round_trips")
        access = self.hierarchy.access(load.address)
        violation = self._check_violation(load, forwarding_seq=-1)
        latency = access.latency + filter_penalty + self.interconnect.round_trip_latency
        return LoadOutcome(latency=latency, violation=violation, squash_penalty=squash_penalty)

    def _search_candidate_epochs(
        self,
        load: LoadRecord,
        candidates: List[int],
        cycle: int,
        remote_from_epoch: Optional[int] = None,
    ):
        """Search candidate epochs most-recent-first; count false positives."""
        searched = 0
        for candidate in candidates:
            searched += 1
            self.stats.bump("ll_sq.searches")
            if self._sqm is not None and remote_from_epoch is None:
                self._sqm.access()
            result = self._stores.find_epoch_forwarding(
                candidate, load.address, load.size, load.seq, cycle,
                self._epoch_commit_cycle(candidate),
            )
            if result.hit:
                return result.store, searched
            self.stats.bump("ert.false_positives")
        return None, searched

    def _global_search_penalty(self) -> int:
        """Latency a high-locality load pays to search the low-locality level."""
        if self._sqm is not None:
            return _ERT_LOOKUP_LATENCY + self._sqm.access_latency
        return _ERT_LOOKUP_LATENCY + self.interconnect.round_trip_latency

    def _forwarded_outcome(
        self, load: LoadRecord, store: StoreRecord, extra_latency: int, local: bool
    ) -> LoadOutcome:
        load.forwarded_from = store.seq
        self.stats.bump("lsq.forwarded_loads")
        if local:
            self.stats.bump("elsq.local_forwards")
        else:
            self.stats.bump("elsq.global_forwards")
        data_wait = max(0, store.data_ready_cycle - load.issue_cycle)
        violation = self._check_violation(load, forwarding_seq=store.seq)
        return LoadOutcome(
            latency=_LOCAL_FORWARD_LATENCY + data_wait + extra_latency,
            forwarded=True,
            forwarding_store_seq=store.seq,
            violation=violation,
        )

    def _check_violation(self, load: LoadRecord, forwarding_seq: int) -> bool:
        load.unresolved_older_store_at_issue = self._stores.any_unresolved_older_store(
            load.seq, forwarding_seq, load.issue_cycle
        )
        violating = self._stores.find_violating_store(
            load.address, load.size, load.seq, forwarding_seq, load.issue_cycle
        )
        if violating is None:
            return False
        if not self._associative_load_queues:
            # SVW repairs the violation by re-executing the load at commit.
            return False
        self.stats.bump("lsq.violations")
        return True

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def store_issued(self, store: StoreRecord) -> StoreOutcome:
        self._purge_committed_epochs(store.decode_cycle)
        self._stores.add(store)
        insertion_stall = 0
        squash_penalty = 0

        if store.epoch_id is not None and self._ert is not None:
            insert = self._ert.insert_store(store.address, store.epoch_id)
            if insert.lock_conflict:
                if store.migration_cycle is not None and store.addr_ready_cycle <= store.migration_cycle:
                    # Address known at migration: the insertion simply stalls.
                    insertion_stall += _LOCK_STALL_PENALTY
                    self.stats.bump("elsq.lock_stalls")
                else:
                    # Address resolved inside the LL-LSQ: squash and restart.
                    squash_penalty += _LOCK_SQUASH_PENALTY
                    self.stats.bump("elsq.lock_squashes")

        if self._associative_load_queues:
            if store.locality is Locality.HIGH:
                # Younger loads can only live in the HL-LQ.
                self.stats.bump("hl_lq.searches")
            else:
                # A low-locality store must check its own epoch...
                self.stats.bump("ll_lq.searches")
                # ... and, unless restricted SAC guarantees its address was
                # known before younger loads issued, the younger epochs and
                # the HL-LQ through the Loads-ERT.
                if self._needs_load_ert and self._ert is not None:
                    self.stats.bump("ert.lookups")
                    live = self._live_epochs_at(store.addr_ready_cycle, exclude=store.epoch_id)
                    younger = [
                        epoch
                        for epoch in live
                        if store.epoch_id is None or epoch > store.epoch_id
                    ]
                    candidates = self._ert.load_candidate_epochs(
                        store.address, younger, exclude=store.epoch_id
                    )
                    for _ in candidates:
                        self.stats.bump("ll_lq.searches")
                    self.stats.bump("hl_lq.searches")

        return StoreOutcome(insertion_stall=insertion_stall, squash_penalty=squash_penalty)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def load_committed(self, load: LoadRecord) -> CommitOutcome:
        if self._svw is None:
            return CommitOutcome()
        decision = self._svw.check_load(load)
        if not decision.reexecute:
            return CommitOutcome()
        self.stats.bump("cache.accesses")
        self.stats.bump("cache.reexecution_accesses")
        access = self.hierarchy.access(load.address)
        return CommitOutcome(extra_latency=access.latency, reexecuted=True)

    def store_committed(self, store: StoreRecord) -> CommitOutcome:
        outcome = super().store_committed(store)
        if self._svw is not None:
            self._svw.store_committed(store)
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ert(self) -> Optional[EpochResolutionTable]:
        """The global disambiguation filter (``None`` for ERTKind.NONE)."""
        return self._ert

    @property
    def uses_store_queue_mirror(self) -> bool:
        """Whether the Store Queue Mirror is present."""
        return self._sqm is not None

    @property
    def uses_line_locking(self) -> bool:
        """Whether the configuration relies on L1 line locking."""
        return self.config.ert.kind is ERTKind.LINE

    @property
    def disambiguation(self) -> DisambiguationModel:
        """The restricted disambiguation model in force."""
        return self.config.disambiguation

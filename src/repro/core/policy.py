"""The LSQ policy interface shared by every queue organisation.

A *policy* encapsulates one load/store-queue organisation -- the conventional
associative LSQ of the OoO-64 baseline, the idealised central LSQ, or the
Epoch-based LSQ with all of its variants -- behind a small event API driven
by the timing cores:

* :meth:`LSQPolicy.load_issued` -- called when a load's address is ready; the
  policy searches whatever store queues the organisation prescribes, possibly
  consults the ERT/SQM, accesses the data cache when no forwarding happens,
  and returns the additional latency the load pays plus any squash penalty
  (ordering violation, line-lock overflow).
* :meth:`LSQPolicy.store_issued` -- called when a store's address is ready;
  the policy performs the violation search appropriate to the organisation
  and accounts for the accesses.
* :meth:`LSQPolicy.load_committed` / :meth:`LSQPolicy.store_committed` --
  called at in-order commit; re-execution schemes add latency here, stores
  write the data cache here.
* :meth:`LSQPolicy.epoch_committed` -- FMC only; the ELSQ clears the epoch's
  ERT columns, unlocks its cache lines and frees its queues.

The outcomes carry only *timing deltas* and flags; all structural occupancy
constraints (queue sizes limiting the in-flight window) are enforced by the
cores via the configuration, not by the policies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.stats import StatsRegistry
from repro.core.records import LoadRecord, StoreRecord


@dataclass(frozen=True)
class LoadOutcome:
    """What happened when a load issued.

    Attributes
    ----------
    latency:
        Cycles between the load's issue (address ready) and its data being
        available -- either the forwarding latency or the cache access
        latency, including any filter/network delays.
    forwarded:
        Whether the value came from an in-flight store rather than the cache.
    forwarding_store_seq:
        Sequence number of the forwarding store, if any.
    violation:
        Whether an ordering violation involving this load was (later)
        detected; the core applies its squash penalty.
    squash_penalty:
        Additional squash penalty in cycles (for example the line-lock
        overflow squash of the line-based ERT).
    """

    latency: int
    forwarded: bool = False
    forwarding_store_seq: int = -1
    violation: bool = False
    squash_penalty: int = 0


@dataclass(frozen=True)
class StoreOutcome:
    """What happened when a store's address became ready.

    ``insertion_stall`` models the migration stall of the line-based ERT when
    a store inserted from the HL-LSQ cannot lock its cache line, and the
    restricted-SAC/LAC migration stalls are modelled by the FMC core itself.
    """

    insertion_stall: int = 0
    squash_penalty: int = 0


@dataclass(frozen=True)
class CommitOutcome:
    """Extra work performed at commit (load re-execution, store writeback)."""

    extra_latency: int = 0
    reexecuted: bool = False


class LSQPolicy(abc.ABC):
    """Abstract base class of every load/store-queue organisation."""

    def __init__(self, stats: StatsRegistry) -> None:
        self.stats = stats

    # -- issue-time events ------------------------------------------------

    @abc.abstractmethod
    def load_issued(self, load: LoadRecord) -> LoadOutcome:
        """Handle a load whose address just became ready."""

    @abc.abstractmethod
    def store_issued(self, store: StoreRecord) -> StoreOutcome:
        """Handle a store whose address just became ready."""

    # -- commit-time events -----------------------------------------------

    def load_committed(self, load: LoadRecord) -> CommitOutcome:
        """Handle a load reaching in-order commit (default: nothing extra)."""
        return CommitOutcome()

    def store_committed(self, store: StoreRecord) -> CommitOutcome:
        """Handle a store reaching in-order commit (default: count the cache write)."""
        self.stats.bump("cache.accesses")
        self.stats.bump("cache.store_writebacks")
        return CommitOutcome()

    # -- epoch lifecycle (FMC / ELSQ only) ----------------------------------

    def epoch_opened(self, epoch_id: int, cycle: int) -> None:
        """Notification that a new epoch started filling at ``cycle``."""

    def epoch_committed(self, epoch_id: int, cycle: int) -> None:
        """Notification that an epoch fully committed at ``cycle``."""

    # -- end of run ----------------------------------------------------------

    def finalize(self, total_cycles: int, committed_instructions: int) -> None:
        """Hook called once at the end of a simulation run."""

    # -- helpers -------------------------------------------------------------

    #: Whether wrong-path stores search an associative load queue.  Policies
    #: that replace the load queue with SVW re-execution set this to False so
    #: wrong-path activity is not attributed to a structure that no longer
    #: exists (Table 2 reports zero HL-LQ accesses for SVW configurations).
    wrong_path_searches_load_queue: bool = True

    def record_wrong_path_activity(self, wrong_path_loads: int, wrong_path_stores: int) -> None:
        """Account for speculative wrong-path LSQ activity.

        Wrong-path instructions are not part of the committed trace, so the
        cores estimate how many of them issued (Section 6 of the paper notes
        that SPEC INT LSQ activity grows with window aggressiveness because of
        them) and report the estimate here.  The default implementation adds
        them to the first-level queue access counters, which is where
        wrong-path work lands in every organisation.
        """
        if wrong_path_loads > 0:
            self.stats.bump("hl_sq.searches", wrong_path_loads)
            self.stats.bump("cache.accesses", wrong_path_loads)
            self.stats.bump("wrong_path.loads", wrong_path_loads)
        if wrong_path_stores > 0:
            if self.wrong_path_searches_load_queue:
                self.stats.bump("hl_lq.searches", wrong_path_stores)
            self.stats.bump("wrong_path.stores", wrong_path_stores)

"""Store Vulnerability Window (SVW) load re-execution.

Section 3.5 / 5.6 of the paper evaluate an alternative to associative load
queues: make the load queue non-associative and instead *re-execute* at
commit any load that may have been violated by an older store, following
Roth's Store Vulnerability Window.  The filter deciding which loads
re-execute is the **Store Sequence Bloom Filter (SSBF)**: a small RAM indexed
by a hash of the address, holding the sequence number of the youngest store
that committed to that hash bucket.

A load is *vulnerable* when the SSBF entry for its address is younger than
the youngest store whose value the load could legitimately have observed:

* the store it forwarded from, when it forwarded, or
* the youngest store that had already written the cache (committed) when the
  load issued, otherwise.

Two variants are modelled (Figure 10):

* ``Blind`` -- only the SSBF decides.
* ``CheckStores`` -- additionally applies the *no-unresolved-store filter*: a
  load only re-executes if, at issue time, an older store with a still
  unknown address existed between the forwarding store and the load.

Re-executions are counted and each one charges a data-cache access at commit,
delaying the commit of every younger instruction -- which is how the scheme
loses IPC when the window (and therefore the vulnerability window) is large.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.common.config import SVWConfig
from repro.common.stats import StatsRegistry
from repro.core.bloom import AddressHash
from repro.core.records import LoadRecord, StoreRecord


@dataclass(frozen=True)
class ReexecutionDecision:
    """Outcome of the commit-time SVW check for one load."""

    reexecute: bool
    ssbf_hit: bool
    threshold_seq: int


class StoreVulnerabilityWindow:
    """SSBF state plus the commit-time vulnerability check."""

    def __init__(self, config: SVWConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats
        self._hash = AddressHash(config.ssbf_index_bits)
        #: SSBF: bucket index -> sequence number of the youngest committed store.
        self._ssbf: List[int] = [-1] * self._hash.num_buckets
        #: Commit history of stores for the "youngest store committed before
        #: cycle" query (commit cycles are non-decreasing, so bisect works).
        self._store_commit_cycles: List[int] = []
        self._store_commit_seqs: List[int] = []

    # ------------------------------------------------------------------
    # Store side
    # ------------------------------------------------------------------

    def store_committed(self, store: StoreRecord) -> None:
        """Update the SSBF when a store writes the data cache at commit."""
        self._ssbf[self._hash.index(store.address)] = store.seq
        self._store_commit_cycles.append(store.commit_cycle)
        self._store_commit_seqs.append(store.seq)

    def youngest_store_committed_before(self, cycle: int) -> int:
        """Sequence number of the youngest store committed strictly before ``cycle``."""
        position = bisect.bisect_left(self._store_commit_cycles, cycle)
        if position == 0:
            return -1
        return self._store_commit_seqs[position - 1]

    # ------------------------------------------------------------------
    # Load side
    # ------------------------------------------------------------------

    def check_load(self, load: LoadRecord) -> ReexecutionDecision:
        """Decide at commit whether ``load`` must re-execute."""
        self.stats.bump("ssbf.lookups")
        if load.forwarded_from is not None and load.forwarded_from >= 0:
            threshold = load.forwarded_from
        else:
            threshold = self.youngest_store_committed_before(load.issue_cycle)
        entry_seq = self._ssbf[self._hash.index(load.address)]
        ssbf_hit = entry_seq > threshold and entry_seq < load.seq
        reexecute = ssbf_hit
        if self.config.check_stores and not load.unresolved_older_store_at_issue:
            reexecute = False
        if reexecute:
            self.stats.bump("svw.reexecutions")
        return ReexecutionDecision(
            reexecute=reexecute, ssbf_hit=ssbf_hit, threshold_seq=threshold
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    @property
    def ssbf_entries(self) -> int:
        """Number of SSBF rows."""
        return self._hash.num_buckets

    def bucket_of(self, address: int) -> int:
        """Return the SSBF bucket an address maps to (for tests/diagnostics)."""
        return self._hash.index(address)

    def bucket_entry(self, address: int) -> Optional[int]:
        """Return the store sequence currently held for the address's bucket."""
        entry = self._ssbf[self._hash.index(address)]
        return None if entry < 0 else entry

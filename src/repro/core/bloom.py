"""Address hashing and Bloom-style filters.

Two structures in the paper use single-hash Bloom filtering:

* the **hash-based Epoch Resolution Table** (Section 3.4), which indexes a
  small SRAM with the low ``n`` bits of the address and keeps one
  epoch-bit-vector per row, and
* the **Store Sequence Bloom Filter (SSBF)** of the Store Vulnerability
  Window re-execution scheme (Section 3.5), which keeps one store sequence
  number per row.

Both reduce a full address to a small index with :class:`AddressHash`.  The
hash granularity is the 8-byte word: the workloads issue word-aligned
accesses, so hashing at byte granularity would waste three index bits and
hashing at line granularity would hide genuine word conflicts.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigurationError

#: Addresses are hashed at 8-byte-word granularity.
WORD_SHIFT = 3


class AddressHash:
    """Maps byte addresses to ``2**index_bits`` buckets by their low word bits."""

    __slots__ = ("index_bits", "mask")

    def __init__(self, index_bits: int) -> None:
        if not 1 <= index_bits <= 32:
            raise ConfigurationError(f"index_bits must lie in [1, 32], got {index_bits}")
        self.index_bits = index_bits
        self.mask = (1 << index_bits) - 1

    @property
    def num_buckets(self) -> int:
        """Number of distinct hash buckets."""
        return self.mask + 1

    def index(self, address: int) -> int:
        """Return the bucket index for ``address``."""
        return (address >> WORD_SHIFT) & self.mask

    def collides(self, address_a: int, address_b: int) -> bool:
        """Whether two addresses map to the same bucket."""
        return self.index(address_a) == self.index(address_b)


class CountingBloomFilter:
    """A single-hash counting Bloom filter over addresses.

    Insertions and removals keep a per-bucket population count so membership
    queries stay correct as entries leave the window (this mirrors how the
    hash-based ERT clears an epoch's contribution when the epoch commits).
    False positives arise exactly as in hardware: two different addresses
    sharing the same low bits.
    """

    __slots__ = ("_hash", "_counts", "_population")

    def __init__(self, index_bits: int) -> None:
        self._hash = AddressHash(index_bits)
        self._counts: List[int] = [0] * self._hash.num_buckets
        self._population = 0

    @property
    def index_bits(self) -> int:
        """Number of address bits used for indexing."""
        return self._hash.index_bits

    @property
    def population(self) -> int:
        """Total number of addresses currently inserted."""
        return self._population

    def insert(self, address: int) -> int:
        """Insert ``address``; return the bucket index used."""
        index = self._hash.index(address)
        self._counts[index] += 1
        self._population += 1
        return index

    def remove(self, address: int) -> None:
        """Remove one previous insertion of ``address``."""
        index = self._hash.index(address)
        if self._counts[index] <= 0:
            raise ConfigurationError(
                f"cannot remove address {address:#x}: bucket {index} is already empty"
            )
        self._counts[index] -= 1
        self._population -= 1

    def may_contain(self, address: int) -> bool:
        """Whether the filter may contain ``address`` (no false negatives)."""
        return self._counts[self._hash.index(address)] > 0

    def bucket_count(self, address: int) -> int:
        """Return the population of the bucket ``address`` maps to."""
        return self._counts[self._hash.index(address)]

    def clear(self) -> None:
        """Remove every entry."""
        self._counts = [0] * self._hash.num_buckets
        self._population = 0

"""Resource models for the one-pass timing cores.

The timing models in :mod:`repro.uarch` and :mod:`repro.fmc` are *one-pass*:
they walk the trace once, in program order, computing each instruction's
fetch, issue, completion and commit cycles.  Structural resources are modelled
with two small helpers:

* :class:`BandwidthAllocator` -- a per-cycle slot pool (fetch width, issue
  width, commit width, cache ports).  Asking for a slot at cycle *c* returns
  the earliest cycle >= *c* with capacity left.
* :class:`OccupancyWindow` -- a FIFO structure with a fixed number of entries
  (ROB, load queue, store queue, epoch pool).  Entry *i* cannot be allocated
  before entry *i - capacity* has been released; the window keeps the release
  cycles of the youngest ``capacity`` allocations and exposes the constraint.

Both helpers are deliberately simple and allocation-order driven, which is
exactly what a program-order walk needs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.common.errors import ConfigurationError


class BandwidthAllocator:
    """At most ``width`` events per cycle; events are requested in any order."""

    __slots__ = ("width", "_used")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ConfigurationError(f"bandwidth width must be positive, got {width}")
        self.width = width
        self._used: Dict[int, int] = {}

    def allocate(self, desired_cycle: int) -> int:
        """Reserve a slot at the earliest cycle >= ``desired_cycle``; return that cycle."""
        cycle = desired_cycle
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def peak_cycle_usage(self) -> int:
        """Return the maximum number of slots ever used in a single cycle."""
        return max(self._used.values(), default=0)


class OccupancyWindow:
    """A FIFO-allocated structure with ``capacity`` entries.

    Callers first ask for the :meth:`constraint` (the release cycle of the
    entry that must leave before a new one can be allocated), combine it with
    whatever other constraints apply, and then :meth:`push` the new entry's
    release cycle.
    """

    __slots__ = ("capacity", "_releases")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"occupancy capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._releases: Deque[int] = deque()

    def constraint(self) -> int:
        """Earliest cycle at which a new entry may be allocated (0 if not full)."""
        if len(self._releases) < self.capacity:
            return 0
        return self._releases[0]

    def push(self, release_cycle: int) -> None:
        """Record a newly allocated entry that will be released at ``release_cycle``."""
        if len(self._releases) >= self.capacity:
            self._releases.popleft()
        self._releases.append(release_cycle)

    def occupancy_hint(self) -> int:
        """Number of release records currently tracked (at most ``capacity``)."""
        return len(self._releases)


class InOrderTracker:
    """Tracks a non-decreasing cycle frontier (in-order fetch, in-order commit)."""

    __slots__ = ("_cycle",)

    def __init__(self, start_cycle: int = 0) -> None:
        self._cycle = start_cycle

    @property
    def cycle(self) -> int:
        """The current frontier cycle."""
        return self._cycle

    def advance(self, cycle: int) -> int:
        """Move the frontier forward to at least ``cycle``; return the frontier."""
        if cycle > self._cycle:
            self._cycle = cycle
        return self._cycle

"""Result records produced by the timing cores.

Both the conventional out-of-order core and the FMC produce a
:class:`CoreResult`: the cycle count, the committed instruction count, the
full statistics snapshot and a handful of derived conveniences (IPC,
per-100M-instruction scaling) used throughout the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import StatsSnapshot


@dataclass(frozen=True)
class CoreResult:
    """Outcome of simulating one trace on one machine configuration."""

    trace_name: str
    config_name: str
    cycles: int
    committed_instructions: int
    stats: StatsSnapshot
    #: Fraction of cycles during which the Memory Processor was idle
    #: (high-locality mode); ``None`` for conventional cores.
    high_locality_fraction: Optional[float] = None
    #: Average number of simultaneously allocated epochs; ``None`` for
    #: conventional cores.
    mean_allocated_epochs: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise SimulationError("a simulation must take at least one cycle")
        if self.committed_instructions < 0:
            raise SimulationError("committed instruction count cannot be negative")

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles

    def counter(self, name: str, default: int = 0) -> int:
        """Return a raw counter value from the statistics snapshot."""
        return self.stats.get(name, default)

    def per_100m(self, name: str) -> float:
        """Return a counter scaled to events per 100 million committed instructions."""
        if self.committed_instructions == 0:
            return 0.0
        return self.stats.get(name, 0) * (100_000_000 / self.committed_instructions)

    def per_100m_millions(self, name: str) -> float:
        """Return the per-100M rate expressed in millions (Table 2's unit)."""
        return self.per_100m(name) / 1e6

    def histogram(self, name: str) -> Optional[List[Tuple[int, int]]]:
        """Return a recorded histogram series, if present."""
        return self.stats.histograms.get(name)

    def speedup_over(self, baseline: "CoreResult") -> float:
        """Return this result's IPC relative to ``baseline``'s IPC."""
        if baseline.ipc == 0:
            raise SimulationError("baseline IPC is zero; speed-up undefined")
        return self.ipc / baseline.ipc

"""Result records produced by the timing cores.

Both the conventional out-of-order core and the FMC produce a
:class:`CoreResult`: the cycle count, the committed instruction count, the
full statistics snapshot and a handful of derived conveniences (IPC,
per-100M-instruction scaling) used throughout the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import StatsSnapshot


@dataclass(frozen=True)
class CoreResult:
    """Outcome of simulating one trace on one machine configuration."""

    trace_name: str
    config_name: str
    cycles: int
    committed_instructions: int
    stats: StatsSnapshot
    #: Fraction of cycles during which the Memory Processor was idle
    #: (high-locality mode); ``None`` for conventional cores.
    high_locality_fraction: Optional[float] = None
    #: Average number of simultaneously allocated epochs; ``None`` for
    #: conventional cores.
    mean_allocated_epochs: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise SimulationError("a simulation must take at least one cycle")
        if self.committed_instructions < 0:
            raise SimulationError("committed instruction count cannot be negative")

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles

    def counter(self, name: str, default: int = 0) -> int:
        """Return a raw counter value from the statistics snapshot."""
        return self.stats.get(name, default)

    def per_100m(self, name: str) -> float:
        """Return a counter scaled to events per 100 million committed instructions."""
        if self.committed_instructions == 0:
            return 0.0
        return self.stats.get(name, 0) * (100_000_000 / self.committed_instructions)

    def per_100m_millions(self, name: str) -> float:
        """Return the per-100M rate expressed in millions (Table 2's unit)."""
        return self.per_100m(name) / 1e6

    def histogram(self, name: str) -> Optional[List[Tuple[int, int]]]:
        """Return a recorded histogram series, if present."""
        return self.stats.histograms.get(name)

    def speedup_over(self, baseline: "CoreResult") -> float:
        """Return this result's IPC relative to ``baseline``'s IPC."""
        if baseline.ipc == 0:
            raise SimulationError("baseline IPC is zero; speed-up undefined")
        return self.ipc / baseline.ipc

    def to_dict(self) -> Dict[str, Any]:
        """Lower this result to plain JSON types (the result-cache format).

        The representation round-trips exactly: counters and histogram bins
        are integers, and the float fields survive JSON because Python's
        ``repr``-based float serialization is lossless.
        """
        return {
            "trace_name": self.trace_name,
            "config_name": self.config_name,
            "cycles": self.cycles,
            "committed_instructions": self.committed_instructions,
            "counters": dict(self.stats.counters),
            "histograms": {
                name: [[lower, population] for lower, population in series]
                for name, series in self.stats.histograms.items()
            },
            "high_locality_fraction": self.high_locality_fraction,
            "mean_allocated_epochs": self.mean_allocated_epochs,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoreResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a cache entry)."""
        return cls(
            trace_name=data["trace_name"],
            config_name=data["config_name"],
            cycles=int(data["cycles"]),
            committed_instructions=int(data["committed_instructions"]),
            stats=StatsSnapshot(
                counters={name: int(value) for name, value in data.get("counters", {}).items()},
                histograms={
                    name: [(int(lower), int(population)) for lower, population in series]
                    for name, series in data.get("histograms", {}).items()
                },
            ),
            high_locality_fraction=data.get("high_locality_fraction"),
            mean_allocated_epochs=data.get("mean_allocated_epochs"),
            extra={name: float(value) for name, value in data.get("extra", {}).items()},
        )

"""One-pass timing model of a conventional out-of-order core.

This is the OoO-64 baseline of the paper (Table 1): a 4-wide machine with a
64-entry reorder buffer, conventional associative load/store queues and the
default two-level cache hierarchy.  The model walks the trace once in program
order and computes, for every instruction,

* its fetch cycle -- constrained by fetch bandwidth, in-order fetch, the
  reorder-buffer and load/store-queue occupancy, and any refetch bubble left
  behind by a mispredicted branch or an ordering-violation squash,
* its ready cycle -- the latest of its source registers' ready cycles,
* its issue cycle -- ready plus issue-bandwidth (and cache-port) arbitration,
* its completion cycle -- issue plus execution latency; loads obtain their
  latency from the LSQ policy (forwarding or cache access),
* its commit cycle -- in-order, commit-bandwidth limited, delayed further by
  load re-execution when the SVW scheme is active.

The walk is *single pass* because every constraint an instruction faces is a
function of older instructions only; this keeps the model fast enough to run
whole parameter sweeps in pure Python while still exhibiting the behaviours
the paper's evaluation depends on (ROB-limited memory-level parallelism,
mispredict bubbles, LSQ occupancy stalls).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import CoreConfig, MemoryHierarchyConfig
from repro.common.stats import StatsRegistry
from repro.core.conventional import ConventionalLSQ
from repro.core.policy import LSQPolicy
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.isa.instruction import InstrClass
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.resources import BandwidthAllocator, InOrderTracker, OccupancyWindow
from repro.uarch.result import CoreResult

#: Additional penalty (on top of the branch-mispredict penalty) charged when
#: an ordering violation squashes the window from the violating load.
_VIOLATION_EXTRA_PENALTY = 8

#: Fraction of fetched wrong-path instructions assumed to issue and touch the
#: LSQ before the squash (Section 6 wrong-path activity approximation).
_WRONG_PATH_ACTIVITY_FACTOR = 0.3

#: Bin width (cycles) of the decode→address-calculation histogram (Figure 1).
_LOCALITY_HISTOGRAM_BIN = 30
_LOCALITY_HISTOGRAM_BINS = 50


class OutOfOrderCore:
    """Conventional superscalar out-of-order processor model."""

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[MemoryHierarchyConfig] = None,
        policy: Optional[LSQPolicy] = None,
        stats: Optional[StatsRegistry] = None,
        name: str = "ooo",
        warm_caches: bool = True,
    ) -> None:
        self.config = config if config is not None else CoreConfig()
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.hierarchy = MemoryHierarchy(hierarchy_config, self.stats)
        self.warm_caches = warm_caches
        self.policy = (
            policy if policy is not None else ConventionalLSQ(self.stats, self.hierarchy)
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> CoreResult:
        """Simulate ``trace`` and return the timing result."""
        cfg = self.config
        stats = self.stats
        if self.warm_caches and trace.regions:
            self.hierarchy.warm_up_regions(trace.regions)
        load_hist = stats.histogram(
            "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
        )
        store_hist = stats.histogram(
            "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
        )

        fetch_bw = BandwidthAllocator(cfg.fetch_width)
        issue_bw = BandwidthAllocator(cfg.issue_width)
        commit_bw = BandwidthAllocator(cfg.commit_width)
        cache_ports = BandwidthAllocator(self.hierarchy.config.cache_ports)
        rob = OccupancyWindow(cfg.rob_size)
        load_queue = OccupancyWindow(cfg.load_queue_entries)
        store_queue = OccupancyWindow(cfg.store_queue_entries)
        commit_frontier = InOrderTracker()
        fetch_frontier = InOrderTracker()

        register_ready: Dict[int, int] = {}
        fetch_resume_cycle = 0
        num_loads = 0
        num_stores = 0
        wrong_path_estimate = 0.0
        last_commit_cycle = 0

        for instruction in trace:
            # ---------------- fetch / decode ----------------
            desired_fetch = max(fetch_resume_cycle, fetch_frontier.cycle, rob.constraint())
            if instruction.is_load:
                desired_fetch = max(desired_fetch, load_queue.constraint())
            elif instruction.is_store:
                desired_fetch = max(desired_fetch, store_queue.constraint())
            fetch_cycle = fetch_bw.allocate(desired_fetch)
            fetch_frontier.advance(fetch_cycle)
            decode_cycle = fetch_cycle + cfg.decode_latency

            # ---------------- operand readiness ----------------
            if instruction.is_store and instruction.srcs:
                address_srcs = instruction.srcs[:-1] or instruction.srcs
                data_srcs = instruction.srcs[-1:]
            else:
                address_srcs = instruction.srcs
                data_srcs = ()
            addr_ready = decode_cycle
            for src in address_srcs:
                addr_ready = max(addr_ready, register_ready.get(src, 0))
            data_ready = addr_ready
            for src in data_srcs:
                data_ready = max(data_ready, register_ready.get(src, 0))

            # ---------------- issue and execute ----------------
            violation = False
            squash_penalty = 0
            if instruction.is_load:
                num_loads += 1
                issue_cycle = issue_bw.allocate(addr_ready)
                issue_cycle = cache_ports.allocate(issue_cycle)
                load_hist.record(issue_cycle - decode_cycle)
                record = LoadRecord(
                    seq=instruction.seq,
                    address=instruction.address or 0,
                    size=instruction.size,
                    decode_cycle=decode_cycle,
                    issue_cycle=issue_cycle,
                    locality=Locality.HIGH,
                )
                outcome = self.policy.load_issued(record)
                complete = issue_cycle + max(1, outcome.latency)
                violation = outcome.violation
                squash_penalty = outcome.squash_penalty
                pending_load_record: Optional[LoadRecord] = record
                pending_store_record: Optional[StoreRecord] = None
            elif instruction.is_store:
                num_stores += 1
                issue_cycle = issue_bw.allocate(addr_ready)
                store_hist.record(issue_cycle - decode_cycle)
                complete = max(issue_cycle, data_ready)
                pending_load_record = None
                pending_store_record = None  # created after commit is known
            elif instruction.is_branch:
                issue_cycle = issue_bw.allocate(addr_ready)
                complete = issue_cycle + cfg.branch_latency
                pending_load_record = None
                pending_store_record = None
            else:
                issue_cycle = issue_bw.allocate(addr_ready)
                latency = instruction.latency
                if latency is None:
                    latency = (
                        cfg.fp_alu_latency
                        if instruction.iclass is InstrClass.FP_ALU
                        else cfg.int_alu_latency
                    )
                complete = issue_cycle + latency
                pending_load_record = None
                pending_store_record = None

            if instruction.dest is not None:
                register_ready[instruction.dest] = complete

            # ---------------- commit ----------------
            commit_ready = max(complete, commit_frontier.cycle)
            commit_cycle = commit_bw.allocate(commit_ready)

            if instruction.is_store:
                pending_store_record = StoreRecord(
                    seq=instruction.seq,
                    address=instruction.address or 0,
                    size=instruction.size,
                    decode_cycle=decode_cycle,
                    addr_ready_cycle=issue_cycle,
                    data_ready_cycle=max(issue_cycle, data_ready),
                    commit_cycle=commit_cycle,
                    locality=Locality.HIGH,
                )
                store_outcome = self.policy.store_issued(pending_store_record)
                squash_penalty = max(squash_penalty, store_outcome.squash_penalty)
                self.policy.store_committed(pending_store_record)
            elif pending_load_record is not None:
                pending_load_record.commit_cycle = commit_cycle
                commit_extra = self.policy.load_committed(pending_load_record)
                if commit_extra.extra_latency:
                    commit_cycle += commit_extra.extra_latency

            commit_frontier.advance(commit_cycle)
            last_commit_cycle = max(last_commit_cycle, commit_cycle)
            rob.push(commit_cycle)
            if instruction.is_load:
                load_queue.push(commit_cycle)
            elif instruction.is_store:
                store_queue.push(commit_cycle)

            # ---------------- control / squash handling ----------------
            if instruction.is_branch and instruction.mispredicted:
                resolve_cycle = complete + cfg.branch_mispredict_penalty
                fetch_resume_cycle = max(fetch_resume_cycle, resolve_cycle)
                stats.bump("core.branch_mispredicts")
                exposed = max(0, complete - fetch_cycle)
                wrong_path_estimate += min(cfg.fetch_width * exposed, cfg.rob_size)
            if violation:
                stats.bump("core.violation_squashes")
                fetch_resume_cycle = max(
                    fetch_resume_cycle,
                    complete + cfg.branch_mispredict_penalty + _VIOLATION_EXTRA_PENALTY,
                )
            if squash_penalty:
                fetch_resume_cycle = max(fetch_resume_cycle, issue_cycle + squash_penalty)

        committed = len(trace)
        total_cycles = max(1, last_commit_cycle)
        self._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
        self.policy.finalize(total_cycles, committed)
        stats.counter("core.cycles").add(total_cycles)
        stats.counter("core.committed_instructions").add(committed)

        return CoreResult(
            trace_name=trace.name,
            config_name=self.name,
            cycles=total_cycles,
            committed_instructions=committed,
            stats=stats.snapshot(),
        )

    # ------------------------------------------------------------------
    # Wrong-path activity estimate
    # ------------------------------------------------------------------

    def _account_wrong_path(
        self, wrong_path_estimate: float, committed: int, num_loads: int, num_stores: int
    ) -> None:
        """Attribute estimated wrong-path LSQ activity to the policy counters."""
        if committed == 0 or wrong_path_estimate <= 0:
            return
        active = wrong_path_estimate * _WRONG_PATH_ACTIVITY_FACTOR
        load_fraction = num_loads / committed
        store_fraction = num_stores / committed
        self.policy.record_wrong_path_activity(
            wrong_path_loads=int(active * load_fraction),
            wrong_path_stores=int(active * store_fraction),
        )

"""Conventional out-of-order processor substrate.

:class:`~repro.uarch.ooo_core.OutOfOrderCore` is the one-pass timing model of
the OoO-64 baseline processor; :mod:`repro.uarch.resources` provides the
bandwidth and occupancy helpers shared with the FMC model; and
:class:`~repro.uarch.result.CoreResult` is the result record every core
produces.
"""

from repro.uarch.ooo_core import OutOfOrderCore
from repro.uarch.resources import BandwidthAllocator, InOrderTracker, OccupancyWindow
from repro.uarch.result import CoreResult

__all__ = [
    "BandwidthAllocator",
    "CoreResult",
    "InOrderTracker",
    "OccupancyWindow",
    "OutOfOrderCore",
]

"""repro -- a reproduction of "A Two-Level Load/Store Queue Based on Execution Locality".

The library rebuilds, in pure Python, the system evaluated by Pericàs et al.
at ISCA 2008: the **Epoch-based Load/Store Queue (ELSQ)** -- a two-level,
epoch-partitioned memory disambiguation scheme for kilo-instruction-window
processors -- together with every substrate the evaluation needs:

* a trace-driven instruction model and synthetic SPEC-FP-like / SPEC-INT-like
  workload generators (:mod:`repro.isa`, :mod:`repro.workloads`),
* a two-level cache hierarchy with line locking (:mod:`repro.memory`),
* a conventional out-of-order core (the OoO-64 baseline, :mod:`repro.uarch`)
  and the FMC decoupled large-window processor (:mod:`repro.fmc`),
* the ELSQ itself with line/hash Epoch Resolution Tables, the Store Queue
  Mirror, restricted disambiguation models and SVW load re-execution, plus
  the conventional and idealised-central baselines (:mod:`repro.core`),
* an energy model anchored on the paper's CACTI numbers (:mod:`repro.energy`),
* and an experiment harness with one function per table / figure of the
  evaluation section (:mod:`repro.sim`).

Quickstart::

    from repro import Simulator, fmc_hash, ooo_64, spec_fp_suite

    suite = spec_fp_suite()
    baseline = Simulator(ooo_64()).run_suite(suite, num_instructions=20_000)
    elsq = Simulator(fmc_hash()).run_suite(suite, num_instructions=20_000)
    print("speed-up:", elsq.speedup_over(baseline))
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DisambiguationModel,
    ELSQConfig,
    ERTConfig,
    ERTKind,
    FMCConfig,
    InterconnectConfig,
    LoadQueueScheme,
    MemoryEngineConfig,
    MemoryHierarchyConfig,
    SVWConfig,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.common.stats import StatsRegistry
from repro.core import (
    ConventionalLSQ,
    EpochBasedLSQ,
    HashBasedERT,
    IdealCentralLSQ,
    LineBasedERT,
    StoreQueueMirror,
    StoreVulnerabilityWindow,
)
from repro.energy import EnergyModel
from repro.fmc import FMCProcessor
from repro.isa import InstrClass, Instruction, Trace
from repro.memory import MemoryHierarchy
from repro.sim.engine import DEFAULT_ENGINE, engine_by_name, engine_names
from repro.sim import (
    ExperimentContext,
    MachineConfig,
    Simulator,
    SuiteResult,
    fmc_central,
    fmc_elsq,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    fmc_line,
    machine_by_name,
    ooo_64,
    ooo_64_svw,
    quick_context,
)
from repro.uarch import CoreResult, OutOfOrderCore

# Imported after repro.sim: the orchestration layer builds on the simulation
# driver, and repro.sim.experiments itself imports repro.exp.runner.
# The service layer (repro.service) is deliberately NOT imported here: every
# figure run and every spawned pool worker imports this package, and only
# `repro serve` / `repro submit` need the HTTP stack -- import repro.service
# directly for the server and client classes.
from repro.exp import ExperimentRunner, JobRequest, ResultCache, SimJob, SweepCase
from repro.trace import (
    TRACE_FORMAT_VERSION,
    TraceArchive,
    load_trace,
    load_trace_archive,
    record_trace,
    save_trace,
)
from repro.workloads import (
    SyntheticWorkload,
    WorkloadParameters,
    WorkloadSuite,
    fp_kernel,
    int_kernel,
    spec_fp_suite,
    spec_int_suite,
    suite_by_name,
)
from repro.workloads.families import family_suite, family_suites

from repro._version import __version__ as __version__

__all__ = [
    "CacheConfig",
    "ConfigurationError",
    "ConventionalLSQ",
    "CoreConfig",
    "CoreResult",
    "DEFAULT_ENGINE",
    "DisambiguationModel",
    "ELSQConfig",
    "ERTConfig",
    "ERTKind",
    "EnergyModel",
    "EpochBasedLSQ",
    "ExperimentContext",
    "ExperimentRunner",
    "FMCConfig",
    "FMCProcessor",
    "HashBasedERT",
    "IdealCentralLSQ",
    "InstrClass",
    "Instruction",
    "InterconnectConfig",
    "JobRequest",
    "LineBasedERT",
    "LoadQueueScheme",
    "MachineConfig",
    "MemoryEngineConfig",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "OutOfOrderCore",
    "ReproError",
    "ResultCache",
    "SVWConfig",
    "SimJob",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "StoreQueueMirror",
    "StoreVulnerabilityWindow",
    "SuiteResult",
    "SweepCase",
    "SyntheticWorkload",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceArchive",
    "TraceError",
    "WorkloadError",
    "WorkloadParameters",
    "WorkloadSuite",
    "engine_by_name",
    "engine_names",
    "family_suite",
    "family_suites",
    "fmc_central",
    "fmc_elsq",
    "fmc_hash",
    "fmc_hash_rsac",
    "fmc_hash_svw",
    "fmc_line",
    "fp_kernel",
    "int_kernel",
    "load_trace",
    "load_trace_archive",
    "machine_by_name",
    "ooo_64",
    "ooo_64_svw",
    "quick_context",
    "record_trace",
    "save_trace",
    "spec_fp_suite",
    "spec_int_suite",
    "suite_by_name",
]

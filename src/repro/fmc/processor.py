"""One-pass timing model of the FMC large-window processor.

The model extends the conventional out-of-order walk of
:mod:`repro.uarch.ooo_core` with the three mechanisms that give the FMC its
kilo-instruction window:

* **Execution-locality classification.** An instruction whose operands become
  ready more than ``locality_threshold_cycles`` after decode (i.e. it depends
  on an L2 or memory miss) is *low locality* and executes on a memory engine;
  everything else executes in the Cache Processor.
* **Migration and epochs.**  While the Memory Processor is busy, instructions
  leave the Cache Processor's 64-entry ROB shortly after decode and are
  appended to the current *epoch* (up to 128 instructions, 64 loads and 32
  stores per epoch, 16 epochs).  A full epoch closes and a new one opens; when
  all 16 are live the migration -- and therefore fetch -- stalls until the
  oldest epoch commits.  This is the window-size limiter of the machine.
* **Restricted disambiguation stalls.**  Under restricted SAC (LAC), a store
  (load) whose address calculation is miss-dependent blocks the migration of
  younger memory references until the address resolves, which keeps them in
  the small HL-LSQ and eventually stalls fetch -- the performance cost of the
  simplified hardware quantified in Figure 9.

The model also produces the measurements the paper derives from this machine:
the decode→address-calculation histograms of Figure 1, the fraction of cycles
with an idle Memory Processor (Figure 11), the mean number of allocated
epochs, and the wrong-path activity estimate discussed in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import (
    ELSQConfig,
    FMCConfig,
    MemoryHierarchyConfig,
)
from repro.common.stats import StatsRegistry
from repro.core.elsq import EpochBasedLSQ
from repro.core.policy import LSQPolicy
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.isa.instruction import InstrClass, Instruction
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.resources import BandwidthAllocator, InOrderTracker, OccupancyWindow
from repro.uarch.result import CoreResult

#: Additional penalty (on top of the branch-mispredict penalty) charged when
#: an ordering violation squashes the window from the violating load.
_VIOLATION_EXTRA_PENALTY = 8

#: Fraction of fetched wrong-path instructions assumed to issue and touch the
#: LSQ before the squash (Section 6 wrong-path activity approximation).
_WRONG_PATH_ACTIVITY_FACTOR = 0.3

#: Cap on the number of wrong-path instructions fetched past one mispredicted
#: branch (bounded by the space the front end can fill before redirection).
_WRONG_PATH_CAP = 256

#: Bin width (cycles) of the decode→address-calculation histogram (Figure 1).
_LOCALITY_HISTOGRAM_BIN = 30
_LOCALITY_HISTOGRAM_BINS = 50


@dataclass
class _EpochBook:
    """Per-epoch bookkeeping used while the epoch is filling."""

    epoch_id: int
    open_cycle: int
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    last_commit_cycle: int = 0


class FMCProcessor:
    """Cache Processor + Memory Processor timing model hosting an LSQ policy."""

    def __init__(
        self,
        config: Optional[FMCConfig] = None,
        elsq_config: Optional[ELSQConfig] = None,
        hierarchy_config: Optional[MemoryHierarchyConfig] = None,
        policy: Optional[LSQPolicy] = None,
        stats: Optional[StatsRegistry] = None,
        name: str = "fmc",
        warm_caches: bool = True,
    ) -> None:
        self.config = config if config is not None else FMCConfig()
        self.elsq_config = elsq_config if elsq_config is not None else ELSQConfig()
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.hierarchy = MemoryHierarchy(hierarchy_config, self.stats)
        self.warm_caches = warm_caches
        if policy is not None:
            self.policy = policy
        else:
            self.policy = EpochBasedLSQ(
                self.elsq_config, self.stats, self.hierarchy, self.config.interconnect
            )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> CoreResult:
        """Simulate ``trace`` on the FMC and return the timing result."""
        cp = self.config.cache_processor
        me = self.config.memory_engine
        stats = self.stats
        threshold = self.elsq_config.locality_threshold_cycles
        if self.warm_caches and trace.regions:
            self.hierarchy.warm_up_regions(trace.regions)

        load_hist = stats.histogram(
            "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
        )
        store_hist = stats.histogram(
            "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
        )

        fetch_bw = BandwidthAllocator(cp.fetch_width)
        cp_issue_bw = BandwidthAllocator(cp.issue_width)
        commit_bw = BandwidthAllocator(cp.commit_width)
        cache_ports = BandwidthAllocator(self.hierarchy.config.cache_ports)
        migrate_bw = BandwidthAllocator(cp.fetch_width)
        cp_rob = OccupancyWindow(cp.rob_size)
        hl_loads = OccupancyWindow(self.elsq_config.hl_load_entries)
        hl_stores = OccupancyWindow(self.elsq_config.hl_store_entries)
        epoch_pool = OccupancyWindow(self.config.num_memory_engines)
        commit_frontier = InOrderTracker()
        fetch_frontier = InOrderTracker()
        migration_frontier = InOrderTracker()

        register_ready: Dict[int, int] = {}
        epoch_issue: Dict[int, Tuple[BandwidthAllocator, InOrderTracker]] = {}

        fetch_resume_cycle = 0
        migration_block_until = 0
        mp_active_until = 0
        ll_active_cycles = 0
        epoch_live_cycle_sum = 0
        next_epoch_id = 0
        current_epoch: Optional[_EpochBook] = None
        num_loads = 0
        num_stores = 0
        wrong_path_estimate = 0.0
        last_commit_cycle = 0

        disambiguation = self.elsq_config.disambiguation

        for instruction in trace:
            # ---------------- fetch / decode ----------------
            desired_fetch = max(fetch_resume_cycle, fetch_frontier.cycle, cp_rob.constraint())
            if instruction.is_load:
                desired_fetch = max(desired_fetch, hl_loads.constraint())
            elif instruction.is_store:
                desired_fetch = max(desired_fetch, hl_stores.constraint())
            fetch_cycle = fetch_bw.allocate(desired_fetch)
            fetch_frontier.advance(fetch_cycle)
            decode_cycle = fetch_cycle + cp.decode_latency

            # ---------------- operand readiness ----------------
            if instruction.is_store and instruction.srcs:
                address_srcs = instruction.srcs[:-1] or instruction.srcs
                data_srcs = instruction.srcs[-1:]
            else:
                address_srcs = instruction.srcs
                data_srcs = ()
            addr_ready = decode_cycle
            for src in address_srcs:
                addr_ready = max(addr_ready, register_ready.get(src, 0))
            data_ready = addr_ready
            for src in data_srcs:
                data_ready = max(data_ready, register_ready.get(src, 0))

            # ---------------- locality classification ----------------
            locality = (
                Locality.LOW if addr_ready - decode_cycle > threshold else Locality.HIGH
            )
            mp_active = decode_cycle < mp_active_until
            migrates = mp_active or locality is Locality.LOW

            # ---------------- epoch assignment / migration ----------------
            epoch_id: Optional[int] = None
            migration_cycle: Optional[int] = None
            if migrates:
                if current_epoch is None or self._epoch_full(current_epoch, instruction, me):
                    if current_epoch is not None:
                        epoch_live_cycle_sum += self._close_epoch(current_epoch, epoch_pool)
                    pool_ready = epoch_pool.constraint()
                    if pool_ready > decode_cycle:
                        # Every engine holds a live epoch: opening the next
                        # one (and with it migration, and ultimately fetch)
                        # waits for the oldest epoch to commit.
                        stats.counter("fmc.migration_stall_cycles").add(
                            pool_ready - decode_cycle
                        )
                        stats.bump("fmc.migration_stalls")
                    current_epoch = _EpochBook(
                        epoch_id=next_epoch_id,
                        open_cycle=max(decode_cycle, pool_ready),
                    )
                    self.policy.epoch_opened(current_epoch.epoch_id, current_epoch.open_cycle)
                    next_epoch_id += 1
                epoch_id = current_epoch.epoch_id
                migration_desired = max(
                    decode_cycle + self.config.interconnect.cp_to_mp_latency,
                    migration_frontier.cycle,
                    current_epoch.open_cycle,
                )
                if instruction.is_memory:
                    migration_desired = max(migration_desired, migration_block_until)
                migration_cycle = migrate_bw.allocate(migration_desired)
                migration_frontier.advance(migration_cycle)
                self._book_epoch_entry(current_epoch, instruction)
                stats.bump("fmc.migrated_instructions")

                # Restricted disambiguation: a miss-dependent address
                # calculation of the restricted kind blocks migration of
                # younger memory references until it resolves (Section 3.3).
                if locality is Locality.LOW and instruction.is_store and (
                    disambiguation.restricts_store_address_calculation
                ):
                    migration_block_until = max(migration_block_until, addr_ready)
                    stats.bump("fmc.rsac_migration_blocks")
                if locality is Locality.LOW and instruction.is_load and (
                    disambiguation.restricts_load_address_calculation
                ):
                    migration_block_until = max(migration_block_until, addr_ready)
                    stats.bump("fmc.rlac_migration_blocks")

            # ---------------- issue and execute ----------------
            violation = False
            squash_penalty = 0
            insertion_stall = 0
            pending_load_record: Optional[LoadRecord] = None

            if locality is Locality.LOW and epoch_id is not None:
                issue_bw, issue_frontier = self._engine_resources(epoch_issue, epoch_id, me)
                base = max(addr_ready, migration_cycle or addr_ready, issue_frontier.cycle)
                issue_cycle = issue_bw.allocate(base)
                issue_frontier.advance(issue_cycle)
            else:
                issue_cycle = cp_issue_bw.allocate(addr_ready)
                if instruction.is_load:
                    issue_cycle = cache_ports.allocate(issue_cycle)

            if instruction.is_load:
                num_loads += 1
                load_hist.record(issue_cycle - decode_cycle)
                pending_load_record = LoadRecord(
                    seq=instruction.seq,
                    address=instruction.address or 0,
                    size=instruction.size,
                    decode_cycle=decode_cycle,
                    issue_cycle=issue_cycle,
                    locality=locality,
                    epoch_id=epoch_id,
                    migration_cycle=migration_cycle,
                )
                outcome = self.policy.load_issued(pending_load_record)
                complete = issue_cycle + max(1, outcome.latency)
                violation = outcome.violation
                squash_penalty = outcome.squash_penalty
            elif instruction.is_store:
                num_stores += 1
                store_hist.record(issue_cycle - decode_cycle)
                complete = max(issue_cycle, data_ready)
            elif instruction.is_branch:
                complete = issue_cycle + cp.branch_latency
            else:
                latency = instruction.latency
                if latency is None:
                    latency = (
                        cp.fp_alu_latency
                        if instruction.iclass is InstrClass.FP_ALU
                        else cp.int_alu_latency
                    )
                complete = issue_cycle + latency

            if instruction.dest is not None:
                register_ready[instruction.dest] = complete

            # ---------------- commit ----------------
            commit_ready = max(complete, commit_frontier.cycle)
            commit_cycle = commit_bw.allocate(commit_ready)

            if instruction.is_store:
                store_record = StoreRecord(
                    seq=instruction.seq,
                    address=instruction.address or 0,
                    size=instruction.size,
                    decode_cycle=decode_cycle,
                    addr_ready_cycle=issue_cycle,
                    data_ready_cycle=max(issue_cycle, data_ready),
                    commit_cycle=commit_cycle,
                    locality=locality,
                    epoch_id=epoch_id,
                    migration_cycle=migration_cycle,
                )
                store_outcome = self.policy.store_issued(store_record)
                squash_penalty = max(squash_penalty, store_outcome.squash_penalty)
                insertion_stall = store_outcome.insertion_stall
                self.policy.store_committed(store_record)
            elif pending_load_record is not None:
                pending_load_record.commit_cycle = commit_cycle
                commit_extra = self.policy.load_committed(pending_load_record)
                if commit_extra.extra_latency:
                    commit_cycle += commit_extra.extra_latency

            commit_frontier.advance(commit_cycle)
            last_commit_cycle = max(last_commit_cycle, commit_cycle)

            cp_leave_cycle = migration_cycle if migration_cycle is not None else commit_cycle
            cp_rob.push(cp_leave_cycle)
            if instruction.is_load:
                hl_loads.push(cp_leave_cycle)
            elif instruction.is_store:
                hl_stores.push(cp_leave_cycle)

            if current_epoch is not None and epoch_id == current_epoch.epoch_id:
                current_epoch.last_commit_cycle = max(
                    current_epoch.last_commit_cycle, commit_cycle
                )

            # ---------------- Memory Processor activity ----------------
            if migrates and migration_cycle is not None:
                interval_start = max(migration_cycle, mp_active_until)
                if commit_cycle > interval_start:
                    ll_active_cycles += commit_cycle - interval_start
                    mp_active_until = commit_cycle

            # ---------------- control / squash handling ----------------
            if instruction.is_branch and instruction.mispredicted:
                resolve_cycle = complete + cp.branch_mispredict_penalty
                fetch_resume_cycle = max(fetch_resume_cycle, resolve_cycle)
                stats.bump("core.branch_mispredicts")
                exposed = max(0, complete - fetch_cycle)
                wrong_path_estimate += min(cp.fetch_width * exposed, _WRONG_PATH_CAP)
            if violation:
                stats.bump("core.violation_squashes")
                fetch_resume_cycle = max(
                    fetch_resume_cycle,
                    complete + cp.branch_mispredict_penalty + _VIOLATION_EXTRA_PENALTY,
                )
            if squash_penalty:
                fetch_resume_cycle = max(fetch_resume_cycle, issue_cycle + squash_penalty)
            if insertion_stall:
                migration_block_until = max(migration_block_until, issue_cycle + insertion_stall)

        if current_epoch is not None:
            epoch_live_cycle_sum += self._close_epoch(current_epoch, epoch_pool)

        committed = len(trace)
        total_cycles = max(1, last_commit_cycle)
        self._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
        self.policy.finalize(total_cycles, committed)
        stats.counter("core.cycles").add(total_cycles)
        stats.counter("core.committed_instructions").add(committed)
        stats.counter("fmc.ll_active_cycles").add(min(ll_active_cycles, total_cycles))
        stats.counter("fmc.epochs_allocated").add(next_epoch_id)

        high_locality_fraction = 1.0 - min(ll_active_cycles, total_cycles) / total_cycles
        mean_allocated_epochs = (
            epoch_live_cycle_sum / ll_active_cycles if ll_active_cycles > 0 else 0.0
        )

        return CoreResult(
            trace_name=trace.name,
            config_name=self.name,
            cycles=total_cycles,
            committed_instructions=committed,
            stats=stats.snapshot(),
            high_locality_fraction=high_locality_fraction,
            mean_allocated_epochs=mean_allocated_epochs,
            extra={"epochs_opened": float(next_epoch_id)},
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _epoch_full(book: _EpochBook, instruction: Instruction, me) -> bool:
        """Whether the epoch cannot accept ``instruction``."""
        if book.instructions >= me.max_instructions:
            return True
        if instruction.is_load and book.loads >= me.max_loads:
            return True
        if instruction.is_store and book.stores >= me.max_stores:
            return True
        return False

    @staticmethod
    def _book_epoch_entry(book: _EpochBook, instruction: Instruction) -> None:
        book.instructions += 1
        if instruction.is_load:
            book.loads += 1
        elif instruction.is_store:
            book.stores += 1

    def _close_epoch(self, book: _EpochBook, epoch_pool: OccupancyWindow) -> int:
        """Close a filled epoch: notify the policy and return its live-cycle span."""
        commit_cycle = max(book.last_commit_cycle, book.open_cycle)
        epoch_pool.push(commit_cycle)
        self.policy.epoch_committed(book.epoch_id, commit_cycle)
        return commit_cycle - book.open_cycle

    @staticmethod
    def _engine_resources(
        epoch_issue: Dict[int, Tuple[BandwidthAllocator, InOrderTracker]],
        epoch_id: int,
        me,
    ) -> Tuple[BandwidthAllocator, InOrderTracker]:
        resources = epoch_issue.get(epoch_id)
        if resources is None:
            resources = (BandwidthAllocator(me.issue_width), InOrderTracker())
            epoch_issue[epoch_id] = resources
        return resources

    def _account_wrong_path(
        self, wrong_path_estimate: float, committed: int, num_loads: int, num_stores: int
    ) -> None:
        """Attribute estimated wrong-path LSQ activity to the policy counters."""
        if committed == 0 or wrong_path_estimate <= 0:
            return
        active = wrong_path_estimate * _WRONG_PATH_ACTIVITY_FACTOR
        load_fraction = num_loads / committed
        store_fraction = num_stores / committed
        self.policy.record_wrong_path_activity(
            wrong_path_loads=int(active * load_fraction),
            wrong_path_stores=int(active * store_fraction),
        )

"""The Flexible MultiCore (FMC) decoupled large-window processor.

The FMC (Section 4 of the paper) pairs a conventional out-of-order *Cache
Processor* with a *Memory Processor* made of small in-order *memory engines*.
High-locality instructions execute in the Cache Processor right after decode;
instructions that depend on an L2/memory miss -- and, while the Memory
Processor is busy, every instruction that must vacate the Cache Processor's
small ROB -- migrate to the memory engines, grouped into age-ordered *epochs*
that map one-to-one onto the ELSQ's low-locality banks.

:class:`~repro.fmc.processor.FMCProcessor` is the one-pass timing model of
this machine; it drives whichever :class:`~repro.core.policy.LSQPolicy` it is
given (the Epoch-based LSQ or the idealised central LSQ baseline).
"""

from repro.fmc.processor import FMCProcessor

__all__ = ["FMCProcessor"]

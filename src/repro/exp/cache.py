"""The content-addressed on-disk result cache.

Every simulation the orchestration layer runs is identified by a stable
SHA-256 key derived from the full machine configuration, the workload
parameters, the trace length and the seed (see
:func:`repro.exp.runner.job_key`).  :class:`ResultCache` stores one JSON file
per key under ``<root>/<key[:2]>/<key>.json``; because the key is a content
address, a cached entry is valid forever -- changing any input produces a
different key, so there is no invalidation logic and no staleness.

Writes are atomic (temporary file + ``os.replace``) so concurrent runs and
interrupted sweeps can share a cache directory safely; a corrupt or
truncated entry is treated as a miss and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.common.errors import ReproError
from repro.faults import get_injector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.trace.format import TRACE_FORMAT_VERSION
from repro.uarch.result import CoreResult

#: Bump when the on-disk entry layout changes; mismatched entries are misses.
CACHE_SCHEMA_VERSION = 1

#: A ``.tmp`` file older than this is an orphan of a killed writer and safe
#: for :meth:`ResultCache.clear` to sweep; younger ones may be live writes.
ORPHAN_TEMP_AGE_SECONDS = 3600.0


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one cached simulation (as shown by ``repro cache list``)."""

    key: str
    path: Path
    machine: str
    workload: str
    num_instructions: int
    seed: Optional[int]
    created: float
    size_bytes: int
    #: Trace-format version the entry was simulated under (0 for entries
    #: written before the field existed; those never match and read as stale).
    trace_format: int = 0

    @property
    def is_stale(self) -> bool:
        """Whether this entry predates the current trace format."""
        return self.trace_format != TRACE_FORMAT_VERSION


@dataclass(frozen=True)
class PruneReport:
    """Outcome of a :meth:`ResultCache.prune` pass."""

    removed: int
    freed_bytes: int
    remaining: int
    remaining_bytes: int


class ResultCache:
    """A directory of content-addressed :class:`CoreResult` records."""

    def __init__(
        self, root: Union[str, Path], metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = Path(root)
        # CLI-constructed caches share the process-global registry; the
        # service hands in its own so embedded instances stay isolated.
        registry = metrics if metrics is not None else get_registry()
        requests = registry.counter(
            "repro_cache_requests_total",
            "Result-cache lookups, by outcome",
            labelnames=("result",),
        )
        self._hits = requests.labels("hit")
        self._misses = requests.labels("miss")
        self._corrupt = requests.labels("corrupt")
        io_bytes = registry.counter(
            "repro_cache_io_bytes_total",
            "Bytes moved through the result cache, by direction",
            labelnames=("direction",),
        )
        self._bytes_read = io_bytes.labels("read")
        self._bytes_written = io_bytes.labels("written")

    def path_for(self, key: str) -> Path:
        """Return the file path a key maps to (two-level fan-out layout)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CoreResult]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched entries are silently treated as
        misses; the next :meth:`put` overwrites them.  Entries recorded
        under a different trace-format version are also misses: the content
        address *should* already differ (the job key folds the version in),
        but the belt-and-braces check here means a stale result can never be
        served even to a caller that computed its key some other way.

        A *corrupt* entry -- truncated mid-write, undecodable, or carrying a
        result payload that no longer parses -- is worse than stale: it
        occupies the key, so without intervention every future lookup would
        re-parse the same wreckage.  Those are quarantined (renamed to
        ``<name>.corrupt``, outside the ``??/*.json`` globs, for post-mortem
        inspection) and counted under a distinct
        ``repro_cache_requests_total{result="corrupt"}`` label, then the
        lookup misses as usual and the next :meth:`put` rewrites the entry.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self._misses.inc()
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            self._misses.inc()
            return None
        if payload.get("trace_format") != TRACE_FORMAT_VERSION:
            self._misses.inc()
            return None
        try:
            result = CoreResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, ReproError):
            self._quarantine(path)
            return None
        self._hits.inc()
        self._bytes_read.inc(len(data))
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside and count the corrupt lookup."""
        self._corrupt.inc()
        self._misses.inc()
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - raced with a concurrent writer
            pass

    def put(
        self, key: str, result: CoreResult, metadata: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Store ``result`` under ``key`` atomically and return the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "trace_format": TRACE_FORMAT_VERSION,
            "key": key,
            "created": time.time(),
            "metadata": metadata or {},
            "result": result.to_dict(),
        }
        # The temporary must be unique per writer: the service's worker
        # threads can put() the same key concurrently in one process, so the
        # pid alone would collide (one thread renaming another's torn file).
        temporary = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        document = json.dumps(payload, sort_keys=True)
        injector = get_injector()
        if injector is not None and injector.should("corrupt_cache", key=key):
            # Chaos harness: model a torn write by persisting only half the
            # document (atomically, so this tests the *reader's* quarantine
            # path, not the writer's temp-file handling).
            document = document[: max(1, len(document) // 2)]
        try:
            temporary.write_text(document, encoding="utf-8")
            os.replace(temporary, path)
        except BaseException:
            # Never leave a torn temporary behind: a reader can only ever see
            # the complete old entry or the complete new one.
            try:
                temporary.unlink()
            except OSError:
                pass
            raise
        self._bytes_written.inc(len(document.encode("utf-8")))
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over every readable cache entry, newest first."""
        records = []
        for path in sorted(self.root.glob("??/*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                # Inside the try: a concurrent clear()/prune() may unlink the
                # entry between the read and the stat.
                size_bytes = path.stat().st_size
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA_VERSION:
                continue
            metadata = payload.get("metadata", {})
            records.append(
                CacheEntry(
                    key=payload.get("key", path.stem),
                    path=path,
                    machine=metadata.get("machine", "?"),
                    workload=metadata.get("workload", "?"),
                    num_instructions=metadata.get("num_instructions", 0),
                    seed=metadata.get("seed"),
                    created=payload.get("created", 0.0),
                    size_bytes=size_bytes,
                    trace_format=payload.get("trace_format", 0),
                )
            )
        records.sort(key=lambda entry: entry.created, reverse=True)
        return iter(records)

    def clear(self, stale_only: bool = False) -> int:
        """Delete cache entries and return how many were removed.

        With ``stale_only`` the pass removes only entries recorded under an
        older trace-format version (``repro cache clear --stale``) -- those
        can never be hits again, so sweeping them reclaims space without
        touching live results.
        """
        removed = 0
        if stale_only:
            for entry in self.entries():
                if not entry.is_stale:
                    continue
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:
                    continue
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        # Also sweep temporaries orphaned by killed writers (not counted).
        # Only stale ones: a concurrent put() may be between its write and
        # rename right now, and unlinking its live temp would fail that job.
        cutoff = time.time() - ORPHAN_TEMP_AGE_SECONDS
        for path in self.root.glob("??/.*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                continue
        return removed

    def prune(
        self,
        older_than_seconds: Optional[float] = None,
        max_size_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> PruneReport:
        """Evict entries by age and/or total size so long-lived caches stay bounded.

        Entries older than ``older_than_seconds`` (measured against ``now``,
        default wall clock) are always removed; afterwards, if the surviving
        entries still exceed ``max_size_bytes``, the oldest are evicted first
        until the cache fits.  Content addressing makes eviction always safe:
        a pruned entry is simply re-simulated on its next request.
        """
        now = time.time() if now is None else now
        survivors = sorted(self.entries(), key=lambda entry: entry.created)
        doomed = []
        if older_than_seconds is not None:
            doomed = [e for e in survivors if now - e.created >= older_than_seconds]
            survivors = [e for e in survivors if now - e.created < older_than_seconds]
        if max_size_bytes is not None:
            total = sum(entry.size_bytes for entry in survivors)
            while survivors and total > max_size_bytes:
                oldest = survivors.pop(0)
                total -= oldest.size_bytes
                doomed.append(oldest)
        freed = 0
        removed = 0
        for entry in doomed:
            try:
                entry.path.unlink()
            except OSError:
                continue
            removed += 1
            freed += entry.size_bytes
        return PruneReport(
            removed=removed,
            freed_bytes=freed,
            remaining=len(survivors),
            remaining_bytes=sum(entry.size_bytes for entry in survivors),
        )

"""The content-addressed on-disk result cache.

Every simulation the orchestration layer runs is identified by a stable
SHA-256 key derived from the full machine configuration, the workload
parameters, the trace length and the seed (see
:func:`repro.exp.runner.job_key`).  :class:`ResultCache` stores one JSON file
per key under ``<root>/<key[:2]>/<key>.json``; because the key is a content
address, a cached entry is valid forever -- changing any input produces a
different key, so there is no invalidation logic and no staleness.

Writes are atomic (temporary file + ``os.replace``) so concurrent runs and
interrupted sweeps can share a cache directory safely; a corrupt or
truncated entry is treated as a miss and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.common.errors import ReproError
from repro.uarch.result import CoreResult

#: Bump when the on-disk entry layout changes; mismatched entries are misses.
CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one cached simulation (as shown by ``repro cache list``)."""

    key: str
    path: Path
    machine: str
    workload: str
    num_instructions: int
    seed: Optional[int]
    created: float
    size_bytes: int


class ResultCache:
    """A directory of content-addressed :class:`CoreResult` records."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Return the file path a key maps to (two-level fan-out layout)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CoreResult]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        Unreadable, corrupt or schema-mismatched entries are silently treated
        as misses; the next :meth:`put` overwrites them.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return CoreResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, ReproError):
            return None

    def put(
        self, key: str, result: CoreResult, metadata: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Store ``result`` under ``key`` atomically and return the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "created": time.time(),
            "metadata": metadata or {},
            "result": result.to_dict(),
        }
        temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(temporary, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over every readable cache entry, newest first."""
        records = []
        for path in sorted(self.root.glob("??/*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA_VERSION:
                continue
            metadata = payload.get("metadata", {})
            records.append(
                CacheEntry(
                    key=payload.get("key", path.stem),
                    path=path,
                    machine=metadata.get("machine", "?"),
                    workload=metadata.get("workload", "?"),
                    num_instructions=metadata.get("num_instructions", 0),
                    seed=metadata.get("seed"),
                    created=payload.get("created", 0.0),
                    size_bytes=path.stat().st_size,
                )
            )
        records.sort(key=lambda entry: entry.created, reverse=True)
        return iter(records)

    def clear(self) -> int:
        """Delete every cache entry and return how many were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

"""The ``python -m repro`` command line interface.

Reproduce any paper figure/table from the shell, with parallelism and an
on-disk result cache::

    python -m repro fig7 --jobs 4 --cache-dir .repro-cache
    python -m repro all --full --jobs 8 --json results.json
    python -m repro fig7 --engine reference   # the unoptimised ground-truth loop
    python -m repro cache list
    python -m repro bench --jobs 4 --gate BENCH_pr1.json --output BENCH_pr4.json
    python -m repro profile fig7 --trace-out fig7-trace.json --jobs 4

Every figure command prints the paper-layout text table plus a one-line
runner summary (simulations executed vs cache hits); ``--json`` additionally
writes a machine-readable artifact containing the full result series and the
campaign parameters.  A second invocation with the same parameters and cache
directory completes entirely from the cache, executing zero simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._version import __version__
from repro.common import phases
from repro.common.errors import ReproError
from repro.common.serialize import to_jsonable
from repro.exp.cache import ResultCache
from repro.obs import spans as obs_spans
from repro.obs.logs import LOG_LEVELS, configure_logging
from repro.exp.runner import ExperimentRunner, available_cpus, clear_trace_memo
from repro.memory.replacement import TIMING_POLICY_NAMES
from repro.sim import tables
from repro.sim.configs import PAPER_CONFIGS
from repro.sim.engine import DEFAULT_ENGINE, engine_names
from repro.sim.engine.fast import clear_warm_memo
from repro.sim.experiments import (
    DEFAULT_SEED,
    EXPERIMENTS,
    ExperimentContext,
    campaign_context,
)

#: Default cache directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default service port/URL.  Restated here (rather than imported from
#: repro.service.server) so figure commands never import the HTTP stack; a
#: test asserts it matches repro.service.server.DEFAULT_PORT.
DEFAULT_SERVICE_PORT = 8077
DEFAULT_SERVICE_URL = f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}"


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible paper artifact: how to run it and how to render it."""

    name: str
    description: str
    run: Callable[[ExperimentContext], Any]
    render: Callable[[Any], str]
    #: Fixed suite scope, when the experiment does not sweep the campaign's
    #: SPEC-like suites (``None`` otherwise); mirrored from ExperimentSpec.
    suites: Optional[tuple] = None


#: How each registered experiment's result renders as a paper-layout table.
_RENDERERS: Dict[str, Callable[[Any], str]] = {
    "fig1": tables.format_fig1,
    "sec52": tables.format_sec52,
    "fig7": lambda result: tables.format_fig7(result[0], result[1]),
    "fig8a": tables.format_fig8a,
    "fig8bc": tables.format_fig8bc,
    "fig9": tables.format_fig9,
    "fig10": tables.format_fig10,
    "fig11": tables.format_fig11,
    "table2": tables.format_table2,
    "sec6": tables.format_sec6,
    "family-sweep": tables.format_family_sweep,
}

def _json_render(result: Any) -> str:
    """Fallback renderer: pretty-printed JSON of the result series."""
    return json.dumps(to_jsonable(result), indent=2, sort_keys=True)


def _render_policy_sweep(result: Any) -> str:
    """Compact miss-ratio-curve tables, one per workload family."""
    sizes = result["sizes_bytes"]
    header = "  ".join(f"{size // 1024:>4}K" for size in sizes)
    lines = ["policy-sweep: miss ratio vs cache size, per workload family"]
    for family, block in result["families"].items():
        lines.append("")
        lines.append(f"{family}  (members: {', '.join(block['members'])})")
        lines.append(f"  {'policy':<8} {header}")
        for policy, curve in block["curves"].items():
            cells = "  ".join(f"{ratio:5.3f}" for ratio in curve)
            lines.append(f"  {policy:<8} {cells}")
    return "\n".join(lines)


_RENDERERS["policy-sweep"] = _render_policy_sweep


#: The CLI's figure table is the experiment registry plus a renderer each, so
#: the set of names the CLI accepts is exactly what the service accepts.  An
#: experiment registered without a table renderer falls back to JSON output
#: rather than breaking the whole CLI at import time; a test asserts the two
#: maps actually stay in sync.
FIGURES: Dict[str, FigureSpec] = {
    name: FigureSpec(
        name, spec.description, spec.run, _RENDERERS.get(name, _json_render), spec.suites
    )
    for name, spec in EXPERIMENTS.items()
}

#: Figures used by ``repro bench`` unless overridden (fast but representative).
DEFAULT_BENCH_FIGURES = ("sec52", "fig7")


def build_context(args: argparse.Namespace, runner: Optional[ExperimentRunner]) -> ExperimentContext:
    """Build the experiment campaign the CLI flags describe."""
    from repro.common.errors import ConfigurationError

    if getattr(args, "quick", False) and args.full:
        raise ConfigurationError("--quick and --full are mutually exclusive")
    return campaign_context(
        full=args.full,
        instructions=args.instructions,
        seed=args.seed,
        runner=runner,
        engine=getattr(args, "engine", None),
        policy=getattr(args, "policy", None),
    )


def build_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the runner (parallelism + cache) the CLI flags describe."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ExperimentRunner(jobs=args.jobs, cache=cache)


def _campaign_parameters(args: argparse.Namespace, context: ExperimentContext) -> Dict[str, Any]:
    return {
        "suites": [context.fp_suite.name, context.int_suite.name],
        "instructions_per_workload": context.instructions_per_workload,
        "seed": context.seed,
        "jobs": args.jobs,
        "cache_dir": None if args.no_cache else str(args.cache_dir),
        "full": bool(args.full),
        "engine": getattr(args, "engine", None) or DEFAULT_ENGINE,
        "policy": getattr(args, "policy", None) or "lru",
    }


def run_figures(figure_names: List[str], args: argparse.Namespace) -> int:
    """Run the named figures through one shared runner/context.

    The runner's worker pool persists across the figures (that is the point
    of pool reuse) and is torn down once the last figure completes.
    """
    with build_runner(args) as runner:
        return _run_figures(figure_names, args, runner)


def _run_figures(
    figure_names: List[str], args: argparse.Namespace, runner: ExperimentRunner
) -> int:
    context = build_context(args, runner)
    artifact: Dict[str, Any] = {
        "command": " ".join(figure_names),
        "parameters": _campaign_parameters(args, context),
        "figures": {},
    }
    for name in figure_names:
        spec = FIGURES[name]
        started = time.perf_counter()
        executed_before, hits_before = runner.executed_jobs, runner.cache_hits
        result = spec.run(context)
        elapsed = time.perf_counter() - started
        executed = runner.executed_jobs - executed_before
        hits = runner.cache_hits - hits_before
        if not args.quiet:
            print(spec.render(result))
            print(
                f"[repro] {name}: {executed} simulated, {hits} from cache, {elapsed:.2f}s"
            )
            print()
        artifact["figures"][name] = {
            "description": spec.description,
            # Which workloads the numbers actually came from: the campaign's
            # suites unless the experiment has a fixed scope of its own.
            "suites": (
                list(spec.suites)
                if spec.suites is not None
                else artifact["parameters"]["suites"]
            ),
            "elapsed_seconds": elapsed,
            "executed_jobs": executed,
            "cache_hits": hits,
            "results": to_jsonable(result),
        }
    artifact["executed_jobs"] = runner.executed_jobs
    artifact["cache_hits"] = runner.cache_hits
    # Convenience top-level alias when a single figure was requested.
    artifact["results"] = (
        artifact["figures"][figure_names[0]]["results"] if len(figure_names) == 1 else None
    )
    if args.json:
        Path(args.json).write_text(json.dumps(artifact, indent=2, sort_keys=True))
        if not args.quiet:
            print(f"[repro] wrote {args.json}")
    return 0


def run_cache_command(args: argparse.Namespace) -> int:
    """Implement ``repro cache list|info|clear`` (clear supports pruning)."""
    cache = ResultCache(args.cache_dir)
    pruning = args.older_than is not None or args.max_size is not None
    if (pruning or args.stale) and args.action != "clear":
        print(
            "[repro] --older-than/--max-size/--stale only apply to `cache clear`",
            file=sys.stderr,
        )
        return 2
    if args.action == "clear":
        if args.stale:
            if pruning:
                print(
                    "[repro] --stale cannot be combined with --older-than/--max-size",
                    file=sys.stderr,
                )
                return 2
            removed = cache.clear(stale_only=True)
            print(
                f"[repro] removed {removed} stale-format cache entries from {cache.root}"
            )
            return 0
        if pruning:
            report = cache.prune(
                older_than_seconds=(
                    None if args.older_than is None else args.older_than * 86_400.0
                ),
                max_size_bytes=(
                    None if args.max_size is None else int(args.max_size * 1024 * 1024)
                ),
            )
            print(
                f"[repro] pruned {report.removed} entries "
                f"({report.freed_bytes / 1024:.1f} KiB) from {cache.root}; "
                f"{report.remaining} remain ({report.remaining_bytes / 1024:.1f} KiB)"
            )
            return 0
        removed = cache.clear()
        print(f"[repro] removed {removed} cache entries from {cache.root}")
        return 0
    entries = list(cache.entries())
    if args.action == "info":
        total_bytes = sum(entry.size_bytes for entry in entries)
        print(f"cache directory : {cache.root}")
        print(f"entries         : {len(entries)}")
        print(f"total size      : {total_bytes / 1024:.1f} KiB")
        return 0
    if not entries:
        print(f"[repro] cache {cache.root} is empty")
        return 0
    print(f"{'key':<16} {'machine':<24} {'workload':<16} {'instrs':>8} {'seed':>6}")
    for entry in entries:
        seed = "-" if entry.seed is None else str(entry.seed)
        print(
            f"{entry.key[:16]:<16} {entry.machine:<24} {entry.workload:<16} "
            f"{entry.num_instructions:>8} {seed:>6}"
        )
    return 0


def run_list_command(_args: argparse.Namespace) -> int:
    """Implement ``repro list``: every figure and named machine configuration."""
    print("figures / tables:")
    for name, spec in FIGURES.items():
        print(f"  {name:<8} {spec.description}")
    print()
    print("machine configurations (Table 2 names):")
    for name in PAPER_CONFIGS:
        print(f"  {name}")
    print()
    from repro.workloads.suite import suite_names

    print("suites: " + ", ".join(suite_names()))
    return 0


def evaluate_bench_gate(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    min_improvement: float = 2.0,
    min_speedup: float = 1.0,
) -> Tuple[bool, List[str]]:
    """Compare a bench artifact against a recorded baseline artifact.

    For every figure present in both artifacts the gate requires

    * ``baseline serial wall time / current serial wall time`` to be at least
      ``min_improvement`` (the hot path must not regress -- and, across the
      fast-engine transition, must improve), and
    * the current run's parallel ``speedup`` to exceed ``min_speedup``
      (dispatching over the pool must never cost more than it saves).

    Returns ``(ok, report lines)``; no shared figure is itself a failure.
    """
    current_figures = current.get("figures", {})
    baseline_figures = baseline.get("figures", {})
    shared = [name for name in current_figures if name in baseline_figures]
    if not shared:
        return False, ["gate: the artifacts share no figures; nothing to compare"]
    lines = []
    ok = True
    for name in shared:
        cur = current_figures[name]
        base = baseline_figures[name]
        if not isinstance(base, dict) or "serial_seconds" not in base:
            return False, [
                f"gate: {name}: baseline entry carries no serial_seconds; "
                "is the baseline a `repro bench` artifact?"
            ]
        improvement = (
            base["serial_seconds"] / cur["serial_seconds"] if cur["serial_seconds"] else 0.0
        )
        speedup = cur.get("speedup", 0.0)
        improvement_ok = improvement >= min_improvement
        speedup_ok = speedup > min_speedup
        ok = ok and improvement_ok and speedup_ok
        lines.append(
            f"gate: {name}: serial {base['serial_seconds']:.2f}s -> "
            f"{cur['serial_seconds']:.2f}s ({improvement:.2f}x vs >= {min_improvement:.2f}x "
            f"required: {'ok' if improvement_ok else 'FAIL'}); parallel speedup "
            f"{speedup:.2f}x vs > {min_speedup:.2f}x required: "
            f"{'ok' if speedup_ok else 'FAIL'}"
        )
    return ok, lines


def _git_revision() -> Optional[str]:
    """The commit hash of the repro code being benchmarked, or ``None``.

    Resolved relative to the installed package (not the caller's working
    directory, which may be an unrelated repository), so the artifact
    records the revision that actually produced the numbers; a non-editable
    install has no checkout and records ``None``.
    """
    import subprocess
    from pathlib import Path

    package_dir = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "-C", str(package_dir), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


def run_bench_command(args: argparse.Namespace) -> int:
    """Implement ``repro bench``: time serial vs parallel execution per figure.

    Caching is disabled for both timed runs so the artifact measures raw
    simulation throughput, not cache I/O.  The two modes deliberately measure
    different operating points:

    * **serial** is the cold path: the in-process memos (generated traces,
      the fast engine's warmed cache states) are cleared first, so the
      figure pays workload generation and warm-up in full.
    * **parallel** is the steady-state orchestration path: the runner's
      reused worker pool and the process's memoised engine state stay live,
      exactly as they do for a long-lived sweep or the simulation service.

    Each mode records a per-phase wall-time breakdown (``phases``:
    generation / build / warmup / drive seconds as reported by the hot
    paths, plus parent-side ``dispatch`` for parallel runs), so a wall-time
    change is attributable to the phase that caused it.  The artifact also
    records the git revision and the engine, making trajectory JSONs
    self-describing.

    With ``--gate BASELINE.json`` the command additionally compares the
    fresh artifact against a previously recorded one and exits non-zero when
    the wall-time improvement or the parallel speedup falls below the
    thresholds (see :func:`evaluate_bench_gate`).
    """
    figure_names = args.figures.split(",") if args.figures else list(DEFAULT_BENCH_FIGURES)
    unknown = [name for name in figure_names if name not in FIGURES]
    if unknown:
        print(f"[repro] unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    artifact: Dict[str, Any] = {
        "artifact": "repro-bench",
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "cpu_count": available_cpus(),
        "git_revision": _git_revision(),
        "engine": args.engine if args.engine else DEFAULT_ENGINE,
        "parallel_jobs": args.jobs,
        "instructions_per_workload": None,
        "seed": args.seed,
        "full": bool(args.full),
        "modes": {
            "serial": "cold start: trace and warm-state memos cleared, inline execution",
            "parallel": "steady state: reused worker pool and in-process engine memos",
        },
        "figures": {},
    }
    print(f"{'figure':<8} {'sims':>5} {'serial':>9} {f'--jobs {args.jobs}':>10} {'speedup':>8}")
    for name in figure_names:
        spec = FIGURES[name]
        timings: Dict[str, float] = {}
        phase_breakdown: Dict[str, Dict[str, float]] = {}
        simulations = 0
        effective_workers = 1
        for mode, jobs in (("serial", 1), ("parallel", args.jobs)):
            runner = ExperimentRunner(jobs=jobs, cache=None)
            context = build_context(args, runner)
            artifact["instructions_per_workload"] = context.instructions_per_workload
            if mode == "serial":
                # Cold start: pay trace generation and cache warm-up in full.
                clear_trace_memo()
                clear_warm_memo()
            else:
                effective_workers = runner.effective_workers()
            phases.reset()
            started = time.perf_counter()
            spec.run(context)
            timings[mode] = time.perf_counter() - started
            phase_breakdown[mode] = phases.snapshot()
            simulations = runner.executed_jobs
            runner.close()
        speedup = timings["serial"] / timings["parallel"] if timings["parallel"] else 0.0
        artifact["figures"][name] = {
            "simulations": simulations,
            "serial_seconds": timings["serial"],
            "parallel_seconds": timings["parallel"],
            "parallel_jobs": args.jobs,
            "effective_workers": effective_workers,
            "speedup": speedup,
            "phases": phase_breakdown,
        }
        print(
            f"{name:<8} {simulations:>5} {timings['serial']:>8.2f}s "
            f"{timings['parallel']:>9.2f}s {speedup:>7.2f}x"
        )
    Path(args.output).write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"[repro] wrote {args.output}")
    if args.gate:
        try:
            baseline = json.loads(Path(args.gate).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"[repro] cannot read gate baseline {args.gate}: {error}", file=sys.stderr)
            return 2
        ok, lines = evaluate_bench_gate(
            artifact,
            baseline,
            min_improvement=args.gate_min_improvement,
            min_speedup=args.gate_min_speedup,
        )
        for line in lines:
            print(f"[repro] {line}")
        if not ok:
            print(f"[repro] bench gate FAILED against {args.gate}", file=sys.stderr)
            return 1
        print(f"[repro] bench gate passed against {args.gate}")
    return 0


def run_trace_command(args: argparse.Namespace) -> int:
    """Implement ``repro trace record|info|replay|submit``.

    ``record`` generates a workload's instruction stream once and writes the
    versioned binary container; ``replay`` simulates a recorded stream
    locally (with ``--verify`` asserting bit-identity against regeneration);
    ``submit`` replays it through a running service by shipping the recorded
    provenance (the determinism contract makes remote regeneration
    bit-identical to the recorded bytes).
    """
    from repro.sim.configs import machine_by_name
    from repro.sim.experiments import QUICK_INSTRUCTIONS
    from repro.sim.simulator import Simulator
    from repro.trace import load_trace_archive, read_trace_header, record_trace

    if args.action == "record":
        from repro.workloads.suite import workload_by_name

        params = workload_by_name(args.target)
        out = args.out if args.out else f"{params.name}.rtrace"
        instructions = args.instructions if args.instructions else QUICK_INSTRUCTIONS
        archive = record_trace(params, instructions, out, seed=args.seed)
        if not args.quiet:
            print(
                f"[repro] recorded {archive.header.num_instructions} instructions of "
                f"{params.name!r} (seed {args.seed}) to {out}"
            )
        return 0

    if args.action == "info":
        header = read_trace_header(args.target)
        print(f"trace file      : {args.target}")
        print(f"format version  : {header.format_version}")
        print(f"name            : {header.name}")
        print(f"instructions    : {header.num_instructions}")
        print(f"seed            : {'-' if header.seed is None else header.seed}")
        print(f"workload params : {'recorded' if header.params is not None else 'absent'}")
        print(f"regions         : {len(header.regions)}")
        for region in header.regions:
            print(
                f"  {region.name:<16} {region.size_bytes:>12} B  "
                f"weight {region.weight:<8g} {region.pattern}"
            )
        return 0

    if args.action == "replay":
        archive = load_trace_archive(args.target)
        machine = machine_by_name(args.machine)
        if args.engine:
            machine = machine.with_engine(args.engine)
        result = Simulator(machine).run_trace(archive.trace)
        verified: Optional[bool] = None
        if args.verify:
            if archive.header.params is None:
                print(
                    "[repro] --verify needs recorded workload parameters "
                    "(hand-built traces cannot be regenerated)",
                    file=sys.stderr,
                )
                return 2
            from repro.workloads.suite import generate_member_trace

            regenerated = generate_member_trace(
                archive.header.params,
                archive.header.num_instructions,
                seed=archive.header.seed,
            )
            reference = Simulator(machine).run_trace(regenerated)
            verified = result == reference
            if not verified:
                print("[repro] replay DIVERGED from regeneration", file=sys.stderr)
                return 1
        if not args.quiet:
            line = (
                f"[repro] {archive.header.name} on {machine.name}: "
                f"{result.cycles} cycles, IPC {result.ipc:.3f}"
            )
            if verified:
                line += " (replay == regeneration: verified)"
            print(line)
        if args.json:
            Path(args.json).write_text(
                json.dumps(result.to_dict(), indent=2, sort_keys=True)
            )
        return 0

    # submit: replay through a running service via the recorded provenance.
    from repro.exp.runner import SimJob
    from repro.service.client import ServiceClient

    header = read_trace_header(args.target)
    if header.params is None:
        print(
            "[repro] this trace has no recorded workload parameters; "
            "only generator-recorded traces can be replayed remotely",
            file=sys.stderr,
        )
        return 2
    machine = machine_by_name(args.machine)
    job = SimJob(machine, header.params, header.num_instructions, header.seed)
    client = ServiceClient(args.server, timeout=min(args.timeout, 60.0))
    view = client.run(cases=[job], timeout=args.timeout)
    payload = view.get("result", {}).get(job.key())
    if payload is None:
        print("[repro] service response is missing the replayed result", file=sys.stderr)
        return 1
    if not args.quiet:
        ipc = payload["committed_instructions"] / payload["cycles"]
        print(
            f"[repro] {header.name} on {machine.name} via {args.server}: "
            f"{payload['cycles']} cycles, IPC {ipc:.3f} "
            f"({view['progress']['cache_hits']} from cache)"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def run_version_command(_args: argparse.Namespace) -> int:
    """Implement ``repro version`` (the single-sourced package version)."""
    print(f"repro {__version__}")
    return 0


def run_profile_command(args: argparse.Namespace) -> int:
    """Implement ``repro profile``: run one figure with span recording armed.

    The campaign runs with the cache disabled so every simulation actually
    executes (a fully cached run would profile nothing).  Spans recorded in
    this process are merged with the ones each pool worker ships back with
    its results, and the combined timeline is written as Chrome trace-event
    JSON -- load it at https://ui.perfetto.dev or ``chrome://tracing``.
    """
    spec = FIGURES[args.figure]
    runner = ExperimentRunner(jobs=args.jobs, cache=None)
    context = build_context(args, runner)
    phases.reset()
    obs_spans.reset()
    obs_spans.start_recording()
    started = time.perf_counter()
    try:
        with obs_spans.span(f"profile:{args.figure}", category="profile"):
            spec.run(context)
    finally:
        obs_spans.stop_recording()
        runner.close()
    elapsed = time.perf_counter() - started
    spans = obs_spans.snapshot()
    document = obs_spans.to_chrome_trace(
        spans,
        metadata={
            "figure": args.figure,
            "jobs": args.jobs,
            "engine": getattr(args, "engine", None) or DEFAULT_ENGINE,
            "repro_version": __version__,
            "phase_totals": phases.snapshot(),
        },
    )
    Path(args.trace_out).write_text(json.dumps(document, indent=2, sort_keys=True))
    processes = {entry["pid"] for entry in spans}
    if not args.quiet:
        dropped = obs_spans.dropped()
        suffix = f" ({dropped} dropped past the span cap)" if dropped else ""
        print(
            f"[repro] {args.figure}: {len(spans)} spans from "
            f"{len(processes)} process(es) in {elapsed:.2f}s, "
            f"{runner.executed_jobs} simulations{suffix}"
        )
        print(f"[repro] wrote {args.trace_out}")
    return 0


def run_serve_command(args: argparse.Namespace) -> int:
    """Implement ``repro serve``: run the simulation service until Ctrl-C.

    ``--shards N`` (N > 1) runs N full server processes over the shared
    result cache instead of one: each shard owns port ``base+1+index`` and
    the group shares the public ``--port`` via SO_REUSEPORT where the
    platform has it (see :mod:`repro.service.shards`).
    """
    from repro.service.server import ServiceConfig, serve
    from repro.service.shards import serve_sharded
    from repro.service.tenancy import TenancyConfig

    configure_logging(args.log_level, json_format=args.log_json)
    tenancy = TenancyConfig.from_file(args.tenants) if args.tenants else None
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        sim_jobs=args.sim_jobs,
        queue_limit=args.queue_limit,
        cache_dir=None if args.no_cache else args.cache_dir,
        tenancy=tenancy,
        shard_count=max(1, args.shards),
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        journal=not args.no_journal,
        drain_timeout=args.drain_timeout,
        faults=args.faults,
    )
    if config.shard_count > 1:
        serve_sharded(config, log_level=args.log_level, log_json=args.log_json)
    else:
        serve(config)
    return 0


def run_loadbench_command(args: argparse.Namespace) -> int:
    """Implement ``repro loadbench``: ramp load against the service.

    Self-serves a (sharded) server unless ``--server`` points at one,
    drives the configured ramp, writes the JSON artifact, and -- with
    ``--gate`` -- fails when throughput, submit p99 or tenant shares miss
    the thresholds.
    """
    from repro.load.bench import (
        LoadBenchConfig,
        evaluate_loadbench_gate,
        run_loadbench,
    )

    tenant_mix: tuple = ()
    if args.tenant_mix:
        pairs = []
        for item in args.tenant_mix.split(","):
            name, separator, weight = item.partition("=")
            if not separator:
                print(
                    f"[repro] bad --tenant-mix entry {item!r} (want name=weight)",
                    file=sys.stderr,
                )
                return 2
            pairs.append((name.strip(), float(weight)))
        tenant_mix = tuple(pairs)
    try:
        config = LoadBenchConfig(
            server=args.server,
            shards=args.shards,
            serve_workers=args.serve_workers,
            queue_limit=args.queue_limit,
            clients=tuple(int(stage) for stage in args.clients.split(",")),
            mode=args.mode,
            rate=args.rate,
            epoch_seconds=args.epoch_seconds,
            epochs=args.epochs,
            warmup_epochs=args.warmup_epochs,
            instructions=args.instructions,
            tenant_mix=tenant_mix,
            timeout=args.timeout,
            seed=args.seed,
            faults=args.faults,
            expected_failures=args.expected_failures,
        )
    except (ValueError, ReproError) as error:
        print(f"[repro] bad loadbench configuration: {error}", file=sys.stderr)
        return 2
    log = (lambda message: None) if args.quiet else print
    artifact = run_loadbench(config, log=log)
    Path(args.out).write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"[repro] wrote {args.out}")
    if args.gate:
        ok, lines = evaluate_loadbench_gate(
            artifact,
            min_throughput=args.min_throughput,
            max_p99_ms=args.max_p99,
            share_tolerance=args.share_tolerance,
        )
        for line in lines:
            print(f"[repro] {line}")
        if not ok:
            print("[repro] loadbench gate FAILED", file=sys.stderr)
            return 1
        print("[repro] loadbench gate passed")
    return 0


def run_chaos_command(args: argparse.Namespace) -> int:
    """Implement ``repro chaos``: load + fault injection + invariants.

    Self-serves a fault-injected (sharded) server, offers a batch of
    content-addressed submissions, then asserts the fault-tolerance
    contract: zero lost jobs, bit-identical results, every key resolvable
    (after a SIGTERM + restart unless ``--no-restart``), journal replay on
    restart, and a bounded error rate.  Exits non-zero when any check
    fails; the full evidence lands in the JSON artifact.
    """
    from repro.faults.chaos import ChaosConfig, run_chaos

    try:
        config = ChaosConfig(
            shards=args.shards,
            serve_workers=args.serve_workers,
            queue_limit=args.queue_limit,
            submissions=args.submissions,
            clients=args.clients,
            instructions=args.instructions,
            seed=args.seed,
            timeout=args.timeout,
            faults=args.faults,
            max_error_rate=args.max_error_rate,
            restart=not args.no_restart,
        )
    except (ValueError, ReproError) as error:
        print(f"[repro] bad chaos configuration: {error}", file=sys.stderr)
        return 2
    log = (lambda message: None) if args.quiet else print
    ok, artifact = run_chaos(config, log=log)
    Path(args.out).write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"[repro] wrote {args.out}")
    for name, check in artifact["checks"].items():
        print(f"[repro] chaos: {name}: {'ok' if check['ok'] else 'FAIL'} "
              f"({check['detail']})")
    if not ok:
        print("[repro] chaos checks FAILED", file=sys.stderr)
        return 1
    print("[repro] chaos checks passed")
    return 0


def run_stats_command(args: argparse.Namespace) -> int:
    """Implement ``repro stats``: print a server's per-tenant accounting."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server, timeout=min(args.timeout, 60.0))
    stats = client.stats()
    if args.json:
        Path(args.json).write_text(json.dumps(stats, indent=2, sort_keys=True))
    queue = stats["queue"]
    print(
        f"queue: {queue['depth']}/{queue['limit']} queued, "
        f"{queue['running']} running on {queue['workers']} workers; "
        f"uptime {stats['uptime_seconds']:.0f}s"
    )
    tenants = stats.get("tenants", {})
    if not tenants:
        print("no tenants have contacted this server yet")
        return 0
    print(
        f"{'tenant':<16} {'weight':>6} {'share':>6} {'queued':>6} {'run':>4} "
        f"{'admit':>6} {'reject':>6} {'done':>6} {'sims':>6} {'hits':>6} "
        f"{'wait p95':>9} {'svc p95':>9}"
    )
    for name in sorted(tenants):
        entry = tenants[name]
        jobs = entry["jobs"]
        rejected = jobs["rejected_quota"] + jobs["rejected_capacity"]
        print(
            f"{name:<16} {entry['weight']:>6g} {entry['work_share']:>6.2f} "
            f"{entry['queued']:>6} {entry['inflight']:>4} {jobs['admitted']:>6} "
            f"{rejected:>6} {jobs['completed']:>6} {entry['sims']['executed']:>6} "
            f"{entry['sims']['cache_hits']:>6} "
            f"{entry['queue_wait_seconds']['p95']:>8.2f}s "
            f"{entry['service_seconds']['p95']:>8.2f}s"
        )
    return 0


def run_submit_command(args: argparse.Namespace) -> int:
    """Implement ``repro submit``: send a figure to a server and await it."""
    from repro.service.client import ServiceClient

    client = ServiceClient(
        args.server,
        timeout=min(args.timeout, 60.0),
        tenant=args.tenant,
        token=args.auth_token,
    )
    receipt = client.submit(
        figure=args.figure,
        instructions=args.instructions,
        seed=args.seed,
        full=args.full,
        engine=args.engine,
        policy=getattr(args, "policy", None),
        priority=args.priority,
    )
    admitted = "coalesced with in-flight job" if receipt.coalesced else "queued"
    if not args.quiet:
        print(
            f"[repro] {args.figure}: {receipt.job_id} ({admitted}, "
            f"tenant {receipt.tenant}, {receipt.priority} lane), "
            f"request key {receipt.request_key[:16]}"
        )
    if args.no_wait:
        # Honour --json even without waiting: write the submission receipt
        # so scripts can poll the job themselves.
        if args.json:
            receipt_doc = {
                "job_id": receipt.job_id,
                "request_key": receipt.request_key,
                "status": receipt.status,
                "coalesced": receipt.coalesced,
            }
            Path(args.json).write_text(json.dumps(receipt_doc, indent=2, sort_keys=True))
            if not args.quiet:
                print(f"[repro] wrote {args.json}")
        return 0
    view = client.wait(
        receipt.job_id, timeout=args.timeout, request_key=receipt.request_key
    )
    progress = view.get("progress", {})
    elapsed = view.get("elapsed_seconds") or 0.0
    if not args.quiet:
        print(
            f"[repro] {args.figure}: {view['status']}, "
            f"{progress.get('executed_jobs', 0)} simulated, "
            f"{progress.get('cache_hits', 0)} from cache, {elapsed:.2f}s"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(view, indent=2, sort_keys=True))
        if not args.quiet:
            print(f"[repro] wrote {args.json}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _add_campaign_arguments(
    parser: argparse.ArgumentParser, default_jobs: int = 1, with_cache: bool = True
) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=default_jobs,
        help=f"worker processes for the sweep (default: {default_jobs})",
    )
    if with_cache:
        parser.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        parser.add_argument(
            "--no-cache", action="store_true", help="disable the on-disk result cache"
        )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full SPEC-like suites at the paper's trace length "
        "(default: the quick two-workload campaign)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the quick two-workload campaign (the default; spelled out "
        "for scripts, mutually exclusive with --full)",
    )
    parser.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="trace length per workload (default: 8000 quick / 30000 full)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help=f"campaign seed (default: {DEFAULT_SEED})"
    )
    parser.add_argument(
        "--engine",
        choices=engine_names(),
        default=None,
        help=f"simulation engine driving every machine (default: {DEFAULT_ENGINE}; "
        "'reference' runs the original processor-model loop)",
    )
    parser.add_argument(
        "--policy",
        choices=TIMING_POLICY_NAMES,
        default=None,
        help="cache replacement policy for both levels of every machine "
        "(default: lru, the paper's baseline; 'opt' exists only in the "
        "offline policy-sweep profiler)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figures and tables, in parallel, with caching.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, spec in FIGURES.items():
        sub = subparsers.add_parser(name, help=spec.description)
        _add_campaign_arguments(sub)
        sub.add_argument("--json", default=None, help="write a JSON artifact to this path")
        sub.add_argument("--quiet", action="store_true", help="suppress the rendered tables")
        sub.set_defaults(handler=lambda args, figure=name: run_figures([figure], args))

    sub = subparsers.add_parser("all", help="run every figure and table")
    _add_campaign_arguments(sub)
    sub.add_argument("--json", default=None, help="write a JSON artifact to this path")
    sub.add_argument("--quiet", action="store_true", help="suppress the rendered tables")
    sub.set_defaults(handler=lambda args: run_figures(list(FIGURES), args))

    sub = subparsers.add_parser("list", help="list figures, machines and suites")
    sub.set_defaults(handler=run_list_command)

    sub = subparsers.add_parser("cache", help="inspect, clear or prune the result cache")
    sub.add_argument("action", choices=("list", "info", "clear"))
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="with clear: only remove entries older than this many days",
    )
    sub.add_argument(
        "--max-size",
        type=float,
        default=None,
        metavar="MB",
        help="with clear: evict oldest entries until the cache fits in MB megabytes",
    )
    sub.add_argument(
        "--stale",
        action="store_true",
        help="with clear: only remove entries recorded under an older trace format",
    )
    sub.set_defaults(handler=run_cache_command)

    sub = subparsers.add_parser(
        "trace", help="record, inspect and replay binary instruction traces"
    )
    sub.add_argument("action", choices=("record", "info", "replay", "submit"))
    sub.add_argument(
        "target",
        help="workload name for `record` (e.g. mcf_like, list_walk); "
        "a recorded trace file for the other actions",
    )
    sub.add_argument(
        "--out", default=None, help="record: output path (default: <workload>.rtrace)"
    )
    sub.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="record: trace length (default: the quick-campaign length)",
    )
    sub.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help=f"record: seed (default: {DEFAULT_SEED})"
    )
    sub.add_argument(
        "--machine",
        default="FMC-Hash",
        help="replay/submit: named machine configuration (default: FMC-Hash)",
    )
    sub.add_argument(
        "--engine",
        choices=engine_names(),
        default=None,
        help="replay: simulation engine driving the machine "
        f"(default: {DEFAULT_ENGINE})",
    )
    sub.add_argument(
        "--verify",
        action="store_true",
        help="replay: also regenerate from the recorded parameters and assert "
        "the results are bit-identical",
    )
    sub.add_argument(
        "--server",
        default=DEFAULT_SERVICE_URL,
        help=f"submit: server base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub.add_argument(
        "--timeout", type=float, default=600.0, help="submit: seconds to wait (default: 600)"
    )
    sub.add_argument("--json", default=None, help="replay/submit: write the result JSON here")
    sub.add_argument("--quiet", action="store_true", help="suppress progress output")
    sub.set_defaults(handler=run_trace_command)

    sub = subparsers.add_parser("version", help="print the package version")
    sub.set_defaults(handler=run_version_command)

    sub = subparsers.add_parser(
        "serve", help="run the simulation service (async job server over HTTP)"
    )
    sub.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    sub.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=f"TCP port (default: {DEFAULT_SERVICE_PORT})",
    )
    sub.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="concurrent job executions (default: 1)",
    )
    sub.add_argument(
        "--sim-jobs",
        type=_positive_int,
        default=1,
        help="worker processes inside each job's sweep runner (default: 1)",
    )
    sub.add_argument(
        "--queue-limit",
        type=_positive_int,
        default=8,
        help="pending jobs admitted before answering 429 (default: 8)",
    )
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shared result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub.add_argument(
        "--no-cache", action="store_true", help="disable the shared result cache"
    )
    sub.add_argument(
        "--tenants",
        default=None,
        metavar="FILE.json",
        help="tenant roster (weights, quotas, auth tokens); without it the "
        "server runs open: any tenant name, default limits",
    )
    sub.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="service log verbosity (default: info)",
    )
    sub.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line (with trace IDs) instead of text",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=1,
        help="server processes to run over the shared cache (default: 1); "
        "shard i serves port+1+i, the public port is shared via SO_REUSEPORT "
        "where available",
    )
    sub.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job execution attempt (default: none)",
    )
    sub.add_argument(
        "--job-retries",
        type=int,
        default=2,
        help="supervised retries for retryable job failures, e.g. worker "
        "crashes (default: 2)",
    )
    sub.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight jobs before exiting "
        "(default: 10)",
    )
    sub.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable job journal (journalling needs --cache-dir "
        "and is on by default)",
    )
    sub.add_argument(
        "--faults",
        default=None,
        metavar="FILE.json",
        help="chaos testing: activate fault injection from this spec file "
        "(see docs/USAGE.md)",
    )
    sub.set_defaults(handler=run_serve_command)

    sub = subparsers.add_parser(
        "loadbench",
        help="ramp synthetic load against the service and write a JSON artifact",
    )
    sub.add_argument(
        "--server",
        default=None,
        help="existing server base URL; omitted = self-serve a fresh instance",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shards for the self-served instance (default: 2)",
    )
    sub.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="worker tasks per self-served shard (default: 2)",
    )
    sub.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="queue limit per self-served shard (default: 64)",
    )
    sub.add_argument(
        "--clients",
        default="2,4",
        help="comma-separated ramp stages, clients per stage (default: 2,4)",
    )
    sub.add_argument(
        "--mode",
        choices=("open", "closed"),
        default="open",
        help="arrival discipline (default: open; see docs/USAGE.md)",
    )
    sub.add_argument(
        "--rate",
        type=float,
        default=4.0,
        help="open-loop arrivals per second per client (default: 4)",
    )
    sub.add_argument(
        "--epoch-seconds",
        type=float,
        default=2.0,
        help="measurement epoch length (default: 2)",
    )
    sub.add_argument(
        "--epochs", type=int, default=4, help="epochs per stage (default: 4)"
    )
    sub.add_argument(
        "--warmup-epochs",
        type=int,
        default=1,
        help="leading epochs excluded from the aggregate (default: 1)",
    )
    sub.add_argument(
        "--instructions",
        type=int,
        default=1500,
        help="trace length per submitted simulation (default: 1500)",
    )
    sub.add_argument(
        "--tenant-mix",
        default=None,
        metavar="NAME=W,NAME=W",
        help="weighted-fairness mode: offer equal traffic per named tenant "
        "while the (self-served) roster carries these weights, then check "
        "the served shares track the weights",
    )
    sub.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request client timeout in seconds (default: 30)",
    )
    sub.add_argument(
        "--seed", type=int, default=42, help="workload stream seed (default: 42)"
    )
    sub.add_argument(
        "--out",
        default="LOADBENCH.json",
        help="artifact path (default: LOADBENCH.json)",
    )
    sub.add_argument(
        "--gate",
        action="store_true",
        help="fail the run when the thresholds below are missed",
    )
    sub.add_argument(
        "--min-throughput",
        type=float,
        default=0.0,
        help="gate: required peak measured throughput in req/s (0 = off)",
    )
    sub.add_argument(
        "--max-p99",
        type=float,
        default=0.0,
        help="gate: allowed submit p99 latency in ms, every stage (0 = off)",
    )
    sub.add_argument(
        "--share-tolerance",
        type=float,
        default=0.0,
        help="gate: allowed |observed - expected| tenant share (0 = off)",
    )
    sub.add_argument(
        "--faults",
        default=None,
        metavar="FILE.json",
        help="launch the self-served instance with this fault spec active",
    )
    sub.add_argument(
        "--expected-failures",
        type=int,
        default=0,
        help="client-process deaths tolerated per stage (default: 0; raise "
        "for fault-injected runs)",
    )
    sub.add_argument("--quiet", action="store_true", help="suppress progress output")
    sub.set_defaults(handler=run_loadbench_command)

    sub = subparsers.add_parser(
        "chaos",
        help="run the fault-injection harness against a self-served instance "
        "and assert the fault-tolerance contract",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shards for the server under test (default: 2)",
    )
    sub.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="worker tasks per shard (default: 2)",
    )
    sub.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="queue limit per shard (default: 32)",
    )
    sub.add_argument(
        "--submissions",
        type=int,
        default=24,
        help="jobs offered, all distinct content addresses (default: 24)",
    )
    sub.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent submitter threads (default: 4)",
    )
    sub.add_argument(
        "--instructions",
        type=int,
        default=1500,
        help="trace length per submitted simulation (default: 1500)",
    )
    sub.add_argument(
        "--seed", type=int, default=42, help="workload seed (default: 42)"
    )
    sub.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-submission budget in seconds (default: 60)",
    )
    sub.add_argument(
        "--faults",
        default=None,
        metavar="FILE.json",
        help="fault spec (default: the built-in kill/drop/corrupt/500 mix)",
    )
    sub.add_argument(
        "--max-error-rate",
        type=float,
        default=0.34,
        help="allowed errors/submissions ratio (default: 0.34)",
    )
    sub.add_argument(
        "--no-restart",
        action="store_true",
        help="skip the SIGTERM + restart round-trip (and its journal-replay "
        "check)",
    )
    sub.add_argument(
        "--out", default="CHAOS.json", help="artifact path (default: CHAOS.json)"
    )
    sub.add_argument("--quiet", action="store_true", help="suppress progress output")
    sub.set_defaults(handler=run_chaos_command)

    sub = subparsers.add_parser(
        "profile",
        help="run one figure with span profiling and write a Chrome trace JSON",
    )
    sub.add_argument("figure", choices=sorted(FIGURES), help="figure/table to profile")
    sub.add_argument(
        "--trace-out",
        required=True,
        metavar="FILE.json",
        help="write the Chrome trace-event document here (Perfetto-loadable)",
    )
    _add_campaign_arguments(sub, default_jobs=2, with_cache=False)
    sub.add_argument("--quiet", action="store_true", help="suppress the summary lines")
    sub.set_defaults(handler=run_profile_command)

    sub = subparsers.add_parser(
        "submit", help="submit a figure to a running server and wait for the result"
    )
    sub.add_argument("figure", choices=sorted(FIGURES), help="figure/table to reproduce")
    sub.add_argument(
        "--server",
        default=DEFAULT_SERVICE_URL,
        help=f"server base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub.add_argument(
        "--full", action="store_true", help="run the full suites at the paper's trace length"
    )
    sub.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="trace length per workload (default: campaign default)",
    )
    sub.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help=f"campaign seed (default: {DEFAULT_SEED})"
    )
    sub.add_argument(
        "--engine",
        choices=engine_names(),
        default=None,
        help=f"simulation engine for the campaign (default: {DEFAULT_ENGINE})",
    )
    sub.add_argument(
        "--policy",
        choices=TIMING_POLICY_NAMES,
        default=None,
        help="cache replacement policy for the campaign (default: lru)",
    )
    sub.add_argument(
        "--tenant",
        default=None,
        help="tenant identity the submission charges (default: the server's "
        "default tenant)",
    )
    sub.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="bearer token for tenants the server requires auth for",
    )
    sub.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default=None,
        help="scheduling lane (default: batch for --full campaigns, else "
        "interactive)",
    )
    sub.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait (default: 600)"
    )
    sub.add_argument(
        "--no-wait", action="store_true", help="submit and print the job id without waiting"
    )
    sub.add_argument("--json", default=None, help="write the completed status document here")
    sub.add_argument("--quiet", action="store_true", help="suppress progress output")
    sub.set_defaults(handler=run_submit_command)

    sub = subparsers.add_parser(
        "stats", help="print a running server's per-tenant usage and latency stats"
    )
    sub.add_argument(
        "--server",
        default=DEFAULT_SERVICE_URL,
        help=f"server base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub.add_argument(
        "--timeout", type=float, default=10.0, help="request timeout (default: 10)"
    )
    sub.add_argument("--json", default=None, help="also write the raw stats document here")
    sub.set_defaults(handler=run_stats_command)

    sub = subparsers.add_parser(
        "bench",
        help="time serial vs parallel execution (cache disabled) and write a JSON artifact",
    )
    _add_campaign_arguments(sub, default_jobs=4, with_cache=False)
    sub.add_argument(
        "--figures",
        default=None,
        help=f"comma-separated figures to time (default: {','.join(DEFAULT_BENCH_FIGURES)})",
    )
    sub.add_argument(
        "--output", default="BENCH_pr5.json", help="artifact path (default: BENCH_pr5.json)"
    )
    sub.add_argument(
        "--gate",
        default=None,
        metavar="BASELINE.json",
        help="compare against a recorded bench artifact and exit non-zero on "
        "regression (wall-time improvement below --gate-min-improvement or "
        "parallel speedup below --gate-min-speedup)",
    )
    sub.add_argument(
        "--gate-min-improvement",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="required baseline/current serial wall-time ratio (default: 2.0)",
    )
    sub.add_argument(
        "--gate-min-speedup",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="required parallel speedup, exclusive (default: 1.0)",
    )
    sub.set_defaults(handler=run_bench_command)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. `head`).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The ``python -m repro`` command line interface.

Reproduce any paper figure/table from the shell, with parallelism and an
on-disk result cache::

    python -m repro fig7 --jobs 4 --cache-dir .repro-cache
    python -m repro all --full --jobs 8 --json results.json
    python -m repro cache list
    python -m repro bench --jobs 4 --output BENCH_pr1.json

Every figure command prints the paper-layout text table plus a one-line
runner summary (simulations executed vs cache hits); ``--json`` additionally
writes a machine-readable artifact containing the full result series and the
campaign parameters.  A second invocation with the same parameters and cache
directory completes entirely from the cache, executing zero simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.serialize import to_jsonable
from repro.exp.cache import ResultCache
from repro.exp.runner import ExperimentRunner, clear_trace_memo
from repro.sim import experiments, tables
from repro.sim.configs import PAPER_CONFIGS
from repro.sim.experiments import ExperimentContext
from repro.sim.simulator import DEFAULT_INSTRUCTIONS_PER_WORKLOAD
from repro.workloads.suite import (
    quick_fp_suite,
    quick_int_suite,
    spec_fp_suite,
    spec_int_suite,
)

#: Trace length of the default (quick) campaign; matches benchmarks/conftest.py.
QUICK_INSTRUCTIONS = 8_000

#: Seed of the default campaign (the paper's publication year).
DEFAULT_SEED = 2008

#: Default cache directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible paper artifact: how to run it and how to render it."""

    name: str
    description: str
    run: Callable[[ExperimentContext], Any]
    render: Callable[[Any], str]


FIGURES: Dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec(
            "fig1",
            "Figure 1: execution locality of address calculations",
            experiments.fig1_execution_locality,
            tables.format_fig1,
        ),
        FigureSpec(
            "sec52",
            "Section 5.2: per-epoch LSQ sizing",
            experiments.sec52_epoch_sizing,
            tables.format_sec52,
        ),
        FigureSpec(
            "fig7",
            "Figure 7: speed-up of the large-window LSQ schemes",
            experiments.fig7_speedups,
            lambda result: tables.format_fig7(result[0], result[1]),
        ),
        FigureSpec(
            "fig8a",
            "Figure 8a: ERT filter accuracy vs storage",
            experiments.fig8a_filter_accuracy,
            tables.format_fig8a,
        ),
        FigureSpec(
            "fig8bc",
            "Figure 8b/c: sensitivity to the L1 geometry",
            experiments.fig8bc_cache_sensitivity,
            tables.format_fig8bc,
        ),
        FigureSpec(
            "fig9",
            "Figure 9: restricted disambiguation models",
            experiments.fig9_restricted_models,
            tables.format_fig9,
        ),
        FigureSpec(
            "fig10",
            "Figure 10: SVW re-execution",
            experiments.fig10_svw_reexecution,
            tables.format_fig10,
        ),
        FigureSpec(
            "fig11",
            "Figure 11: high-locality mode vs L2 size",
            experiments.fig11_high_locality_mode,
            tables.format_fig11,
        ),
        FigureSpec(
            "table2",
            "Table 2: structure access counts",
            experiments.table2_access_counts,
            tables.format_table2,
        ),
        FigureSpec(
            "sec6",
            "Section 6: energy comparison",
            experiments.sec6_energy_comparison,
            tables.format_sec6,
        ),
    )
}

#: Figures used by ``repro bench`` unless overridden (fast but representative).
DEFAULT_BENCH_FIGURES = ("sec52", "fig7")


def build_context(args: argparse.Namespace, runner: Optional[ExperimentRunner]) -> ExperimentContext:
    """Build the experiment campaign the CLI flags describe."""
    if args.full:
        fp_suite, int_suite = spec_fp_suite(), spec_int_suite()
        default_instructions = DEFAULT_INSTRUCTIONS_PER_WORKLOAD
    else:
        fp_suite, int_suite = quick_fp_suite(), quick_int_suite()
        default_instructions = QUICK_INSTRUCTIONS
    instructions = args.instructions if args.instructions is not None else default_instructions
    return ExperimentContext(
        fp_suite=fp_suite,
        int_suite=int_suite,
        instructions_per_workload=instructions,
        seed=args.seed,
        runner=runner,
    )


def build_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the runner (parallelism + cache) the CLI flags describe."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ExperimentRunner(jobs=args.jobs, cache=cache)


def _campaign_parameters(args: argparse.Namespace, context: ExperimentContext) -> Dict[str, Any]:
    return {
        "suites": [context.fp_suite.name, context.int_suite.name],
        "instructions_per_workload": context.instructions_per_workload,
        "seed": context.seed,
        "jobs": args.jobs,
        "cache_dir": None if args.no_cache else str(args.cache_dir),
        "full": bool(args.full),
    }


def run_figures(figure_names: List[str], args: argparse.Namespace) -> int:
    """Run the named figures through one shared runner/context."""
    runner = build_runner(args)
    context = build_context(args, runner)
    artifact: Dict[str, Any] = {
        "command": " ".join(figure_names),
        "parameters": _campaign_parameters(args, context),
        "figures": {},
    }
    for name in figure_names:
        spec = FIGURES[name]
        started = time.perf_counter()
        executed_before, hits_before = runner.executed_jobs, runner.cache_hits
        result = spec.run(context)
        elapsed = time.perf_counter() - started
        executed = runner.executed_jobs - executed_before
        hits = runner.cache_hits - hits_before
        if not args.quiet:
            print(spec.render(result))
            print(
                f"[repro] {name}: {executed} simulated, {hits} from cache, {elapsed:.2f}s"
            )
            print()
        artifact["figures"][name] = {
            "description": spec.description,
            "elapsed_seconds": elapsed,
            "executed_jobs": executed,
            "cache_hits": hits,
            "results": to_jsonable(result),
        }
    artifact["executed_jobs"] = runner.executed_jobs
    artifact["cache_hits"] = runner.cache_hits
    # Convenience top-level alias when a single figure was requested.
    artifact["results"] = (
        artifact["figures"][figure_names[0]]["results"] if len(figure_names) == 1 else None
    )
    if args.json:
        Path(args.json).write_text(json.dumps(artifact, indent=2, sort_keys=True))
        if not args.quiet:
            print(f"[repro] wrote {args.json}")
    return 0


def run_cache_command(args: argparse.Namespace) -> int:
    """Implement ``repro cache list|info|clear``."""
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"[repro] removed {removed} cache entries from {cache.root}")
        return 0
    entries = list(cache.entries())
    if args.action == "info":
        total_bytes = sum(entry.size_bytes for entry in entries)
        print(f"cache directory : {cache.root}")
        print(f"entries         : {len(entries)}")
        print(f"total size      : {total_bytes / 1024:.1f} KiB")
        return 0
    if not entries:
        print(f"[repro] cache {cache.root} is empty")
        return 0
    print(f"{'key':<16} {'machine':<24} {'workload':<16} {'instrs':>8} {'seed':>6}")
    for entry in entries:
        seed = "-" if entry.seed is None else str(entry.seed)
        print(
            f"{entry.key[:16]:<16} {entry.machine:<24} {entry.workload:<16} "
            f"{entry.num_instructions:>8} {seed:>6}"
        )
    return 0


def run_list_command(_args: argparse.Namespace) -> int:
    """Implement ``repro list``: every figure and named machine configuration."""
    print("figures / tables:")
    for name, spec in FIGURES.items():
        print(f"  {name:<8} {spec.description}")
    print()
    print("machine configurations (Table 2 names):")
    for name in PAPER_CONFIGS:
        print(f"  {name}")
    print()
    print("suites: spec_fp_like, spec_int_like, spec_fp_quick, spec_int_quick")
    return 0


def run_bench_command(args: argparse.Namespace) -> int:
    """Implement ``repro bench``: time serial vs parallel execution per figure.

    Caching is disabled for both timed runs so the artifact measures raw
    simulation throughput, not cache I/O.
    """
    figure_names = args.figures.split(",") if args.figures else list(DEFAULT_BENCH_FIGURES)
    unknown = [name for name in figure_names if name not in FIGURES]
    if unknown:
        print(f"[repro] unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    artifact: Dict[str, Any] = {
        "artifact": "repro-bench",
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "parallel_jobs": args.jobs,
        "instructions_per_workload": None,
        "seed": args.seed,
        "full": bool(args.full),
        "figures": {},
    }
    print(f"{'figure':<8} {'sims':>5} {'serial':>9} {f'--jobs {args.jobs}':>10} {'speedup':>8}")
    for name in figure_names:
        spec = FIGURES[name]
        timings: Dict[str, float] = {}
        simulations = 0
        for mode, jobs in (("serial", 1), ("parallel", args.jobs)):
            runner = ExperimentRunner(jobs=jobs, cache=None)
            context = build_context(args, runner)
            artifact["instructions_per_workload"] = context.instructions_per_workload
            # A fork-based pool inherits this process's trace memo; clear it so
            # each timed mode pays the full trace-generation cost.
            clear_trace_memo()
            started = time.perf_counter()
            spec.run(context)
            timings[mode] = time.perf_counter() - started
            simulations = runner.executed_jobs
        speedup = timings["serial"] / timings["parallel"] if timings["parallel"] else 0.0
        artifact["figures"][name] = {
            "simulations": simulations,
            "serial_seconds": timings["serial"],
            "parallel_seconds": timings["parallel"],
            "parallel_jobs": args.jobs,
            "speedup": speedup,
        }
        print(
            f"{name:<8} {simulations:>5} {timings['serial']:>8.2f}s "
            f"{timings['parallel']:>9.2f}s {speedup:>7.2f}x"
        )
    Path(args.output).write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"[repro] wrote {args.output}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _add_campaign_arguments(
    parser: argparse.ArgumentParser, default_jobs: int = 1, with_cache: bool = True
) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=default_jobs,
        help=f"worker processes for the sweep (default: {default_jobs})",
    )
    if with_cache:
        parser.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        parser.add_argument(
            "--no-cache", action="store_true", help="disable the on-disk result cache"
        )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full SPEC-like suites at the paper's trace length "
        "(default: the quick two-workload campaign)",
    )
    parser.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="trace length per workload (default: 8000 quick / 30000 full)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help=f"campaign seed (default: {DEFAULT_SEED})"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figures and tables, in parallel, with caching.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, spec in FIGURES.items():
        sub = subparsers.add_parser(name, help=spec.description)
        _add_campaign_arguments(sub)
        sub.add_argument("--json", default=None, help="write a JSON artifact to this path")
        sub.add_argument("--quiet", action="store_true", help="suppress the rendered tables")
        sub.set_defaults(handler=lambda args, figure=name: run_figures([figure], args))

    sub = subparsers.add_parser("all", help="run every figure and table")
    _add_campaign_arguments(sub)
    sub.add_argument("--json", default=None, help="write a JSON artifact to this path")
    sub.add_argument("--quiet", action="store_true", help="suppress the rendered tables")
    sub.set_defaults(handler=lambda args: run_figures(list(FIGURES), args))

    sub = subparsers.add_parser("list", help="list figures, machines and suites")
    sub.set_defaults(handler=run_list_command)

    sub = subparsers.add_parser("cache", help="inspect or clear the result cache")
    sub.add_argument("action", choices=("list", "info", "clear"))
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sub.set_defaults(handler=run_cache_command)

    sub = subparsers.add_parser(
        "bench",
        help="time serial vs parallel execution (cache disabled) and write a JSON artifact",
    )
    _add_campaign_arguments(sub, default_jobs=4, with_cache=False)
    sub.add_argument(
        "--figures",
        default=None,
        help=f"comma-separated figures to time (default: {','.join(DEFAULT_BENCH_FIGURES)})",
    )
    sub.add_argument(
        "--output", default="BENCH_pr1.json", help="artifact path (default: BENCH_pr1.json)"
    )
    sub.set_defaults(handler=run_bench_command)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. `head`).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

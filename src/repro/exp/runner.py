"""The parallel sweep runner.

The unit of work of every paper figure is one *simulation job*: run one
machine configuration over one workload's trace at a given length and seed.
:class:`SimJob` captures exactly those inputs; because the machine and
workload descriptions are frozen dataclasses of primitives, a job is

* **deterministic** -- the workload generator derives its stream from
  ``(seed, workload.name)`` alone (see
  :func:`repro.workloads.suite.generate_member_trace`) and the timing models
  contain no randomness, so a job's result is a pure function of the job;
* **content-addressed** -- :func:`job_key` hashes the canonical JSON form of
  the job, giving a stable key for the on-disk result cache; and
* **picklable** -- jobs cross process boundaries unchanged, so a
  ``multiprocessing`` pool can execute them in any order on any worker.

:class:`ExperimentRunner` builds on those properties: it deduplicates a
batch of jobs, satisfies what it can from a :class:`~repro.exp.cache.ResultCache`,
fans the misses out over a process pool (or runs them inline for ``jobs=1``)
and reassembles per-suite aggregates.  Serial and parallel execution produce
bit-identical results.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.common import phases
from repro.common.errors import ConfigurationError
from repro.obs import spans as obs_spans
from repro.common.serialize import stable_hash, to_jsonable
from repro.exp.cache import ResultCache
from repro.isa.trace import Trace
from repro.sim.configs import MachineConfig
from repro.sim.simulator import Simulator, SuiteResult
from repro.trace.format import TRACE_FORMAT_VERSION, trace_from_buffer, trace_from_bytes, trace_to_bytes
from repro.uarch.result import CoreResult
from repro.workloads.base import WorkloadParameters
from repro.workloads.suite import WorkloadSuite, generate_member_trace

#: Environment knob for the parallel trace handoff: ``0`` disables the
#: ``multiprocessing.shared_memory`` path and ships the columnar container
#: bytes through the task pickle instead (the automatic fallback when shared
#: memory is unavailable on the host).
SHM_ENV = "REPRO_SHM"

#: Bump when the meaning of a job changes (e.g. the runner's aggregation
#: semantics); old cache entries then stop matching automatically.  Changes
#: to the *trace* semantics (generator derivation, record format) are
#: covered separately by :data:`repro.trace.format.TRACE_FORMAT_VERSION`,
#: which every job key also incorporates.  Version 2: ``lines_locked``
#: became a first-lock-transition count (a resident line gaining a second
#: owner no longer double-counts), so cached counters from version 1 no
#: longer mean the same thing.
JOB_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class SimJob:
    """One simulation: a machine, a workload, a trace length and a seed."""

    machine: MachineConfig
    workload: WorkloadParameters
    num_instructions: int
    seed: Optional[int] = None

    def key(self) -> str:
        """The job's stable content address (cache key)."""
        return job_key(self)


@dataclass(frozen=True)
class SweepCase:
    """One named point of a declarative sweep: a machine over a suite.

    The experiment definitions in :mod:`repro.sim.experiments` declare each
    figure as a list of cases; the runner expands every case into one
    :class:`SimJob` per suite member and executes the whole batch at once,
    so parallelism spans the entire figure rather than a single suite.
    """

    case_id: str
    machine: MachineConfig
    suite_label: str


@lru_cache(maxsize=4096)
def job_key(job: SimJob) -> str:
    """Return the SHA-256 content address of a job.

    The key covers the complete machine configuration, the full workload
    description, the trace length, the seed and the trace-format version
    (:data:`repro.trace.format.TRACE_FORMAT_VERSION`), so any change to any
    of them -- including a bump of the trace semantics -- yields a different
    key.  The machine's display ``name`` is excluded:
    physically identical machines that different figures label differently
    (e.g. ``FMC-Hash`` vs Figure 7's ``ELSQ Hash ERT + SQM``) share one
    simulation and one cache entry; the runner restores the requested label
    when it assembles suite aggregates.  Keys are stable across processes
    and ``PYTHONHASHSEED`` values (see
    :func:`repro.common.serialize.stable_hash`).
    """
    machine = to_jsonable(job.machine)
    machine.pop("name", None)
    return stable_hash(
        {
            "schema": JOB_SCHEMA_VERSION,
            "trace_format": TRACE_FORMAT_VERSION,
            "machine": machine,
            "workload": to_jsonable(job.workload),
            "num_instructions": job.num_instructions,
            "seed": job.seed,
        }
    )


#: Per-process memo of generated traces, keyed by (workload hash, length,
#: seed).  Pool workers persist across jobs, so a worker simulating several
#: machines over the same workload generates its trace only once.
_TRACE_MEMO: Dict[Tuple[str, int, Optional[int]], Trace] = {}
_TRACE_MEMO_LIMIT = 128


def clear_trace_memo() -> None:
    """Drop this process's generated-trace memo.

    Timing harnesses call this between measured runs: a fork-based worker
    pool inherits the parent's memo, so a preceding in-process run would
    otherwise let the pool skip trace generation and skew the comparison.
    """
    _TRACE_MEMO.clear()


def ensure_unique_case_ids(cases: Sequence[SweepCase]) -> None:
    """Raise if two sweep cases share a ``case_id`` (results would collide)."""
    seen = set()
    for case in cases:
        if case.case_id in seen:
            raise ConfigurationError(f"duplicate sweep case id {case.case_id!r}")
        seen.add(case.case_id)


def _trace_memo_key(
    workload: WorkloadParameters, num_instructions: int, seed: Optional[int]
) -> Tuple[str, int, Optional[int]]:
    return (stable_hash(workload), num_instructions, seed)


def _trace_for(workload: WorkloadParameters, num_instructions: int, seed: Optional[int]) -> Trace:
    memo_key = _trace_memo_key(workload, num_instructions, seed)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        if len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.clear()
        started = perf_counter()
        trace = generate_member_trace(workload, num_instructions, seed=seed)
        phases.add("generation", perf_counter() - started)
        _TRACE_MEMO[memo_key] = trace
    return trace


def run_job(job: SimJob) -> CoreResult:
    """Execute one job in this process: generate the trace and simulate it."""
    trace = _trace_for(job.workload, job.num_instructions, job.seed)
    return Simulator(job.machine).run_trace(trace)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Capping the worker count here is what fixes the historical parallel
    *slowdown*: forking more CPU-bound workers than there are cores buys no
    concurrency but still pays fork, pickling and scheduling costs.  Tests
    monkeypatch this to exercise the pool path deterministically.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _dispatch_order(job: SimJob) -> Tuple[str, int, int]:
    """Sort key grouping a batch by workload before it is chunked.

    Pool chunks are contiguous slices of the sorted batch, so grouping by
    workload sends all jobs sharing a trace to the same worker -- each worker
    then generates (and memoises) every trace it needs exactly once instead
    of every worker regenerating most of the batch's traces.
    """
    return (job.workload.name, job.num_instructions, -1 if job.seed is None else job.seed)


class _Task(NamedTuple):
    """One pool task: the job plus its trace handoff payload.

    ``payload`` is ``("shm", segment name)`` for the shared-memory path,
    ``("bytes", container bytes)`` for the pickle fallback, or ``None`` when
    the worker should generate the trace itself (handoff disabled).
    """

    job: SimJob
    payload: Optional[Tuple[str, Any]]

    # Convenience passthrough so dispatch-order introspection reads naturally.
    @property
    def workload(self) -> WorkloadParameters:
        return self.job.workload


def _shm_enabled() -> bool:
    if os.environ.get(SHM_ENV, "1") == "0":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platforms without shm support
        return False
    return True


def _publish_shm(blob: bytes):
    """Copy ``blob`` into a fresh shared-memory segment (None on failure)."""
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=len(blob))
        segment.buf[: len(blob)] = blob
        return segment
    except (OSError, ValueError):  # pragma: no cover - exhausted /dev/shm etc.
        return None


#: Worker-side ledger of attached shared-memory segments: (weakref to the
#: columns viewing the segment, the segment).  A segment is only safe to
#: close once every memoryview into it is gone, which cannot be guaranteed
#: during cyclic GC (``SharedMemory.__del__`` racing the views raises
#: ``BufferError``); holding the segment here and sweeping on the next
#: attach closes it deterministically once its columns are dead.
_ATTACHED_SEGMENTS: List[Tuple[Any, Any]] = []


def _sweep_attached_segments() -> None:
    alive = []
    for columns_ref, segment in _ATTACHED_SEGMENTS:
        if columns_ref() is None:
            try:
                segment.close()
                continue
            except BufferError:  # pragma: no cover - stray exported view
                pass
        alive.append((columns_ref, segment))
    _ATTACHED_SEGMENTS[:] = alive


def _attach_shipped_trace(payload: Tuple[str, Any]) -> Trace:
    """Rebuild the shipped trace in a worker process.

    Shared-memory payloads are wrapped zero-copy (the columns index straight
    into the segment, which stays mapped until the columns are collected);
    byte payloads are parsed with the bulk columnar loader.
    """
    kind, value = payload
    if kind == "shm":
        import weakref
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=value)
        try:
            # The parent owns the segment's lifetime (it unlinks after the
            # batch); without this, a spawn-started worker's resource
            # tracker would try to clean the segment up again at exit.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
        try:
            # validate=False: the payload was serialised by the parent from
            # an already-canonical in-process trace; the CRC still guards
            # integrity, so the per-row canonical check would only re-pay
            # cost the zero-copy handoff exists to remove.
            trace = trace_from_buffer(segment.buf, owner=segment, validate=False).trace
        except Exception:
            # A segment that does not parse would otherwise stay mapped
            # forever (nothing ever learns about it); unmap before letting
            # the caller fall back to regeneration.  If the in-flight
            # traceback still pins views into the buffer, park the segment
            # on the sweep ledger with an already-dead ref instead.
            try:
                segment.close()
            except BufferError:
                _ATTACHED_SEGMENTS.append((lambda: None, segment))
            raise
        _sweep_attached_segments()
        _ATTACHED_SEGMENTS.append((weakref.ref(trace.columns()), segment))
        return trace
    return trace_from_bytes(value, validate=False).trace


def _pool_worker(task: _Task) -> Tuple[str, Dict[str, Any], Dict[str, Any]]:
    """Pool entry point: run a job and ship the result back as plain JSON types.

    A shipped trace payload is installed into this worker's trace memo
    first, so :func:`run_job` finds it there and regenerates nothing; if
    attaching fails for any reason the worker falls back to generating the
    trace itself (the two are bit-identical by the determinism contract).

    Alongside the result, each task returns its observability delta -- the
    phase seconds and spans this task accumulated in *this* process -- so
    the parent can merge worker-side instrumentation into its own
    (:func:`repro.obs.spans.merge_worker`) instead of losing it.  The
    bracketing (totals-before / spans drained after) keeps the delta exact
    even when the worker is long-lived, and leaves global state untouched
    when the "pool" is an in-process test double.
    """
    job = task.job
    if task.payload is not None:
        memo_key = _trace_memo_key(job.workload, job.num_instructions, job.seed)
        if memo_key not in _TRACE_MEMO:
            try:
                trace = _attach_shipped_trace(task.payload)
            except Exception:
                trace = None
            if trace is not None:
                if len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
                    _TRACE_MEMO.clear()
                _TRACE_MEMO[memo_key] = trace
    totals_before = obs_spans.phase_totals()
    mark = obs_spans.span_count()
    was_recording = obs_spans.recording()
    obs_spans.set_recording(True)
    try:
        payload = run_job(job).to_dict()
    finally:
        obs_spans.set_recording(was_recording)
    phase_delta = {
        name: seconds - totals_before.get(name, 0.0)
        for name, seconds in obs_spans.phase_totals().items()
        if seconds - totals_before.get(name, 0.0) > 0.0
    }
    observations = {
        "pid": os.getpid(),
        "phases": phase_delta,
        "spans": obs_spans.drain_after(mark),
    }
    return job.key(), payload, observations


def _relabel(result: CoreResult, machine_name: str) -> CoreResult:
    """Restore a machine's display name on a shared (name-agnostic) result.

    Jobs are deduplicated and cached without the machine name, so the result
    may carry the label of whichever identically-configured machine ran
    first; the suite aggregates must report the requested name.
    """
    if result.config_name == machine_name:
        return result
    return dataclasses.replace(result, config_name=machine_name)


def _job_metadata(job: SimJob) -> Dict[str, Any]:
    return {
        "machine": job.machine.name,
        "workload": job.workload.name,
        "num_instructions": job.num_instructions,
        "seed": job.seed,
    }


class ExperimentRunner:
    """Executes batches of simulation jobs with caching and parallelism.

    The pool is created lazily, capped at the host's available CPUs
    (:meth:`effective_workers`), fed workload-grouped contiguous chunks and
    reused across batches until :meth:`close` -- the combination that makes
    parallel sweeps actually faster than serial ones instead of paying fork
    and pickling costs per batch.

    Parameters
    ----------
    jobs:
        Maximum number of worker processes.  ``1`` (the default) runs every
        job inline in the calling process -- no pool, no pickling.  Values
        above the available CPU count are clamped; when the clamp leaves a
        single worker the batch runs inline as well.
    cache:
        Optional on-disk result cache consulted before executing and updated
        after; ``None`` disables caching.
    start_method:
        ``multiprocessing`` start method for the pool (``None`` keeps the
        platform default).  Multithreaded hosts -- the service's worker
        threads -- must pass ``"spawn"``: forking a pool from a thread can
        inherit locks held by sibling threads and deadlock the children.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.start_method = start_method
        #: Number of simulations actually executed by this runner.
        self.executed_jobs = 0
        #: Number of simulations satisfied from the cache.
        self.cache_hits = 0
        #: Lazily created worker pool, reused across batches until close().
        self._pool = None
        self._pool_workers = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def effective_workers(self) -> int:
        """Worker processes a parallel batch would actually use.

        ``jobs`` is capped at the CPUs this process may run on: CPU-bound
        simulations gain nothing from oversubscription, and the fork/pickle
        overhead of surplus workers is precisely what made parallel sweeps
        *slower* than serial ones on small hosts.
        """
        return min(self.jobs, available_cpus())

    def _ensure_pool(self, workers: int):
        if self._pool is not None and self._pool_workers != workers:
            self.close()
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=workers)
            self._pool_workers = workers
        return self._pool

    def close(self) -> None:
        """Shut the reusable worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_batch(self, sim_jobs: Sequence[SimJob]) -> Dict[str, CoreResult]:
        """Execute a batch of jobs and return ``{job key: result}``.

        Duplicate jobs (same content address) are executed once.  Cache hits
        never reach the pool; a warm cache therefore completes a batch with
        zero simulations.
        """
        unique: Dict[str, SimJob] = {}
        for job in sim_jobs:
            unique.setdefault(job.key(), job)
        results: Dict[str, CoreResult] = {}
        misses: Dict[str, SimJob] = {}
        for key, job in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self.cache_hits += 1
                results[key] = cached
            else:
                misses[key] = job
        if misses:
            executed = self._execute(misses)
            self.executed_jobs += len(executed)
            for key, result in executed.items():
                if self.cache is not None:
                    self.cache.put(key, result, metadata=_job_metadata(misses[key]))
                results[key] = result
        return results

    def _execute(self, misses: Dict[str, SimJob]) -> Dict[str, CoreResult]:
        workers = self.effective_workers()
        if workers > 1 and len(misses) > 1:
            # Sort the batch by workload and hand each worker one contiguous
            # chunk: same-trace jobs land on the same worker (one handoff
            # per trace) and the map costs a single task message per worker
            # instead of one per job.  The pool is always sized at the full
            # worker cap -- a small batch merely leaves workers idle -- so a
            # mixed-size batch sequence keeps reusing one pool instead of
            # re-forking it whenever the batch size changes.
            dispatch_started = perf_counter()
            generation_before = phases.snapshot().get("generation", 0.0)
            ordered = sorted(misses.values(), key=_dispatch_order)
            use_shm = _shm_enabled()
            segments = []
            payloads: Dict[Tuple[str, int, Optional[int]], Tuple[str, Any]] = {}
            tasks: List[_Task] = []
            try:
                # Each unique trace of the batch is generated once, here in
                # the parent (memoised), serialised to its columnar container
                # form, and handed to the workers by shared-memory name --
                # or, when shared memory is unavailable or disabled, as the
                # container bytes riding the task pickle (same-trace jobs
                # share one chunk, and pickle dedupes the repeated object).
                for job in ordered:
                    memo_key = _trace_memo_key(job.workload, job.num_instructions, job.seed)
                    payload = payloads.get(memo_key)
                    if payload is None:
                        blob = trace_to_bytes(
                            _trace_for(job.workload, job.num_instructions, job.seed)
                        )
                        segment = _publish_shm(blob) if use_shm else None
                        if segment is not None:
                            segments.append(segment)
                            payload = ("shm", segment.name)
                        else:
                            payload = ("bytes", blob)
                        payloads[memo_key] = payload
                    tasks.append(_Task(job, payload))
                chunksize = -(-len(tasks) // min(workers, len(tasks)))
                pool = self._ensure_pool(workers)
                try:
                    pairs = pool.map(_pool_worker, tasks, chunksize=chunksize)
                except Exception:
                    # A failed map leaves the pool in an unknown state (a
                    # killed worker can wedge its result queue); drop it so
                    # the next batch -- or a supervised retry -- re-spawns a
                    # fresh pool instead of inheriting the wreckage.
                    self.close()
                    raise
            finally:
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except OSError:  # pragma: no cover - already gone
                        pass
            # Parent-side orchestration cost first (before worker phases are
            # merged, so their generation time cannot deflate `dispatch`),
            # then fold each worker task's phase/span observations in --
            # parallel snapshots carry real worker breakdowns, not a blind
            # spot.
            generation_delta = phases.snapshot().get("generation", 0.0) - generation_before
            phases.add(
                "dispatch", perf_counter() - dispatch_started - generation_delta
            )
            results: Dict[str, CoreResult] = {}
            for key, payload, observations in pairs:
                obs_spans.merge_worker(observations)
                results[key] = CoreResult.from_dict(payload)
            return results
        return {key: run_job(job) for key, job in misses.items()}

    def run_suite(
        self,
        machine: MachineConfig,
        suite: WorkloadSuite,
        num_instructions: int,
        seed: Optional[int] = None,
    ) -> SuiteResult:
        """Run one machine over one suite (the :class:`Simulator` equivalent)."""
        sim_jobs = [SimJob(machine, member, num_instructions, seed) for member in suite]
        batch = self.run_batch(sim_jobs)
        results = {
            job.workload.name: _relabel(batch[job.key()], machine.name) for job in sim_jobs
        }
        return SuiteResult(machine_name=machine.name, suite_name=suite.name, results=results)

    def run_cases(
        self,
        cases: Sequence[SweepCase],
        suites: Mapping[str, WorkloadSuite],
        num_instructions: int,
        seed: Optional[int] = None,
    ) -> Dict[str, SuiteResult]:
        """Run a whole declarative sweep as one batch.

        Every case is expanded into one job per member of its suite and the
        combined batch is executed at once, so the process pool stays busy
        across the entire figure.  Returns ``{case_id: SuiteResult}``.
        """
        ensure_unique_case_ids(cases)
        expanded: List[Tuple[SweepCase, WorkloadSuite, List[SimJob]]] = []
        all_jobs: List[SimJob] = []
        for case in cases:
            suite = suites[case.suite_label]
            case_jobs = [SimJob(case.machine, member, num_instructions, seed) for member in suite]
            all_jobs.extend(case_jobs)
            expanded.append((case, suite, case_jobs))
        batch = self.run_batch(all_jobs)
        output: Dict[str, SuiteResult] = {}
        for case, suite, case_jobs in expanded:
            results = {
                job.workload.name: _relabel(batch[job.key()], case.machine.name)
                for job in case_jobs
            }
            output[case.case_id] = SuiteResult(
                machine_name=case.machine.name, suite_name=suite.name, results=results
            )
        return output

"""Experiment orchestration: parallel sweeps, result caching and the CLI.

This package turns the library into a reproducible experiment platform:

* :mod:`repro.exp.runner` -- :class:`~repro.exp.runner.ExperimentRunner` fans
  sweeps (machine configurations x workload suites) out over a
  ``multiprocessing`` pool, with every simulation expressed as a
  deterministic, content-addressed :class:`~repro.exp.runner.SimJob`.
* :mod:`repro.exp.cache` -- :class:`~repro.exp.cache.ResultCache`, an
  on-disk JSON store keyed by the stable hash of (machine configuration,
  workload parameters, trace length, seed), so re-running a figure only
  simulates what changed.
* :mod:`repro.exp.cli` -- the ``python -m repro`` command line interface
  that reproduces any paper figure/table, lists cached results and emits
  machine-readable artifacts.
"""

from repro.exp.cache import CacheEntry, ResultCache
from repro.exp.runner import ExperimentRunner, SimJob, SweepCase, job_key, run_job

__all__ = [
    "CacheEntry",
    "ExperimentRunner",
    "ResultCache",
    "SimJob",
    "SweepCase",
    "job_key",
    "run_job",
]

"""Experiment orchestration: parallel sweeps, result caching and the CLI.

This package turns the library into a reproducible experiment platform:

* :mod:`repro.exp.runner` -- :class:`~repro.exp.runner.ExperimentRunner` fans
  sweeps (machine configurations x workload suites) out over a
  ``multiprocessing`` pool, with every simulation expressed as a
  deterministic, content-addressed :class:`~repro.exp.runner.SimJob`.
* :mod:`repro.exp.cache` -- :class:`~repro.exp.cache.ResultCache`, an
  on-disk JSON store keyed by the stable hash of (machine configuration,
  workload parameters, trace length, seed), so re-running a figure only
  simulates what changed.
* :mod:`repro.exp.cli` -- the ``python -m repro`` command line interface
  that reproduces any paper figure/table, lists cached results and emits
  machine-readable artifacts.
* :mod:`repro.exp.request` -- :class:`~repro.exp.request.JobRequest`, the
  content-addressed wire form of a submission (named figure campaign or
  explicit job batch) that the service coalesces on.
"""

from repro.exp.cache import CacheEntry, PruneReport, ResultCache
from repro.exp.request import JobRequest
from repro.exp.runner import ExperimentRunner, SimJob, SweepCase, job_key, run_job

__all__ = [
    "CacheEntry",
    "ExperimentRunner",
    "JobRequest",
    "PruneReport",
    "ResultCache",
    "SimJob",
    "SweepCase",
    "job_key",
    "run_job",
]

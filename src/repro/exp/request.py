"""Wire-level job requests: what a client submits to the simulation service.

A :class:`JobRequest` names either

* a **figure** -- one of the registered paper artifacts
  (:data:`repro.sim.experiments.EXPERIMENTS`) plus the campaign knobs the CLI
  exposes (``instructions``, ``seed``, ``full``, ``engine``), or
* an explicit batch of **cases** -- raw :class:`~repro.exp.runner.SimJob`
  records, each fully describing one simulation.

Like a job, a request is **content-addressed**: :meth:`JobRequest.key` hashes
the normalised request (campaign defaults applied), so two submissions that
mean the same work share one key.  The service coalesces in-flight requests
on that key, and the key is stable across processes and machines
(:func:`repro.common.serialize.stable_hash`).

This module deliberately imports only :mod:`repro.exp.runner` and the
serialisation helpers -- resolution of figure names against the experiment
registry happens lazily (in :meth:`normalized` and in the service), keeping
the ``repro.exp`` package importable from :mod:`repro.sim.experiments`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.serialize import from_jsonable, stable_hash, to_jsonable
from repro.exp.runner import SimJob, job_key

#: Version of the request payload schema (the ``schema_version`` a v2 wire
#: envelope names).  Version 2 added the admission metadata fields
#: (``tenant``, ``priority``); version-1 payloads simply omit them.
REQUEST_SCHEMA_VERSION = 2

#: What the *work content* of a request hashes under.  Deliberately separate
#: from :data:`REQUEST_SCHEMA_VERSION`: bump only when the meaning of a
#: request changes (coalescing keys then diverge); adding admission metadata
#: does not.  Version 2: the work content gained the replacement-policy knob.
_KEY_SCHEMA_VERSION = 2

#: The two scheduling lanes a submission can ride in.  ``interactive`` is
#: for short quick-suite jobs and is always drained before ``batch`` (full
#: campaigns), so interactive work is never stuck behind a campaign.
PRIORITY_LANES = ("interactive", "batch")

#: Tenant names are path/log-safe identifiers.
_TENANT_NAME_RE = r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}"


def validate_tenant_name(name: str) -> str:
    """Validate a tenant identifier; returns it unchanged."""
    if not isinstance(name, str) or not re.fullmatch(_TENANT_NAME_RE, name):
        raise ConfigurationError(
            f"invalid tenant name {name!r} (want 1-64 chars of [A-Za-z0-9_.-], "
            "starting alphanumeric)"
        )
    return name


@dataclass(frozen=True)
class JobRequest:
    """One submission: a named figure campaign or an explicit job batch.

    ``tenant`` and ``priority`` are **admission metadata**: they decide whose
    quota the submission charges and which scheduling lane it rides, but they
    are deliberately excluded from :meth:`key` -- the same simulation
    submitted by two tenants must still coalesce into one execution and share
    one result-cache entry.
    """

    figure: Optional[str] = None
    cases: Tuple[SimJob, ...] = ()
    instructions: Optional[int] = None
    seed: Optional[int] = None
    full: bool = False
    #: Simulation engine for figure campaigns (``None`` = the default
    #: engine).  Case batches carry the engine inside each job's machine.
    engine: Optional[str] = None
    #: Cache replacement policy for figure campaigns (``None`` = ``"lru"``,
    #: the paper's baseline).  Timing policies only -- the OPT oracle lives
    #: in the offline MRC profiler.  Case batches carry the policy inside
    #: each job's cache configs.
    policy: Optional[str] = None
    #: Submitting tenant (``None`` = the server's default tenant).
    tenant: Optional[str] = None
    #: Scheduling lane (one of :data:`PRIORITY_LANES`; ``None`` lets the
    #: server derive it: ``batch`` for full campaigns, else ``interactive``).
    priority: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tenant is not None:
            validate_tenant_name(self.tenant)
        if self.priority is not None and self.priority not in PRIORITY_LANES:
            raise ConfigurationError(
                f"unknown priority {self.priority!r} (one of {', '.join(PRIORITY_LANES)})"
            )
        if (self.figure is None) == (not self.cases):
            raise ConfigurationError(
                "a job request names either a figure or a non-empty batch of cases"
            )
        if self.cases and (
            self.instructions is not None
            or self.seed is not None
            or self.full
            or self.engine is not None
            or self.policy is not None
        ):
            # Each SimJob embeds its own trace length, seed and (through its
            # machine) engine and replacement policy; silently ignoring the
            # campaign knobs would run different parameters than the caller
            # asked for.
            raise ConfigurationError(
                "instructions/seed/full/engine/policy apply to figure requests "
                "only; case batches carry those parameters inside each job"
            )
        if self.instructions is not None and self.instructions <= 0:
            raise ConfigurationError(
                f"instructions must be positive, got {self.instructions}"
            )

    def normalized(self) -> "JobRequest":
        """Apply the campaign defaults so equivalent requests share one key.

        Figure requests get the CLI's defaults filled in (quick/full trace
        length, paper-year seed) and have their figure name validated against
        the registry; case batches carry every parameter inside each job and
        pass through unchanged (``__post_init__`` already rejected campaign
        knobs on them).
        """
        from repro.memory.replacement import validate_policy_name
        from repro.sim.engine import DEFAULT_ENGINE, engine_by_name
        from repro.sim.experiments import (
            DEFAULT_SEED,
            QUICK_INSTRUCTIONS,
            experiment_by_name,
        )
        from repro.sim.simulator import DEFAULT_INSTRUCTIONS_PER_WORKLOAD

        if self.figure is None:
            return self
        experiment_by_name(self.figure)
        instructions = self.instructions
        if instructions is None:
            instructions = (
                DEFAULT_INSTRUCTIONS_PER_WORKLOAD if self.full else QUICK_INSTRUCTIONS
            )
        seed = self.seed if self.seed is not None else DEFAULT_SEED
        engine = self.engine if self.engine is not None else DEFAULT_ENGINE
        engine_by_name(engine)  # unknown engines fail at admission, not execution
        policy = self.policy if self.policy is not None else "lru"
        validate_policy_name(policy, timing_only=True)  # same admission contract
        return replace(
            self, instructions=instructions, seed=seed, engine=engine, policy=policy
        )

    def key(self) -> str:
        """The request's stable content address (the coalescing key).

        Hashes only the *work content*; ``tenant`` and ``priority`` are
        excluded so identical work from different tenants coalesces and
        cache-hits across tenants.
        """
        normalized = self.normalized()
        return stable_hash(
            {
                "schema": _KEY_SCHEMA_VERSION,
                "figure": normalized.figure,
                "cases": sorted({job_key(case) for case in normalized.cases}),
                "instructions": normalized.instructions,
                "seed": normalized.seed,
                "full": normalized.full,
                "engine": normalized.engine,
                "policy": normalized.policy,
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        """Lower the request to plain JSON types (the wire payload)."""
        return {
            "figure": self.figure,
            "cases": [to_jsonable(case) for case in self.cases],
            "instructions": self.instructions,
            "seed": self.seed,
            "full": self.full,
            "engine": self.engine,
            "policy": self.policy,
            "tenant": self.tenant,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "JobRequest":
        """Rebuild a request from :meth:`to_dict` output (validating shape)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"expected a job request mapping, got {type(data).__name__}"
            )
        cases = data.get("cases") or ()
        if not isinstance(cases, (list, tuple)):
            raise ConfigurationError("job request 'cases' must be a list")
        return cls(
            figure=data.get("figure"),
            cases=tuple(from_jsonable(SimJob, case) for case in cases),
            instructions=data.get("instructions"),
            seed=data.get("seed"),
            full=bool(data.get("full", False)),
            engine=data.get("engine"),
            policy=data.get("policy"),
            tenant=data.get("tenant"),
            priority=data.get("priority"),
        )

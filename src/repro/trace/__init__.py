"""The trace recording/replay subsystem.

``repro.trace`` is the first-class trace layer of the reproduction: any
simulation input -- a synthetic workload's instruction stream -- can be
recorded once into a compact, versioned binary file and replayed
bit-identically across processes, package versions and the simulation
service.  See :mod:`repro.trace.format` for the container layout and the
round-trip guarantees.
"""

from repro.trace.format import (
    TRACE_FORMAT_MAGIC,
    TRACE_FORMAT_VERSION,
    TraceArchive,
    TraceHeader,
    load_trace,
    load_trace_archive,
    read_trace_header,
    record_trace,
    save_trace,
    trace_from_bytes,
    trace_to_bytes,
)

__all__ = [
    "TRACE_FORMAT_MAGIC",
    "TRACE_FORMAT_VERSION",
    "TraceArchive",
    "TraceHeader",
    "load_trace",
    "load_trace_archive",
    "read_trace_header",
    "record_trace",
    "save_trace",
    "trace_from_bytes",
    "trace_to_bytes",
]

"""The versioned binary trace container.

A recorded trace is the unit of replayable simulation input: the exact
dynamic instruction stream a workload generator produced, plus the metadata
needed to regenerate or audit it (workload parameters, generation seed,
format version).  The design goals, in order:

* **Bit-identical round trips.**  ``load_trace(save_trace(t)) == t`` down to
  every register number, address and region weight.  Replaying a loaded
  trace through :meth:`repro.sim.simulator.Simulator.run_trace` therefore
  produces a :class:`~repro.uarch.result.CoreResult` identical to simulating
  the freshly generated trace -- across processes, machines and package
  versions that speak the same format version.
* **Compactness.**  Instructions are fixed-width 22-byte records
  (struct-packed, little-endian), roughly 6x smaller than the line-oriented
  text format of :meth:`repro.isa.trace.Trace.save` and far faster to parse.
* **Self-description.**  The header carries a JSON document with the trace
  name, the generation seed, the full :class:`~repro.workloads.base.WorkloadParameters`
  (when the trace came from a generator) and the region footprints the
  simulator's cache warm-up needs.  ``repro trace info FILE`` prints it.
* **Fail-loud versioning.**  The container starts with a magic string and a
  format version.  :data:`TRACE_FORMAT_VERSION` must be bumped whenever the
  record layout *or the meaning of a generated trace* changes (e.g. the
  generator's seed-derivation scheme); the experiment layer folds the same
  number into every result-cache content address, so stale cached results
  from an older format can never be served as hits.

Container layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"REPROTRC"
    8       2     format version (u16)
    10      4     header length H (u32)
    14      H     header JSON (utf-8): name, seed, params, regions, counts
    14+H    8     record count N (u64)
    22+H    22*N  fixed-width instruction records
    ...     4     CRC-32 of the record bytes (u32)

Record layout (22 bytes)::

    flags   u8   bit0 has_address, bit1 mispredicted, bit2 has_latency
    iclass  u8   index into (int_alu, fp_alu, branch, load, store)
    dest    i8   destination register, -1 when absent
    srcs    4xi8 source registers, -1 padding (max 4 sources)
    address u64  byte address (0 when absent)
    size    u16  access size in bytes
    latency u32  latency override (0 when absent)
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.common.errors import TraceError
from repro.common.serialize import from_jsonable, to_jsonable
from repro.isa.instruction import InstrClass, Instruction
from repro.isa.trace import RegionFootprint, Trace
from repro.workloads.base import WorkloadParameters

#: Leading magic of every recorded trace file.
TRACE_FORMAT_MAGIC = b"REPROTRC"

#: Version of the trace container *and* of the meaning of a generated trace.
#: Bump on any change to the record layout, the header schema, or the
#: workload generator's derivation scheme -- the result cache folds this
#: number into every content address, so bumping it atomically invalidates
#: every cached simulation produced under the old semantics.
TRACE_FORMAT_VERSION = 1

_HEADER_PREFIX = struct.Struct("<8sHI")
_RECORD_COUNT = struct.Struct("<Q")
_CRC = struct.Struct("<I")
_RECORD = struct.Struct("<BBbbbbbQHI")

#: Maximum number of source registers a fixed-width record can carry.
_MAX_SRCS = 4

_FLAG_HAS_ADDRESS = 1 << 0
_FLAG_MISPREDICTED = 1 << 1
_FLAG_HAS_LATENCY = 1 << 2

#: Stable instruction-class codes.  Appending is fine; reordering is a
#: format change and requires a version bump.
_ICLASS_BY_CODE: Tuple[InstrClass, ...] = (
    InstrClass.INT_ALU,
    InstrClass.FP_ALU,
    InstrClass.BRANCH,
    InstrClass.LOAD,
    InstrClass.STORE,
)
_CODE_BY_ICLASS = {iclass: code for code, iclass in enumerate(_ICLASS_BY_CODE)}


@dataclass(frozen=True)
class TraceHeader:
    """The self-describing metadata block of a recorded trace."""

    format_version: int
    name: str
    num_instructions: int
    #: Generation seed the trace was recorded under (``None`` for hand-built
    #: traces, or when the generator's parameter-level seed was used).
    seed: Optional[int] = None
    #: The full workload description that generated the trace, when known.
    #: Replay tooling uses it to re-derive the identical stream remotely
    #: (the service replays by regeneration, which the determinism contract
    #: makes bit-identical to shipping the bytes).
    params: Optional[WorkloadParameters] = None
    regions: Tuple[RegionFootprint, ...] = ()


@dataclass(frozen=True)
class TraceArchive:
    """A loaded recorded trace: the instruction stream plus its header."""

    header: TraceHeader
    trace: Trace


def _encode_record(instruction: Instruction) -> bytes:
    srcs = instruction.srcs
    if len(srcs) > _MAX_SRCS:
        raise TraceError(
            f"instruction {instruction.seq} has {len(srcs)} sources; the fixed-width "
            f"trace record holds at most {_MAX_SRCS}"
        )
    flags = 0
    if instruction.address is not None:
        flags |= _FLAG_HAS_ADDRESS
    if instruction.mispredicted:
        flags |= _FLAG_MISPREDICTED
    if instruction.latency is not None:
        flags |= _FLAG_HAS_LATENCY
    padded = tuple(srcs) + (-1,) * (_MAX_SRCS - len(srcs))
    return _RECORD.pack(
        flags,
        _CODE_BY_ICLASS[instruction.iclass],
        -1 if instruction.dest is None else instruction.dest,
        *padded,
        instruction.address or 0,
        instruction.size,
        instruction.latency or 0,
    )


def _decode_record(seq: int, raw: bytes) -> Instruction:
    flags, code, dest, s0, s1, s2, s3, address, size, latency = _RECORD.unpack(raw)
    try:
        iclass = _ICLASS_BY_CODE[code]
    except IndexError:
        raise TraceError(f"record {seq}: unknown instruction-class code {code}") from None
    srcs = tuple(src for src in (s0, s1, s2, s3) if src >= 0)
    return Instruction(
        seq=seq,
        iclass=iclass,
        dest=None if dest < 0 else dest,
        srcs=srcs,
        address=address if flags & _FLAG_HAS_ADDRESS else None,
        size=size,
        mispredicted=bool(flags & _FLAG_MISPREDICTED),
        latency=latency if flags & _FLAG_HAS_LATENCY else None,
    )


def _header_document(trace: Trace, params, seed: Optional[int]) -> dict:
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "num_instructions": len(trace),
        "seed": seed,
        "params": None if params is None else to_jsonable(params),
        "regions": [to_jsonable(region) for region in trace.regions],
    }


def _parse_header(document: dict) -> TraceHeader:
    try:
        params_doc = document.get("params")
        return TraceHeader(
            format_version=int(document["format_version"]),
            name=str(document["name"]),
            num_instructions=int(document["num_instructions"]),
            seed=document.get("seed"),
            params=(
                None if params_doc is None else from_jsonable(WorkloadParameters, params_doc)
            ),
            regions=tuple(
                from_jsonable(RegionFootprint, region)
                for region in document.get("regions", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc


def _validate_prefix(prefix: bytes, label: str = "trace container") -> int:
    """Check magic and version of a container prefix; return the header length.

    The single definition of the prefix contract, shared by the full parser
    and the header-only reader so the two can never disagree about which
    files are valid.
    """
    if len(prefix) < _HEADER_PREFIX.size:
        raise TraceError(f"{label} is truncated (no header)")
    magic, version, header_length = _HEADER_PREFIX.unpack_from(prefix, 0)
    if magic != TRACE_FORMAT_MAGIC:
        raise TraceError(f"{label}: not a recorded trace (bad magic)")
    if version != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"{label}: trace format version {version} is not supported "
            f"(this build speaks version {TRACE_FORMAT_VERSION}); re-record the trace"
        )
    return header_length


def _decode_header(raw_header: bytes, label: str = "trace container") -> TraceHeader:
    """Decode and validate the header-JSON block of a container."""
    try:
        document = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"{label}: malformed trace header: {exc}") from exc
    return _parse_header(document)


def trace_to_bytes(
    trace: Trace, params: Optional[WorkloadParameters] = None, seed: Optional[int] = None
) -> bytes:
    """Serialise a trace (and its provenance) to the binary container format."""
    header_json = json.dumps(
        _header_document(trace, params, seed), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    records = b"".join(_encode_record(instruction) for instruction in trace)
    return b"".join(
        (
            _HEADER_PREFIX.pack(TRACE_FORMAT_MAGIC, TRACE_FORMAT_VERSION, len(header_json)),
            header_json,
            _RECORD_COUNT.pack(len(trace)),
            records,
            _CRC.pack(zlib.crc32(records)),
        )
    )


def trace_from_bytes(data: bytes) -> TraceArchive:
    """Parse a binary container produced by :func:`trace_to_bytes`.

    Validates the magic, the format version, the record count and the
    record checksum; any mismatch raises :class:`TraceError` rather than
    silently replaying a different stream than was recorded.
    """
    header_length = _validate_prefix(data)
    offset = _HEADER_PREFIX.size
    if len(data) < offset + header_length:
        raise TraceError("trace container is truncated (incomplete header)")
    header = _decode_header(data[offset : offset + header_length])
    offset += header_length
    if len(data) < offset + _RECORD_COUNT.size:
        raise TraceError("trace container is truncated (no record count)")
    (count,) = _RECORD_COUNT.unpack_from(data, offset)
    offset += _RECORD_COUNT.size
    if count != header.num_instructions:
        raise TraceError(
            f"record count {count} disagrees with header ({header.num_instructions})"
        )
    body_size = count * _RECORD.size
    if len(data) < offset + body_size + _CRC.size:
        raise TraceError("trace container is truncated (incomplete records)")
    records = data[offset : offset + body_size]
    (expected_crc,) = _CRC.unpack_from(data, offset + body_size)
    if zlib.crc32(records) != expected_crc:
        raise TraceError("trace records are corrupt (CRC mismatch)")
    instructions: List[Instruction] = [
        _decode_record(seq, records[seq * _RECORD.size : (seq + 1) * _RECORD.size])
        for seq in range(count)
    ]
    trace = Trace(instructions, name=header.name, regions=header.regions)
    return TraceArchive(header=header, trace=trace)


def save_trace(
    trace: Trace,
    path: Union[str, Path],
    params: Optional[WorkloadParameters] = None,
    seed: Optional[int] = None,
) -> Path:
    """Record a trace to ``path``; returns the written path.

    ``params`` (a :class:`~repro.workloads.base.WorkloadParameters`) and
    ``seed`` are provenance: they let ``repro trace submit`` replay the
    recording through the service by regeneration, and let auditors confirm
    what produced the stream.
    """
    target = Path(path)
    target.write_bytes(trace_to_bytes(trace, params=params, seed=seed))
    return target


def load_trace_archive(path: Union[str, Path]) -> TraceArchive:
    """Load a recorded trace together with its header."""
    source = Path(path)
    try:
        data = source.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {source}: {exc}") from exc
    return trace_from_bytes(data)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load just the instruction stream of a recorded trace."""
    return load_trace_archive(path).trace


def read_trace_header(path: Union[str, Path]) -> TraceHeader:
    """Read only the header of a recorded trace (cheap: records stay unparsed)."""
    source = Path(path)
    try:
        with source.open("rb") as handle:
            header_length = _validate_prefix(handle.read(_HEADER_PREFIX.size), str(source))
            raw_header = handle.read(header_length)
    except OSError as exc:
        raise TraceError(f"cannot read trace {source}: {exc}") from exc
    if len(raw_header) < header_length:
        raise TraceError(f"{source}: trace container is truncated (incomplete header)")
    return _decode_header(raw_header, str(source))


def record_trace(
    params: WorkloadParameters,
    num_instructions: int,
    path: Union[str, Path],
    seed: Optional[int] = None,
) -> TraceArchive:
    """Generate one workload's trace and record it in one step.

    The archive written is exactly what :func:`save_trace` would produce for
    :func:`repro.workloads.suite.generate_member_trace` output, so replaying
    it is bit-identical to regenerating from ``(params, num_instructions,
    seed)`` anywhere else.
    """
    from repro.workloads.suite import generate_member_trace

    trace = generate_member_trace(params, num_instructions, seed=seed)
    save_trace(trace, path, params=params, seed=seed)
    return TraceArchive(
        header=TraceHeader(
            format_version=TRACE_FORMAT_VERSION,
            name=trace.name,
            num_instructions=len(trace),
            seed=seed,
            params=params,
            regions=trace.regions,
        ),
        trace=trace,
    )

"""The versioned binary trace container.

A recorded trace is the unit of replayable simulation input: the exact
dynamic instruction stream a workload generator produced, plus the metadata
needed to regenerate or audit it (workload parameters, generation seed,
format version).  The design goals, in order:

* **Bit-identical round trips.**  ``load_trace(save_trace(t)) == t`` down to
  every register number, address and region weight.  Replaying a loaded
  trace through :meth:`repro.sim.simulator.Simulator.run_trace` therefore
  produces a :class:`~repro.uarch.result.CoreResult` identical to simulating
  the freshly generated trace -- across processes, machines and package
  versions that speak the same format version.
* **Compactness.**  Instructions are fixed-width 22-byte records
  (struct-packed, little-endian), roughly 6x smaller than the line-oriented
  text format of :meth:`repro.isa.trace.Trace.save` and far faster to parse.
* **Self-description.**  The header carries a JSON document with the trace
  name, the generation seed, the full :class:`~repro.workloads.base.WorkloadParameters`
  (when the trace came from a generator) and the region footprints the
  simulator's cache warm-up needs.  ``repro trace info FILE`` prints it.
* **Fail-loud versioning.**  The container starts with a magic string and a
  format version.  :data:`TRACE_FORMAT_VERSION` must be bumped whenever the
  record layout *or the meaning of a generated trace* changes (e.g. the
  generator's seed-derivation scheme); the experiment layer folds the same
  number into every result-cache content address, so stale cached results
  from an older format can never be served as hits.  Older container
  versions listed in :data:`SUPPORTED_TRACE_VERSIONS` remain *readable*, so
  archived recordings keep replaying.

Version-2 container layout (all integers little-endian)::

    offset  size  field
    0       8     magic  b"REPROTRC"
    8       2     format version (u16)
    10      4     header length H (u32)
    14      H     header JSON (utf-8): name, seed, params, regions, counts
    14+H    8     record count N (u64)
    22+H    ...   columnar sections, one per column of
                  repro.isa.columns.COLUMN_LAYOUT, each N * itemsize bytes:
                  iclass u8 | dest i8 | src0..src3 i8 | address u64 |
                  size u16 | flags u8 | latency u32
    ...     4     CRC-32 of the concatenated section bytes (u32)

The columnar sections load with one bulk ``frombytes`` per column -- or, via
:func:`trace_from_buffer`, as zero-copy ``memoryview`` casts straight into a
caller-owned buffer such as a shared-memory segment.

Version 1 stored the same fields as 22-byte row-major records
(``<BBbbbbbQHI``: flags, iclass, dest, 4 x src, address, size, latency);
:func:`trace_from_bytes` still parses them, bulk-decoding the whole record
section with ``struct.iter_unpack`` straight into columns.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.common.errors import TraceError
from repro.common.serialize import from_jsonable, to_jsonable
from repro.isa.columns import COLUMN_LAYOUT, TraceColumns
from repro.isa.trace import RegionFootprint, Trace
from repro.workloads.base import WorkloadParameters

#: Leading magic of every recorded trace file.
TRACE_FORMAT_MAGIC = b"REPROTRC"

#: Version of the trace container *and* of the meaning of a generated trace.
#: Bump on any change to the record layout, the header schema, or the
#: workload generator's derivation scheme -- the result cache folds this
#: number into every content address, so bumping it atomically invalidates
#: every cached simulation produced under the old semantics.  Version 2
#: replaced the row-major fixed-width records with columnar sections.
TRACE_FORMAT_VERSION = 2

#: Container versions this build can *read* (writing always uses the
#: current version).
SUPPORTED_TRACE_VERSIONS = (1, 2)

_HEADER_PREFIX = struct.Struct("<8sHI")
_RECORD_COUNT = struct.Struct("<Q")
_CRC = struct.Struct("<I")
#: The version-1 row-major record layout, kept for reading archived traces.
_RECORD_V1 = struct.Struct("<BBbbbbbQHI")

#: Bytes of columnar payload per instruction (sum of column item sizes).
_ROW_BYTES = sum(itemsize for _name, _typecode, itemsize in COLUMN_LAYOUT)


@dataclass(frozen=True)
class TraceHeader:
    """The self-describing metadata block of a recorded trace."""

    format_version: int
    name: str
    num_instructions: int
    #: Generation seed the trace was recorded under (``None`` for hand-built
    #: traces, or when the generator's parameter-level seed was used).
    seed: Optional[int] = None
    #: The full workload description that generated the trace, when known.
    #: Replay tooling uses it to re-derive the identical stream remotely
    #: (the service replays by regeneration, which the determinism contract
    #: makes bit-identical to shipping the bytes).
    params: Optional[WorkloadParameters] = None
    regions: Tuple[RegionFootprint, ...] = ()


@dataclass(frozen=True)
class TraceArchive:
    """A loaded recorded trace: the instruction stream plus its header."""

    header: TraceHeader
    trace: Trace


def _columns_from_v1_records(records: bytes, validate: bool = True) -> TraceColumns:
    """Bulk-decode a version-1 row-major record section into columns.

    ``struct.iter_unpack`` walks the whole section in one C-level pass, so
    replaying archived v1 traces costs a single loop of array appends
    instead of the historical per-record ``unpack`` + ``Instruction``
    construction.
    """
    columns = TraceColumns()
    append_row = columns.append_row
    for flags, code, dest, s0, s1, s2, s3, address, size, latency in _RECORD_V1.iter_unpack(
        records
    ):
        append_row(code, dest, s0, s1, s2, s3, address, size, flags, latency)
    if validate:
        columns.validate_canonical()
    else:
        columns.validate_codes()
    return columns


def _header_document(trace: Trace, params, seed: Optional[int]) -> dict:
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "num_instructions": len(trace),
        "seed": seed,
        "params": None if params is None else to_jsonable(params),
        "regions": [to_jsonable(region) for region in trace.regions],
    }


def _parse_header(document: dict) -> TraceHeader:
    try:
        params_doc = document.get("params")
        return TraceHeader(
            format_version=int(document["format_version"]),
            name=str(document["name"]),
            num_instructions=int(document["num_instructions"]),
            seed=document.get("seed"),
            params=(
                None if params_doc is None else from_jsonable(WorkloadParameters, params_doc)
            ),
            regions=tuple(
                from_jsonable(RegionFootprint, region)
                for region in document.get("regions", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc


def _validate_prefix(prefix: bytes, label: str = "trace container") -> Tuple[int, int]:
    """Check magic and version of a container prefix.

    Returns ``(format version, header length)``.  The single definition of
    the prefix contract, shared by the full parser and the header-only
    reader so the two can never disagree about which files are valid.
    """
    if len(prefix) < _HEADER_PREFIX.size:
        raise TraceError(f"{label} is truncated (no header)")
    magic, version, header_length = _HEADER_PREFIX.unpack_from(prefix, 0)
    if magic != TRACE_FORMAT_MAGIC:
        raise TraceError(f"{label}: not a recorded trace (bad magic)")
    if version not in SUPPORTED_TRACE_VERSIONS:
        raise TraceError(
            f"{label}: trace format version {version} is not supported "
            f"(this build reads versions {SUPPORTED_TRACE_VERSIONS}); re-record the trace"
        )
    return version, header_length


def _decode_header(raw_header: bytes, label: str = "trace container") -> TraceHeader:
    """Decode and validate the header-JSON block of a container."""
    try:
        document = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"{label}: malformed trace header: {exc}") from exc
    return _parse_header(document)


def trace_to_bytes(
    trace: Trace, params: Optional[WorkloadParameters] = None, seed: Optional[int] = None
) -> bytes:
    """Serialise a trace (and its provenance) to the binary container format.

    The instruction stream is written as columnar sections pulled straight
    from :meth:`Trace.columns`, so serialising a generated (column-backed)
    trace touches no instruction objects at all.
    """
    header_json = json.dumps(
        _header_document(trace, params, seed), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    columns = trace.columns()
    sections = [columns.column_bytes(name) for name, _tc, _sz in COLUMN_LAYOUT]
    crc = 0
    for section in sections:
        crc = zlib.crc32(section, crc)
    return b"".join(
        (
            _HEADER_PREFIX.pack(TRACE_FORMAT_MAGIC, TRACE_FORMAT_VERSION, len(header_json)),
            header_json,
            _RECORD_COUNT.pack(len(trace)),
            *sections,
            _CRC.pack(crc),
        )
    )


def _parse_container(data, zero_copy: bool, owner=None, validate: bool = True) -> TraceArchive:
    """Shared container parser over any bytes-like object.

    ``zero_copy`` wraps the version-2 columnar sections as ``memoryview``
    casts into ``data`` (keeping ``owner`` alive on the columns) instead of
    copying them into fresh arrays.  ``validate=False`` skips the per-row
    canonical-form check for containers this process (or a trusted parent)
    just serialised itself; the CRC still guards integrity.
    """
    view = memoryview(data)
    version, header_length = _validate_prefix(
        bytes(view[: _HEADER_PREFIX.size]) if len(view) >= _HEADER_PREFIX.size else b""
    )
    offset = _HEADER_PREFIX.size
    if len(view) < offset + header_length:
        raise TraceError("trace container is truncated (incomplete header)")
    header = _decode_header(bytes(view[offset : offset + header_length]))
    offset += header_length
    if len(view) < offset + _RECORD_COUNT.size:
        raise TraceError("trace container is truncated (no record count)")
    (count,) = _RECORD_COUNT.unpack_from(view, offset)
    offset += _RECORD_COUNT.size
    if count != header.num_instructions:
        raise TraceError(
            f"record count {count} disagrees with header ({header.num_instructions})"
        )
    if version == 1:
        body_size = count * _RECORD_V1.size
    else:
        body_size = count * _ROW_BYTES
    if len(view) < offset + body_size + _CRC.size:
        raise TraceError("trace container is truncated (incomplete records)")
    body = view[offset : offset + body_size]
    (expected_crc,) = _CRC.unpack_from(view, offset + body_size)
    if zlib.crc32(body) != expected_crc:
        raise TraceError("trace records are corrupt (CRC mismatch)")

    if version == 1:
        columns = _columns_from_v1_records(bytes(body), validate=validate)
    else:
        buffers = []
        section_offset = 0
        for _name, _typecode, itemsize in COLUMN_LAYOUT:
            section_size = count * itemsize
            buffers.append(body[section_offset : section_offset + section_size])
            section_offset += section_size
        if zero_copy and sys.byteorder == "little":
            columns = TraceColumns.from_buffers(buffers, owner=owner)
        else:
            # Copying load (or a big-endian host, where the little-endian
            # sections cannot be viewed natively): one bulk frombytes per
            # column via the byteswap-aware materialiser.
            columns = TraceColumns.from_buffers(buffers).materialized()
        if validate:
            columns.validate_canonical()
        else:
            columns.validate_codes()
    trace = Trace.from_columns(columns, name=header.name, regions=header.regions)
    return TraceArchive(header=header, trace=trace)


def trace_from_bytes(data: bytes, validate: bool = True) -> TraceArchive:
    """Parse a binary container produced by :func:`trace_to_bytes`.

    Validates the magic, the format version, the record count, the record
    checksum and (unless ``validate=False``, reserved for bytes this
    process trusts end to end) the canonical form of every row; any
    mismatch raises :class:`TraceError` rather than silently replaying a
    different stream than was recorded.  Version-2 containers load with one
    bulk copy per column; version-1 containers are bulk-decoded with
    ``struct.iter_unpack``.
    """
    return _parse_container(data, zero_copy=False, validate=validate)


def trace_from_buffer(buffer, owner=None, validate: bool = True) -> TraceArchive:
    """Parse a container from a caller-owned buffer without copying records.

    The returned trace's columns are ``memoryview`` casts into ``buffer``
    (for version-2 containers on little-endian hosts; other combinations
    fall back to a copying load).  ``owner`` -- e.g. a
    ``multiprocessing.shared_memory.SharedMemory`` segment -- is kept alive
    by the columns, but the caller remains responsible for eventually
    closing it after the trace is dropped.  Pass ``validate=False`` only
    for buffers this process trusts end to end (the runner's own
    shared-memory handoff does: the parent serialised the container from an
    already-canonical trace moments earlier), keeping the attach
    genuinely zero-cost.
    """
    return _parse_container(buffer, zero_copy=True, owner=owner, validate=validate)


def save_trace(
    trace: Trace,
    path: Union[str, Path],
    params: Optional[WorkloadParameters] = None,
    seed: Optional[int] = None,
) -> Path:
    """Record a trace to ``path``; returns the written path.

    ``params`` (a :class:`~repro.workloads.base.WorkloadParameters`) and
    ``seed`` are provenance: they let ``repro trace submit`` replay the
    recording through the service by regeneration, and let auditors confirm
    what produced the stream.
    """
    target = Path(path)
    target.write_bytes(trace_to_bytes(trace, params=params, seed=seed))
    return target


def load_trace_archive(path: Union[str, Path]) -> TraceArchive:
    """Load a recorded trace together with its header."""
    source = Path(path)
    try:
        data = source.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {source}: {exc}") from exc
    return trace_from_bytes(data)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load just the instruction stream of a recorded trace."""
    return load_trace_archive(path).trace


def read_trace_header(path: Union[str, Path]) -> TraceHeader:
    """Read only the header of a recorded trace (cheap: records stay unparsed)."""
    source = Path(path)
    try:
        with source.open("rb") as handle:
            _version, header_length = _validate_prefix(
                handle.read(_HEADER_PREFIX.size), str(source)
            )
            raw_header = handle.read(header_length)
    except OSError as exc:
        raise TraceError(f"cannot read trace {source}: {exc}") from exc
    if len(raw_header) < header_length:
        raise TraceError(f"{source}: trace container is truncated (incomplete header)")
    return _decode_header(raw_header, str(source))


def record_trace(
    params: WorkloadParameters,
    num_instructions: int,
    path: Union[str, Path],
    seed: Optional[int] = None,
) -> TraceArchive:
    """Generate one workload's trace and record it in one step.

    The archive written is exactly what :func:`save_trace` would produce for
    :func:`repro.workloads.suite.generate_member_trace` output, so replaying
    it is bit-identical to regenerating from ``(params, num_instructions,
    seed)`` anywhere else.
    """
    from repro.workloads.suite import generate_member_trace

    trace = generate_member_trace(params, num_instructions, seed=seed)
    save_trace(trace, path, params=params, seed=seed)
    return TraceArchive(
        header=TraceHeader(
            format_version=TRACE_FORMAT_VERSION,
            name=trace.name,
            num_instructions=len(trace),
            seed=seed,
            params=params,
            regions=trace.regions,
        ),
        trace=trace,
    )

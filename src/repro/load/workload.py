"""What the load driver sends: requests, their generator, and named mixes.

The split mirrors the hopperkv harness: a :class:`Req` is one fully
resolved request, a :class:`ReqGenEngine` turns ``(client, index)`` into a
:class:`Req` deterministically, and a :class:`Workload` is the named recipe
(operation mix, tenant mix, job size, seed) the engine draws from.

Determinism is the point: request ``i`` of client ``c`` is a pure function
of the workload seed, so two runs of the same configuration offer the same
request stream -- and every submission gets a *distinct* simulation seed,
so the server does real work instead of coalescing the whole fleet into
one job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: The request kinds the driver knows how to issue.  ``submit`` is the
#: end-to-end unit (POST /v1/jobs + poll to completion); ``health`` and
#: ``stats`` are the cheap read endpoints that keep running under backlog.
REQUEST_KINDS = ("submit", "health", "stats")

#: The default operation mix: submission-heavy with a trickle of reads.
DEFAULT_MIX = (("submit", 0.8), ("health", 0.1), ("stats", 0.1))


@dataclass(frozen=True)
class Req:
    """One fully resolved request: what to send and under which identity."""

    #: Position in this client's request stream (0-based).
    index: int
    #: One of :data:`REQUEST_KINDS`.
    kind: str
    #: Tenant the request is charged to (``None`` = the server's default).
    tenant: Optional[str]
    #: Simulation seed for ``submit`` requests (distinct per request, so
    #: submissions have distinct content addresses and cannot coalesce).
    seed: int
    #: Trace length for ``submit`` requests.
    instructions: int


@dataclass(frozen=True)
class Workload:
    """A named request mix the generator engine draws from.

    ``mix`` weights the request kinds; ``tenants`` (optional) weights the
    tenant identities -- the tenant-mix mode of ``repro loadbench`` uses it
    to offer proportional traffic and then checks the *served* shares
    against the scheduler's configured weights.
    """

    name: str = "default"
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    tenants: Tuple[Tuple[str, float], ...] = ()
    instructions: int = 1500
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.mix:
            raise ConfigurationError("a workload needs a non-empty request mix")
        for kind, weight in self.mix:
            if kind not in REQUEST_KINDS:
                raise ConfigurationError(
                    f"unknown request kind {kind!r} (choose from {REQUEST_KINDS})"
                )
            if weight <= 0:
                raise ConfigurationError(f"mix weight for {kind!r} must be > 0")
        for tenant, weight in self.tenants:
            if weight <= 0:
                raise ConfigurationError(f"tenant weight for {tenant!r} must be > 0")
        if self.instructions <= 0:
            raise ConfigurationError("instructions per submission must be > 0")

    def engine(self, client_index: int) -> "ReqGenEngine":
        """The deterministic request stream for one client of the fleet."""
        return ReqGenEngine(self, client_index)


class ReqGenEngine:
    """Generates one client's request stream, deterministically.

    Request ``i`` is derived from ``random.Random("seed:client:i")``:
    reproducible across runs and processes, with no shared state between
    the fleet's clients.
    """

    def __init__(self, workload: Workload, client_index: int) -> None:
        self.workload = workload
        self.client_index = client_index

    def request(self, index: int) -> Req:
        rng = random.Random(
            f"{self.workload.seed}:{self.client_index}:{index}"
        )
        kind = _weighted_choice(rng, self.workload.mix)
        tenant = (
            _weighted_choice(rng, self.workload.tenants)
            if self.workload.tenants
            else None
        )
        return Req(
            index=index,
            kind=kind,
            tenant=tenant,
            # Unique per (client, index): submissions never share a content
            # address, so each one is real work for the server.
            seed=rng.randrange(1, 2**31),
            instructions=self.workload.instructions,
        )


def _weighted_choice(rng: random.Random, choices: Sequence[Tuple[str, float]]) -> str:
    """Pick one name from ``(name, weight)`` pairs, weight-proportionally."""
    total = sum(weight for _, weight in choices)
    point = rng.random() * total
    cumulative = 0.0
    for name, weight in choices:
        cumulative += weight
        if point < cumulative:
            return name
    return choices[-1][0]

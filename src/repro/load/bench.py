"""The ``repro loadbench`` orchestration: ramp, artifact, gate.

A loadbench run is a **ramp**: one load stage per configured fleet size,
each measured with epoch accounting (warmup discarded).  The server under
test is either an external URL (``--server``) or -- the default -- a
**self-served** ``python -m repro serve`` subprocess brought up on a free
port block, optionally sharded (``--shards N``), with a scratch cache and
torn down afterwards.

**Tenant-mix mode** is the weighted-fairness check: traffic is offered in
*equal* proportion per tenant while the server's roster (written for the
self-served instance) carries the *configured weights*, so under
saturation the completed-work shares observed by the harness should track
the weights, not the offered mix -- exactly the stride scheduler's
contract.  ``--share-tolerance`` bounds the allowed deviation.

The run writes a committed JSON artifact (``LOADBENCH_pr8.json`` in this
PR) recording the git revision, full configuration, per-epoch series per
stage and the server's merged post-run stats; ``--gate`` re-reads the
fresh artifact and fails the run when throughput, submit p99 or tenant
shares miss the thresholds (the CI ``loadbench-smoke`` job's contract).
"""

from __future__ import annotations

import json
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ServiceError
from repro.load.driver import DriverConfig, run_load
from repro.load.epoch import EpochSeries
from repro.load.workload import DEFAULT_MIX, Workload

#: Schema of the loadbench artifact (additive changes bump it).
LOADBENCH_SCHEMA_VERSION = 1

#: How long the self-served instance gets to answer its first healthz.
READINESS_TIMEOUT = 60.0


@dataclass(frozen=True)
class LoadBenchConfig:
    """Everything one ``repro loadbench`` invocation needs."""

    #: External server base URL; ``None`` self-serves a fresh instance.
    server: Optional[str] = None
    #: Shards for the self-served instance (1 = a single process).
    shards: int = 2
    #: Worker tasks per (self-served) shard.
    serve_workers: int = 2
    #: Queue limit per (self-served) shard.
    queue_limit: int = 64
    #: The ramp: one stage per fleet size, in order.
    clients: Tuple[int, ...] = (2, 4)
    mode: str = "open"
    #: Open-loop arrivals per second per client.
    rate: float = 4.0
    epoch_seconds: float = 2.0
    epochs: int = 4
    warmup_epochs: int = 1
    #: Trace length per submitted simulation.
    instructions: int = 1500
    #: Tenant-mix mode: ``(name, weight)`` pairs; empty disables it.
    tenant_mix: Tuple[Tuple[str, float], ...] = ()
    timeout: float = 30.0
    seed: int = 42
    #: Fault-spec file for the self-served instance (``repro chaos``): the
    #: server comes up with injection active, and the fleet tolerates
    #: ``expected_failures`` injected client deaths per stage.
    faults: Optional[str] = None
    expected_failures: int = 0

    def __post_init__(self) -> None:
        if self.faults is not None and self.server is not None:
            raise ConfigurationError(
                "--faults applies to the self-served instance; an external "
                "--server must be fault-injected at its own launch"
            )
        if self.expected_failures < 0:
            raise ConfigurationError("expected_failures must be >= 0")
        if not self.clients:
            raise ConfigurationError("the ramp needs at least one stage")
        if any(count <= 0 for count in self.clients):
            raise ConfigurationError("every ramp stage needs at least one client")
        if self.shards < 1:
            raise ConfigurationError("--shards must be >= 1")
        if len(self.tenant_mix) == 1:
            raise ConfigurationError(
                "tenant-mix mode needs at least two tenants to compare shares"
            )

    def stage_duration(self) -> float:
        return self.epochs * self.epoch_seconds

    def workload(self) -> Workload:
        # Equal *offered* share per tenant: the server's weighted-fair
        # scheduler, not the offered mix, must produce the weighted shares.
        tenants = tuple((name, 1.0) for name, _ in self.tenant_mix)
        return Workload(
            name="loadbench",
            mix=DEFAULT_MIX,
            tenants=tenants,
            instructions=self.instructions,
            seed=self.seed,
        )

    def expected_shares(self) -> Dict[str, float]:
        """The weight-proportional shares the scheduler should serve."""
        total = sum(weight for _, weight in self.tenant_mix)
        return {name: weight / total for name, weight in self.tenant_mix}


class SelfServedServer:
    """A ``python -m repro serve`` subprocess on a free port block."""

    def __init__(self, config: LoadBenchConfig) -> None:
        self.config = config
        self.scratch = Path(tempfile.mkdtemp(prefix="repro-loadbench-"))
        self.base_port = _free_port_block(config.shards + 1)
        self.process: Optional[subprocess.Popen] = None

    @property
    def shard_urls(self) -> List[str]:
        from repro.service.shards import shard_ports

        if self.config.shards <= 1:
            return [f"http://127.0.0.1:{self.base_port}"]
        return [
            f"http://127.0.0.1:{port}"
            for port in shard_ports(self.base_port, self.config.shards)
        ]

    @property
    def public_url(self) -> str:
        return f"http://127.0.0.1:{self.base_port}"

    def driver_urls(self) -> List[str]:
        """What the fleet dials: the public port where the kernel can
        load-balance it (SO_REUSEPORT), else round-robin the shard ports."""
        from repro.service.server import REUSE_PORT_AVAILABLE

        if self.config.shards > 1 and not REUSE_PORT_AVAILABLE:
            return self.shard_urls
        return [self.public_url]

    def start(self) -> None:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(self.base_port),
            "--workers",
            str(self.config.serve_workers),
            "--queue-limit",
            str(self.config.queue_limit),
            "--cache-dir",
            str(self.scratch / "cache"),
            "--log-level",
            "warning",
        ]
        if self.config.shards > 1:
            command += ["--shards", str(self.config.shards)]
        if self.config.faults:
            command += ["--faults", str(self.config.faults)]
        if self.config.tenant_mix:
            roster = self.scratch / "tenants.json"
            roster.write_text(
                json.dumps(
                    {
                        "tenants": {
                            name: {"weight": weight}
                            for name, weight in self.config.tenant_mix
                        }
                    }
                )
            )
            command += ["--tenants", str(roster)]
        self.process = subprocess.Popen(command)
        self._await_ready()

    def _await_ready(self) -> None:
        from repro.service.client import ServiceClient

        deadline = time.monotonic() + READINESS_TIMEOUT
        pending = list(self.shard_urls)
        while pending and time.monotonic() < deadline:
            if self.process is not None and self.process.poll() is not None:
                raise ServiceError(
                    f"self-served instance exited early "
                    f"(code {self.process.returncode})"
                )
            url = pending[0]
            try:
                ServiceClient(url, timeout=5.0).healthz()
                pending.pop(0)
            except ServiceError:
                time.sleep(0.2)
        if pending:
            raise ServiceError(f"server not ready after {READINESS_TIMEOUT:.0f}s: {pending}")

    def stop(self) -> None:
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
            self.process = None
        shutil.rmtree(self.scratch, ignore_errors=True)


def run_loadbench(config: LoadBenchConfig, log=print) -> Dict[str, Any]:
    """Run the ramp and return the artifact document."""
    server: Optional[SelfServedServer] = None
    if config.server is not None:
        urls = [config.server.rstrip("/")]
        stats_url = urls[0]
        server_block: Dict[str, Any] = {"self_served": False, "url": stats_url}
    else:
        server = SelfServedServer(config)
        log(
            f"[repro] starting server under test: shards={config.shards}, "
            f"workers={config.serve_workers}, port={server.base_port}"
        )
        server.start()
        urls = server.driver_urls()
        stats_url = server.shard_urls[0]
        server_block = {
            "self_served": True,
            "shards": config.shards,
            "public_port": server.base_port,
            "driver_urls": urls,
        }
    try:
        stages = [
            _run_stage(config, urls, clients, log) for clients in config.clients
        ]
        stats_after = _fetch_stats(stats_url)
    finally:
        if server is not None:
            server.stop()
    from repro.exp.cli import _git_revision

    return {
        "artifact": "repro-loadbench",
        "schema_version": LOADBENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "git_revision": _git_revision(),
        "config": asdict(config),
        "server": server_block,
        "stages": stages,
        "stats_after": stats_after,
    }


def _run_stage(
    config: LoadBenchConfig, urls: List[str], clients: int, log
) -> Dict[str, Any]:
    log(
        f"[repro] stage: {clients} {config.mode}-loop clients for "
        f"{config.stage_duration():.0f}s ({config.epochs} x "
        f"{config.epoch_seconds:.0f}s epochs, {config.warmup_epochs} warmup)"
    )
    driver = DriverConfig(
        urls=tuple(urls),
        mode=config.mode,
        clients=clients,
        duration_seconds=config.stage_duration(),
        rate=config.rate,
        workload=config.workload(),
        timeout=config.timeout,
        expected_failures=config.expected_failures,
    )
    series = EpochSeries(config.epoch_seconds, config.epochs, config.warmup_epochs)
    series.extend(run_load(driver))
    stage: Dict[str, Any] = {"clients": clients, "series": series.document()}
    measured = stage["series"]["measured"]
    if config.tenant_mix:
        stage["tenant_shares"] = _share_check(config, measured)
    submit = measured["endpoints"].get("submit", {})
    log(
        f"[repro]   measured: {measured['throughput_rps']:.2f} req/s total, "
        f"submit p50 {submit.get('p50_ms', 0.0):.0f}ms "
        f"p99 {submit.get('p99_ms', 0.0):.0f}ms, "
        f"{measured['errors']} errors"
    )
    return stage


def _share_check(config: LoadBenchConfig, measured: Dict[str, Any]) -> Dict[str, Any]:
    expected = config.expected_shares()
    observed = {
        name: entry["share"] for name, entry in measured.get("tenants", {}).items()
    }
    errors = {
        name: abs(observed.get(name, 0.0) - share) for name, share in expected.items()
    }
    return {
        "expected": expected,
        "observed": observed,
        "max_abs_error": max(errors.values()) if errors else 0.0,
    }


def _fetch_stats(url: str) -> Optional[Dict[str, Any]]:
    """The server's (merged, when sharded) stats after the ramp."""
    from repro.service.client import ServiceClient

    try:
        return ServiceClient(url, timeout=10.0).stats()
    except ServiceError:
        return None


def evaluate_loadbench_gate(
    artifact: Dict[str, Any],
    *,
    min_throughput: float = 0.0,
    max_p99_ms: float = 0.0,
    share_tolerance: float = 0.0,
) -> Tuple[bool, List[str]]:
    """Check an artifact against the gate thresholds; returns (ok, lines).

    A threshold of 0 disables its check.  Throughput is judged on the best
    stage (the ramp's point of peak load); submit p99 and tenant shares
    must hold on *every* stage.
    """
    ok = True
    lines: List[str] = []
    stages = artifact.get("stages", [])
    if not stages:
        return False, ["gate: artifact has no stages"]
    if min_throughput > 0.0:
        best = max(
            float(stage["series"]["measured"]["throughput_rps"]) for stage in stages
        )
        passed = best >= min_throughput
        ok = ok and passed
        lines.append(
            f"gate: peak throughput {best:.2f} req/s vs >= {min_throughput:.2f} "
            f"required: {'ok' if passed else 'FAIL'}"
        )
    if max_p99_ms > 0.0:
        for stage in stages:
            submit = stage["series"]["measured"]["endpoints"].get("submit")
            if submit is None or submit["requests"] == 0:
                ok = False
                lines.append(
                    f"gate: stage with {stage['clients']} clients measured no "
                    "submit requests: FAIL"
                )
                continue
            p99 = float(submit["p99_ms"])
            passed = p99 <= max_p99_ms
            ok = ok and passed
            lines.append(
                f"gate: {stage['clients']} clients: submit p99 {p99:.0f}ms vs "
                f"<= {max_p99_ms:.0f}ms required: {'ok' if passed else 'FAIL'}"
            )
    if share_tolerance > 0.0:
        for stage in stages:
            shares = stage.get("tenant_shares")
            if shares is None:
                ok = False
                lines.append(
                    "gate: share tolerance set but the run had no tenant mix: FAIL"
                )
                break
            error = float(shares["max_abs_error"])
            passed = error <= share_tolerance
            ok = ok and passed
            lines.append(
                f"gate: {stage['clients']} clients: tenant share error "
                f"{error:.3f} vs <= {share_tolerance:.3f} allowed: "
                f"{'ok' if passed else 'FAIL'}"
            )
    return ok, lines


def _free_port_block(count: int) -> int:
    """A base port with ``count`` consecutive free ports from it.

    The shard layout is ``base`` (public) plus ``base+1..base+N`` (peers),
    so the whole block must be free at once.  Probing binds every port in
    the candidate block before releasing them; a race with another process
    grabbing a probed port between release and the server's bind is
    possible but vanishingly rare on a CI box.
    """
    import random

    rng = random.Random()
    for _ in range(64):
        base = rng.randrange(20000, 50000)
        sockets = []
        try:
            for offset in range(count):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind(("127.0.0.1", base + offset))
                sockets.append(sock)
            return base
        except OSError:
            continue
        finally:
            for sock in sockets:
                sock.close()
    raise ServiceError(f"could not find {count} consecutive free ports")

"""How the load is offered: the request loop and the multi-process fleet.

Two arrival disciplines, selected by ``mode``:

* **open loop** -- arrival ``k`` is *scheduled* at ``start + k/rate``,
  independent of when earlier requests complete.  A saturated server shows
  up as rising latency (and, for a single client thread, as late arrivals
  once service time exceeds the inter-arrival gap), not as a silently
  reduced offered load.  This is the honest discipline for throughput
  curves: closed-loop generators self-throttle under congestion and hide
  the very overload they were meant to measure.
* **closed loop** -- the next request issues the moment the previous one
  returns (think time zero): offered load adapts to service capacity,
  which is the right discipline for "how fast can N clients go".

The fleet is one OS **process per client** (spawn start method), each with
its own :class:`~repro.service.client.ServiceClient`; clients round-robin
over the configured server URLs, which is the port-per-shard fallback on
platforms without ``SO_REUSEPORT``.  Workers report their samples once, at
the end, over a multiprocessing queue -- no cross-process chatter on the
measurement path.

The loop core (:func:`run_request_loop`) takes the issue function and the
clock as parameters, so its arrival shape is unit-testable with a fake
clock and no server.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ConfigurationError, LoadDriverError, ServiceError
from repro.load.epoch import Sample
from repro.load.workload import Req, Workload

#: ``issue`` callback contract: takes the request, returns success.
IssueFn = Callable[[Req], bool]

#: Grace period (beyond the configured duration) a worker gets to report
#: its samples before the parent gives up on it.
REPORT_GRACE_SECONDS = 60.0


@dataclass(frozen=True)
class DriverConfig:
    """One load stage: the fleet, the discipline and the workload."""

    #: Server base URLs; client ``i`` talks to ``urls[i % len(urls)]``.
    urls: Tuple[str, ...]
    #: ``open`` or ``closed`` (see the module docstring).
    mode: str = "open"
    #: Fleet size (one process per client).
    clients: int = 2
    #: Seconds each client offers load (epochs * epoch length upstream).
    duration_seconds: float = 4.0
    #: Open-loop arrivals per second, per client.
    rate: float = 4.0
    workload: Workload = field(default_factory=Workload)
    #: Per-request client timeout (also bounds the submit wait).
    timeout: float = 30.0
    #: Client-process deaths tolerated before the stage fails.  Zero (the
    #: default) keeps the strict contract: any client that dies without
    #: reporting is a harness bug.  Chaos runs raise it so *injected* kills
    #: are absorbed as measurements while genuine fleet bugs still fail.
    expected_failures: int = 0

    def __post_init__(self) -> None:
        if not self.urls:
            raise ConfigurationError("the driver needs at least one server URL")
        if self.mode not in ("open", "closed"):
            raise ConfigurationError(f"unknown driver mode {self.mode!r}")
        if self.clients <= 0:
            raise ConfigurationError("the fleet needs at least one client")
        if self.duration_seconds <= 0:
            raise ConfigurationError("duration must be > 0 seconds")
        if self.mode == "open" and self.rate <= 0:
            raise ConfigurationError("open-loop mode needs a rate > 0")
        if self.expected_failures < 0:
            raise ConfigurationError("expected_failures must be >= 0")


def run_request_loop(
    mode: str,
    duration_seconds: float,
    next_request: Callable[[int], Req],
    issue: IssueFn,
    rate: Optional[float] = None,
    *,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> List[Sample]:
    """Issue requests until the deadline; returns the observed samples.

    Open loop sleeps until each arrival's *scheduled* time (never issuing
    early) and keeps issuing overdue arrivals back-to-back when the client
    has fallen behind -- the offered schedule is fixed, lateness is the
    server's problem to show in the latencies.  Closed loop issues
    back-to-back until the deadline.  Sample ``start`` times are relative
    to this loop's own start, which is what the epoch accounting buckets
    on.
    """
    samples: List[Sample] = []
    start = clock()
    deadline = start + duration_seconds
    index = 0
    while True:
        now = clock()
        if mode == "open":
            assert rate is not None  # DriverConfig validated this
            scheduled = start + index / rate
            if scheduled >= deadline:
                break
            if scheduled > now:
                sleep(scheduled - now)
        elif now >= deadline:
            break
        request = next_request(index)
        issued = clock()
        ok = issue(request)
        finished = clock()
        samples.append(
            Sample(
                kind=request.kind,
                tenant=request.tenant,
                start=issued - start,
                latency=finished - issued,
                ok=ok,
            )
        )
        index += 1
    return samples


def _issue_with_client(client, request: Req, timeout: float) -> bool:
    """Issue one request through the SDK; failures become ``ok=False``.

    Admission rejections (429) and transport failures are legitimate
    measurements under saturation, so they are recorded rather than
    raised -- the epoch accounting reports them as errors.
    """
    from repro.exp.runner import SimJob
    from repro.sim.configs import fmc_hash
    from repro.workloads.suite import quick_fp_suite

    try:
        if request.kind == "submit":
            job = SimJob(
                fmc_hash(),
                quick_fp_suite().members[request.index % len(quick_fp_suite().members)],
                request.instructions,
                request.seed,
            )
            client.run(cases=[job], timeout=timeout, tenant=request.tenant)
        elif request.kind == "health":
            client.healthz()
        else:
            client.stats()
        return True
    except ServiceError:
        return False


def _client_main(client_index: int, config: DriverConfig, queue) -> None:
    """One fleet client (runs in its own spawned process)."""
    from repro.service.client import ServiceClient

    url = config.urls[client_index % len(config.urls)]
    client = ServiceClient(url, timeout=config.timeout)
    engine = config.workload.engine(client_index)
    samples = run_request_loop(
        config.mode,
        config.duration_seconds,
        engine.request,
        lambda request: _issue_with_client(client, request, config.timeout),
        rate=config.rate,
    )
    queue.put((client_index, samples))


def collect_fleet_samples(
    report_queue,
    processes: Sequence,
    expected_reports: int,
    deadline: float,
    *,
    clock: Callable[[], float] = time.monotonic,
    expected_failures: int = 0,
) -> List[Sample]:
    """Drain the fleet's report queue until every client has reported.

    Only a queue-``get`` *timeout* (:class:`queue.Empty`) means "keep
    waiting"; any other error is a real failure and propagates.  On each
    idle tick the fleet's health is checked: a client process that exited
    non-zero without delivering its report raises
    :class:`~repro.common.errors.LoadDriverError` -- the stage's numbers
    would otherwise silently undercount the offered load until the
    deadline.  ``expected_failures`` relaxes that contract for chaos runs:
    up to that many deaths are tolerated (their samples simply missing, and
    the wait for their reports abandoned), so an injected client kill is a
    measurement while the death of one client *more* than the fault spec
    explains still fails the stage loudly.  The queue and processes are
    duck-typed (``get``/``empty`` and ``is_alive``/``exitcode``/``name``)
    so the wait logic is unit-testable without real processes.
    """
    samples: List[Sample] = []
    reported: Set[int] = set()
    dead: Set[int] = set()
    while len(reported) + len(dead) < expected_reports and clock() < deadline:
        try:
            client_index, client_samples = report_queue.get(timeout=1.0)
        except queue_module.Empty:
            if report_queue.empty():
                dead = {
                    index
                    for index, process in enumerate(processes)
                    if index not in reported and process.exitcode not in (None, 0)
                }
                if len(dead) > expected_failures:
                    names = [
                        getattr(processes[index], "name", f"client-{index}")
                        for index in sorted(dead)
                    ]
                    raise LoadDriverError(
                        "load client process(es) died without reporting: "
                        + ", ".join(names)
                        + (
                            f" ({len(dead)} deaths > {expected_failures} expected)"
                            if expected_failures
                            else ""
                        )
                    )
                if not any(process.is_alive() for process in processes):
                    break
            continue
        reported.add(client_index)
        samples.extend(client_samples)
    return samples


def run_load(config: DriverConfig) -> List[Sample]:
    """Run one load stage with a multi-process fleet; returns all samples.

    A worker that *crashes* (non-zero exit) fails the stage with
    :class:`~repro.common.errors.LoadDriverError`; a worker that merely
    wedges past the duration-plus-grace deadline is terminated and its
    samples lost (the stage still completes with the rest -- a hung client
    must not wedge the bench).
    """
    context = multiprocessing.get_context("spawn")
    report_queue = context.Queue()
    processes = [
        context.Process(
            target=_client_main,
            args=(index, config, report_queue),
            name=f"repro-load-client-{index}",
        )
        for index in range(config.clients)
    ]
    for process in processes:
        process.start()
    deadline = time.monotonic() + config.duration_seconds + REPORT_GRACE_SECONDS
    try:
        samples = collect_fleet_samples(
            report_queue,
            processes,
            config.clients,
            deadline,
            expected_failures=config.expected_failures,
        )
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    samples.sort(key=lambda sample: sample.start)
    return samples

"""Load generation against the simulation service (``repro loadbench``).

The package follows the classic driver split (after the hopperkv harness):

* :mod:`repro.load.workload` -- *what* to send: :class:`Req` (one request),
  :class:`ReqGenEngine` (a deterministic request stream) and
  :class:`Workload` (the named mix the engine draws from);
* :mod:`repro.load.driver` -- *how* to send it: the open-/closed-loop
  request loop and the multi-process client fleet;
* :mod:`repro.load.epoch` -- *how to measure*: epoch-based accounting with
  warmup discard, per-endpoint throughput and p50/p95/p99 latency;
* :mod:`repro.load.bench` -- the ``repro loadbench`` orchestration: ramp
  stages, the self-served (optionally sharded) server under test, the
  committed JSON artifact and its ``--gate`` checks.
"""

from repro.load.driver import DriverConfig, run_load, run_request_loop
from repro.load.epoch import EpochSeries, Sample, quantile
from repro.load.workload import Req, ReqGenEngine, Workload

__all__ = [
    "DriverConfig",
    "EpochSeries",
    "Req",
    "ReqGenEngine",
    "Sample",
    "Workload",
    "quantile",
    "run_load",
    "run_request_loop",
]

"""Epoch-based measurement: warmup discard, throughput and percentiles.

A load run is divided into fixed-length **epochs**; the first
``warmup_epochs`` are recorded but excluded from the aggregate -- they are
dominated by process startup, cold caches and the first connections, and
folding them in understates steady-state throughput while inflating tail
latency.  The aggregate ("measured") window reports, per endpoint kind,
throughput in requests/second and p50/p95/p99/max latency in milliseconds,
plus per-tenant request shares for the tenant-mix mode.

Percentiles use the inclusive linear-interpolation estimator -- identical
to ``statistics.quantiles(values, method="inclusive")`` and to
:meth:`repro.obs.metrics.Reservoir.quantile` -- so the harness's numbers
are directly comparable with the server's own summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Sample:
    """One completed request, as the driver observed it."""

    #: Request kind (``submit`` / ``health`` / ``stats``).
    kind: str
    #: Tenant the request was charged to (``None`` = server default).
    tenant: Optional[str]
    #: Seconds from the issuing client's run start to the request's issue.
    start: float
    #: End-to-end seconds (for ``submit``: until the job completed).
    latency: float
    #: Whether the request succeeded (admission rejections and transport
    #: failures are recorded, not dropped -- errors are a result).
    ok: bool


def quantile(values: Sequence[float], q: float) -> float:
    """Inclusive linearly-interpolated quantile (0.0 for an empty input).

    Matches ``statistics.quantiles(values, n=100, method="inclusive")`` at
    the corresponding cut points, and the metrics registry's
    :meth:`~repro.obs.metrics.Reservoir.quantile`.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def _latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    """The latency block of an endpoint entry, in milliseconds."""
    if not latencies:
        return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    return {
        "mean_ms": sum(latencies) / len(latencies) * 1e3,
        "p50_ms": quantile(latencies, 0.50) * 1e3,
        "p95_ms": quantile(latencies, 0.95) * 1e3,
        "p99_ms": quantile(latencies, 0.99) * 1e3,
        "max_ms": max(latencies) * 1e3,
    }


class EpochSeries:
    """Assigns samples to epochs and renders the measurement document.

    Epoch membership is by *issue* time relative to the issuing client's
    own start (clients of a fleet start within milliseconds of each other,
    so their warmup windows align to well under an epoch).  Samples issued
    past the configured window (stragglers from a client that fell behind)
    are counted in ``dropped_samples`` rather than skewing the last epoch.
    """

    def __init__(
        self, epoch_seconds: float, epochs: int, warmup_epochs: int = 1
    ) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError("epoch length must be > 0 seconds")
        if epochs <= 0:
            raise ConfigurationError("a run needs at least one epoch")
        if not 0 <= warmup_epochs < epochs:
            raise ConfigurationError(
                f"warmup epochs must be in [0, {epochs}), got {warmup_epochs}"
            )
        self.epoch_seconds = epoch_seconds
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self._buckets: List[List[Sample]] = [[] for _ in range(epochs)]
        self.dropped_samples = 0

    def add(self, sample: Sample) -> None:
        index = int(sample.start // self.epoch_seconds)
        if 0 <= index < self.epochs:
            self._buckets[index].append(sample)
        else:
            self.dropped_samples += 1

    def extend(self, samples: Sequence[Sample]) -> None:
        for sample in samples:
            self.add(sample)

    def measured_samples(self) -> List[Sample]:
        """Every sample in the post-warmup window."""
        samples: List[Sample] = []
        for bucket in self._buckets[self.warmup_epochs :]:
            samples.extend(bucket)
        return samples

    def document(self) -> Dict[str, Any]:
        """The full measurement document (the artifact's ``series`` block)."""
        per_epoch = [
            self._epoch_entry(index, bucket)
            for index, bucket in enumerate(self._buckets)
        ]
        measured = self.measured_samples()
        duration = (self.epochs - self.warmup_epochs) * self.epoch_seconds
        return {
            "epoch_seconds": self.epoch_seconds,
            "epochs": self.epochs,
            "warmup_epochs": self.warmup_epochs,
            "dropped_samples": self.dropped_samples,
            "per_epoch": per_epoch,
            "measured": self._window_entry(measured, duration),
        }

    def _epoch_entry(self, index: int, bucket: List[Sample]) -> Dict[str, Any]:
        entry = self._window_entry(bucket, self.epoch_seconds)
        entry["epoch"] = index
        entry["warmup"] = index < self.warmup_epochs
        return entry

    def _window_entry(
        self, samples: Sequence[Sample], duration: float
    ) -> Dict[str, Any]:
        """Throughput, errors, per-endpoint latency and tenant shares."""
        by_kind: Dict[str, List[Sample]] = {}
        by_tenant: Dict[str, int] = {}
        errors = 0
        for sample in samples:
            by_kind.setdefault(sample.kind, []).append(sample)
            if not sample.ok:
                errors += 1
            if sample.kind == "submit" and sample.ok:
                tenant = sample.tenant if sample.tenant is not None else "default"
                by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
        endpoints = {}
        for kind in sorted(by_kind):
            group = by_kind[kind]
            ok_latencies = [s.latency for s in group if s.ok]
            endpoints[kind] = {
                "requests": len(group),
                "errors": sum(1 for s in group if not s.ok),
                "throughput_rps": len(group) / duration if duration else 0.0,
                **_latency_summary(ok_latencies),
            }
        submit_total = sum(by_tenant.values())
        tenants = {
            tenant: {
                "completed": count,
                "share": count / submit_total if submit_total else 0.0,
            }
            for tenant, count in sorted(by_tenant.items())
        }
        return {
            "duration_seconds": duration,
            "requests": len(samples),
            "errors": errors,
            "throughput_rps": len(samples) / duration if duration else 0.0,
            "endpoints": endpoints,
            "tenants": tenants,
        }

"""Module entry point: ``python -m repro`` dispatches to the experiment CLI."""

from repro.exp.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

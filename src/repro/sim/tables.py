"""Plain-text formatters that print results in the paper's layout.

The benchmark scripts use these helpers to render the reproduced tables and
figures as aligned text so that a run of ``pytest benchmarks/`` leaves a
readable record of every regenerated artifact next to the timing numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.sim.experiments import (
    CacheSensitivityPoint,
    EnergyComparison,
    EpochSizingPoint,
    FamilySweepPoint,
    FilterAccuracyPoint,
    HighLocalityPoint,
    LocalityDistribution,
    RestrictedModelPoint,
    SpeedupRow,
    SVWPoint,
    Table2Row,
    TABLE2_COLUMNS,
)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def format_fig1(distributions: Dict[str, LocalityDistribution]) -> str:
    """Render Figure 1's coverage summary (one block per suite)."""
    lines: List[str] = ["Figure 1: decode -> address-calculation distance"]
    for label, distribution in distributions.items():
        lines.append(f"  {label}:")
        lines.append(
            "    loads : {:.1%} within first bin, p95 <= {} cycles, p99 <= {} cycles".format(
                distribution.load_fraction_within_bin,
                distribution.load_p95,
                distribution.load_p99,
            )
        )
        lines.append(
            "    stores: {:.1%} within first bin, p95 <= {} cycles, p99 <= {} cycles".format(
                distribution.store_fraction_within_bin,
                distribution.store_p95,
                distribution.store_p99,
            )
        )
    return "\n".join(lines)


def format_sec52(points: Iterable[EpochSizingPoint]) -> str:
    """Render the Section 5.2 sizing table."""
    lines = ["Section 5.2: per-epoch LSQ sizing (SPEC FP)"]
    lines.append("  LQ entries  SQ entries  mean IPC  slowdown vs unlimited")
    for point in points:
        lines.append(
            f"  {point.load_entries:<10}  {point.store_entries:<10}  "
            f"{point.mean_ipc:<8.3f}  {point.slowdown_vs_unlimited:6.2%}"
        )
    return "\n".join(lines)


def format_fig7(rows: Iterable[SpeedupRow], baseline_ipc: Dict[str, float]) -> str:
    """Render Figure 7's speed-up bars."""
    lines = ["Figure 7: speed-up over the 64-entry ROB baseline"]
    lines.append(
        "  baseline IPC: "
        + ", ".join(f"{label} {ipc:.2f}" for label, ipc in baseline_ipc.items())
    )
    for row in rows:
        speedups = ", ".join(
            f"{label} {value:.2f}x" for label, value in row.speedup_by_suite.items()
        )
        lines.append(f"  {row.machine_name:<24} {speedups}")
    return "\n".join(lines)


def format_fig8a(points: Iterable[FilterAccuracyPoint]) -> str:
    """Render Figure 8a's false-positive counts."""
    lines = ["Figure 8a: ERT false positives per 100M instructions"]
    for point in points:
        rates = ", ".join(
            f"{label} {value:,.0f}" for label, value in point.false_positives_per_100m.items()
        )
        lines.append(f"  {point.label:<12} ({point.storage_bytes} bytes/table-pair): {rates}")
    return "\n".join(lines)


def format_fig8bc(points: Iterable[CacheSensitivityPoint]) -> str:
    """Render Figure 8b/c's relative-performance grid."""
    lines = ["Figure 8b/c: relative performance vs L1 geometry"]
    by_suite: Dict[str, List[CacheSensitivityPoint]] = {}
    for point in points:
        by_suite.setdefault(point.suite_label, []).append(point)
    for suite_label, suite_points in by_suite.items():
        lines.append(f"  {suite_label}:")
        for point in suite_points:
            lines.append(
                f"    {point.ert_label:<28} {point.associativity}-way: "
                f"{point.relative_performance:.3f}"
            )
    return "\n".join(lines)


def format_fig9(points: Iterable[RestrictedModelPoint]) -> str:
    """Render Figure 9's restricted-disambiguation comparison."""
    lines = ["Figure 9: restricted disambiguation models (relative to Full)"]
    for point in points:
        values = ", ".join(
            f"{label} {value:.3f}" for label, value in point.relative_by_suite.items()
        )
        lines.append(f"  {point.model.value:<10} {values}")
    return "\n".join(lines)


def format_fig10(points: Iterable[SVWPoint]) -> str:
    """Render Figure 10's SVW re-execution study."""
    lines = ["Figure 10: SVW re-execution (relative IPC / re-executions per 100M)"]
    for point in points:
        lines.append(
            f"  {point.machine_label:<7} {point.suite_label:<9} {point.variant:<12} "
            f"{point.ssbf_bits:>2} bits: IPC {point.relative_ipc:.3f}, "
            f"re-exec {point.reexecutions_per_100m:,.0f}"
        )
    return "\n".join(lines)


def format_fig11(points: Iterable[HighLocalityPoint]) -> str:
    """Render Figure 11's high-locality-mode residency."""
    lines = ["Figure 11: LL-LSQ inactivity (high-locality mode) vs L2 size"]
    for point in points:
        values = ", ".join(
            f"{label} {value:.1%}" for label, value in point.inactivity_by_suite.items()
        )
        lines.append(f"  L2 {point.l2_mb} MB: {values}")
    return "\n".join(lines)


def format_table2(rows: Iterable[Table2Row]) -> str:
    """Render Table 2 (accesses in millions per 100M instructions)."""
    columns = list(TABLE2_COLUMNS)
    header = ["Configuration", "Suite"] + columns + ["Speed-Up"]
    widths = [16, 9] + [10] * len(columns) + [8]
    lines = ["Table 2: LSQ component accesses (millions per 100M instructions)"]
    lines.append("  " + _format_row(header, widths))
    for row in rows:
        cells = [row.config_name, row.suite_label]
        cells += [f"{row.accesses_millions[column]:.3f}" for column in columns]
        cells += [f"{row.speedup:.3f}"]
        lines.append("  " + _format_row(cells, widths))
    return "\n".join(lines)


def format_sec6(comparison: EnergyComparison) -> str:
    """Render the Section 6 energy comparison."""
    lines = ["Section 6: energy comparison"]
    lines.append(
        f"  ERT read energy / L1 read energy: {comparison.ert_vs_l1_read_ratio:.3f}"
    )
    for label in comparison.rsac_vs_svw_ert_accesses:
        lines.append(
            "  {}: RSAC/SVW ERT accesses {:.2f}, round trips {:.2f}, cache accesses {:.2f}".format(
                label,
                comparison.rsac_vs_svw_ert_accesses[label],
                comparison.rsac_vs_svw_round_trips[label],
                comparison.rsac_vs_svw_cache_accesses[label],
            )
        )
    return "\n".join(lines)


def format_family_sweep(points: Iterable[FamilySweepPoint]) -> str:
    """Render the family sensitivity sweep, one block per family."""
    lines = ["Family sweep: IPC vs epoch count / locality threshold"]
    by_family: Dict[str, List[FamilySweepPoint]] = {}
    for point in points:
        by_family.setdefault(point.family, []).append(point)
    for family, family_points in by_family.items():
        lines.append(f"  {family}:")
        for knob in ("epochs", "locality_threshold"):
            series = [point for point in family_points if point.knob == knob]
            if not series:
                continue
            lines.append(f"    {knob}:")
            for point in series:
                lines.append(
                    f"      {point.value:>5}  IPC {point.mean_ipc:6.3f}  "
                    f"migration stalls/100M {point.migration_stall_cycles_per_100m:14.0f}"
                )
    return "\n".join(lines)

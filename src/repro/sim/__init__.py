"""Simulation driver, named configurations and the experiment harness.

* :mod:`repro.sim.configs` -- the paper's named machine configurations
  (OoO-64, OoO-64-SVW, FMC-Central, FMC-Line, FMC-Hash, FMC-Hash-SVW,
  FMC-Hash-RSAC) and the parameterised builders behind them.
* :mod:`repro.sim.simulator` -- :class:`~repro.sim.simulator.Simulator` runs a
  machine over traces and suites and aggregates results.
* :mod:`repro.sim.experiments` -- one function per table / figure of the
  evaluation section.
* :mod:`repro.sim.tables` -- plain-text formatters used by the benchmarks.
"""

from repro.sim.configs import (
    LSQKind,
    MachineConfig,
    MachineKind,
    PAPER_CONFIGS,
    fmc_central,
    fmc_elsq,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    fmc_line,
    machine_by_name,
    ooo_64,
    ooo_64_svw,
)
from repro.sim.simulator import (
    DEFAULT_INSTRUCTIONS_PER_WORKLOAD,
    Simulator,
    SuiteResult,
)

# Imported last: the experiment harness builds on the simulator and on the
# orchestration layer (repro.exp.runner), which itself needs
# repro.sim.configs and repro.sim.simulator to be fully initialised.
from repro.sim.experiments import ExperimentContext, quick_context

__all__ = [
    "DEFAULT_INSTRUCTIONS_PER_WORKLOAD",
    "ExperimentContext",
    "LSQKind",
    "MachineConfig",
    "MachineKind",
    "PAPER_CONFIGS",
    "Simulator",
    "SuiteResult",
    "fmc_central",
    "fmc_elsq",
    "fmc_hash",
    "fmc_hash_rsac",
    "fmc_hash_svw",
    "fmc_line",
    "machine_by_name",
    "ooo_64",
    "ooo_64_svw",
    "quick_context",
]

"""Pluggable simulation engines: how a machine executes a trace.

A *simulation engine* is a strategy for driving one
:class:`~repro.sim.configs.MachineConfig` over one
:class:`~repro.isa.trace.Trace` and producing a
:class:`~repro.uarch.result.CoreResult`.  Two engines are registered:

* ``reference`` -- the original per-instruction walk implemented by the
  processor models themselves (:meth:`repro.uarch.ooo_core.OutOfOrderCore.run`,
  :meth:`repro.fmc.processor.FMCProcessor.run`).  This is the semantic ground
  truth; its code paths are deliberately left untouched by the optimisation
  work.
* ``fast`` -- an optimised drive loop over the *same* processor and LSQ
  objects (:mod:`repro.sim.engine.fast`): memoised region warm-up,
  preallocated ring buffers instead of per-instruction dict churn, hoisted
  configuration lookups and scalar frontier tracking.  It is required to be
  **bit-identical** to ``reference`` -- every counter, histogram bin and
  cycle count -- and ``tests/differential/`` enforces exactly that across
  workload families, suites and seeds.

The engine choice is part of a machine's identity
(:attr:`repro.sim.configs.MachineConfig.engine`), flows through the
orchestration layer into every job's content address, and is selectable from
the CLI and the service (``--engine``).
"""

from __future__ import annotations

from typing import Dict, List, Protocol, runtime_checkable

from repro.common.errors import ConfigurationError

#: Engine used when a machine does not name one explicitly.
DEFAULT_ENGINE = "fast"


@runtime_checkable
class Engine(Protocol):
    """Strategy interface: run one machine over one trace."""

    name: str

    def run(self, machine, trace):  # pragma: no cover - protocol signature
        """Simulate ``trace`` on ``machine`` and return a ``CoreResult``."""
        ...


_ENGINES: Dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Register an engine under its ``name`` (last registration wins)."""
    if not getattr(engine, "name", ""):
        raise ConfigurationError("an engine must carry a non-empty name")
    _ENGINES[engine.name] = engine
    return engine


def engine_by_name(name: str) -> Engine:
    """Resolve an engine name, raising a helpful error for unknown names."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown simulation engine {name!r}; available: {sorted(_ENGINES)}"
        ) from None


def engine_names() -> List[str]:
    """Every registered engine name, sorted (CLI choices, error messages)."""
    return sorted(_ENGINES)


# Register the built-in engines.  Imported last so the registry exists first.
from repro.sim.engine.fast import FastEngine  # noqa: E402
from repro.sim.engine.reference import ReferenceEngine  # noqa: E402

register_engine(ReferenceEngine())
register_engine(FastEngine())

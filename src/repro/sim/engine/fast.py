"""The ``fast`` engine: an optimised, bit-identical simulation drive loop.

The reference per-instruction walks (:meth:`OutOfOrderCore.run`,
:meth:`FMCProcessor.run`) are written for clarity: every structural resource
is an object with methods, every constraint a method call, every
configuration value an attribute chain.  That style costs real time in pure
Python -- profiling shows the per-cycle hot path spending most of its time in
attribute lookups, small-object churn and, above all, the functional cache
warm-up replay that precedes every timed run.

This module re-implements the *same algorithms* with the interpreter in mind:

* **Memoised region warm-up.**  The warm-up's final tag/LRU state is a pure
  function of the trace's region footprints and the cache geometry, so it is
  computed once per process (using the reference
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.warm_up_regions` code, which
  guarantees identical state) and replayed into later hierarchies as a plain
  array copy.  This removes the single largest cost of a short simulation.
* **Scalar frontier allocators.**  Fetch, commit, migration and per-engine
  issue bandwidth are requested in non-decreasing cycle order, so the
  reference allocator's per-cycle dictionary degenerates to a
  ``(cycle, used)`` pair that jumps straight to the next free cycle.
* **Preallocated ring buffers.**  Occupancy windows (ROB, load/store queues,
  the epoch pool) become fixed-size lists with a wrap index instead of
  deques, and the register scoreboard becomes a flat list indexed by
  architectural register number instead of a dictionary.
* **Hoisted configuration lookups.**  Every per-instruction attribute chain
  (``cfg.fetch_width``, ``stats.bump`` ...) is bound to a local once, outside
  the loop.

The LSQ policies, the memory hierarchy and the statistics registry are the
*same objects* the reference engine drives -- only the loop around them is
rewritten -- and the loop reproduces the reference computations expression
for expression.  ``tests/differential/`` asserts the result (every counter,
histogram bin, cycle count and derived float) is bit-identical to the
``reference`` engine across workload families, suites, seeds and fuzzed
configurations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.fmc.processor import FMCProcessor
from repro.fmc.processor import _WRONG_PATH_CAP as _FMC_WRONG_PATH_CAP
from repro.isa.instruction import NUM_ARCH_REGISTERS, InstrClass
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.ooo_core import (
    _LOCALITY_HISTOGRAM_BIN,
    _LOCALITY_HISTOGRAM_BINS,
    _VIOLATION_EXTRA_PENALTY,
    OutOfOrderCore,
)
from repro.uarch.result import CoreResult

# ----------------------------------------------------------------------
# Memoised functional cache warm-up
# ----------------------------------------------------------------------

#: (regions, l1 config, l2 config) -> captured post-warm-up cache state.
#: The warm-up never locks lines and records no statistics, so tags and LRU
#: recency order fully describe the state.
_WARM_MEMO: Dict[Tuple, Tuple] = {}
_WARM_MEMO_LIMIT = 32


def clear_warm_memo() -> None:
    """Drop the per-process warm-up memo.

    Cold-start timing harnesses call this (next to
    :func:`repro.exp.runner.clear_trace_memo`) so a measured run pays the
    full warm-up computation instead of reusing a previous run's state.
    """
    _WARM_MEMO.clear()


def _capture_cache(cache) -> Tuple:
    return (
        tuple(tuple(row) for row in cache._tags),
        tuple(tuple(lru._order) for lru in cache._lru),
    )


def _restore_cache(cache, state: Tuple) -> None:
    tags, orders = state
    cache._tags = [list(row) for row in tags]
    lrus = cache._lru
    for index, order in enumerate(orders):
        lrus[index]._order = list(order)


def warm_hierarchy(hierarchy: MemoryHierarchy, regions) -> None:
    """Bring ``hierarchy`` to the post-warm-up state for ``regions``.

    The first request for a (regions, geometry) pair runs the reference
    warm-up -- so the resulting state is identical by construction -- and
    captures the outcome; later requests restore the captured arrays into the
    fresh hierarchy, skipping the replay entirely.
    """
    key = (regions, hierarchy.config.l1, hierarchy.config.l2)
    state = _WARM_MEMO.get(key)
    if state is None:
        hierarchy.warm_up_regions(regions)
        if len(_WARM_MEMO) >= _WARM_MEMO_LIMIT:
            _WARM_MEMO.clear()
        _WARM_MEMO[key] = (_capture_cache(hierarchy.l1), _capture_cache(hierarchy.l2))
        return
    _restore_cache(hierarchy.l1, state[0])
    _restore_cache(hierarchy.l2, state[1])


# ----------------------------------------------------------------------
# Fast drive loop: conventional out-of-order core
# ----------------------------------------------------------------------


def run_ooo_fast(core: OutOfOrderCore, trace: Trace) -> CoreResult:
    """Drive ``core`` over ``trace`` -- bit-identical to ``core.run(trace)``."""
    cfg = core.config
    stats = core.stats
    policy = core.policy
    if core.warm_caches and trace.regions:
        warm_hierarchy(core.hierarchy, trace.regions)
    load_hist = stats.histogram(
        "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    store_hist = stats.histogram(
        "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    record_load_hist = load_hist.record
    record_store_hist = store_hist.record
    bump = stats.bump
    load_issued = policy.load_issued
    store_issued = policy.store_issued
    load_committed = policy.load_committed
    store_committed = policy.store_committed

    fetch_width = cfg.fetch_width
    issue_width = cfg.issue_width
    commit_width = cfg.commit_width
    ports_width = core.hierarchy.config.cache_ports
    decode_latency = cfg.decode_latency
    branch_latency = cfg.branch_latency
    int_alu_latency = cfg.int_alu_latency
    fp_alu_latency = cfg.fp_alu_latency
    mispredict_penalty = cfg.branch_mispredict_penalty
    rob_cap = cfg.rob_size

    LOAD = InstrClass.LOAD
    STORE = InstrClass.STORE
    BRANCH = InstrClass.BRANCH
    FP_ALU = InstrClass.FP_ALU
    HIGH = Locality.HIGH

    # Scalar frontier allocators (fetch/commit requests are non-decreasing).
    fetch_cur, fetch_used = -1, 0
    commit_cur, commit_used = -1, 0
    # Demand-keyed allocators (issue order follows operand readiness).
    issue_used: Dict[int, int] = {}
    ports_used: Dict[int, int] = {}
    # Preallocated ring buffers replacing the occupancy-window deques.
    rob_buf = [0] * rob_cap
    rob_n = rob_i = 0
    lq_cap = cfg.load_queue_entries
    lq_buf = [0] * lq_cap
    lq_n = lq_i = 0
    sq_cap = cfg.store_queue_entries
    sq_buf = [0] * sq_cap
    sq_n = sq_i = 0

    regs = [0] * NUM_ARCH_REGISTERS
    fetch_frontier = 0
    commit_frontier = 0
    fetch_resume_cycle = 0
    num_loads = 0
    num_stores = 0
    wrong_path_estimate = 0.0
    last_commit_cycle = 0

    for instruction in trace:
        iclass = instruction.iclass
        is_load = iclass is LOAD
        is_store = iclass is STORE

        # ---------------- fetch / decode ----------------
        desired = fetch_resume_cycle
        if fetch_frontier > desired:
            desired = fetch_frontier
        constraint = rob_buf[rob_i] if rob_n == rob_cap else 0
        if constraint > desired:
            desired = constraint
        if is_load:
            constraint = lq_buf[lq_i] if lq_n == lq_cap else 0
            if constraint > desired:
                desired = constraint
        elif is_store:
            constraint = sq_buf[sq_i] if sq_n == sq_cap else 0
            if constraint > desired:
                desired = constraint
        if desired > fetch_cur:
            fetch_cur, fetch_used = desired, 1
        elif fetch_used < fetch_width:
            fetch_used += 1
        else:
            fetch_cur += 1
            fetch_used = 1
        fetch_cycle = fetch_cur
        fetch_frontier = fetch_cycle
        decode_cycle = fetch_cycle + decode_latency

        # ---------------- operand readiness ----------------
        srcs = instruction.srcs
        if is_store and srcs:
            address_srcs = srcs[:-1] or srcs
            data_srcs = srcs[-1:]
        else:
            address_srcs = srcs
            data_srcs = ()
        addr_ready = decode_cycle
        for src in address_srcs:
            ready = regs[src]
            if ready > addr_ready:
                addr_ready = ready
        data_ready = addr_ready
        for src in data_srcs:
            ready = regs[src]
            if ready > data_ready:
                data_ready = ready

        # ---------------- issue and execute ----------------
        violation = False
        squash_penalty = 0
        cycle = addr_ready
        while issue_used.get(cycle, 0) >= issue_width:
            cycle += 1
        issue_used[cycle] = issue_used.get(cycle, 0) + 1
        issue_cycle = cycle
        pending_load_record: Optional[LoadRecord] = None
        if is_load:
            num_loads += 1
            cycle = issue_cycle
            while ports_used.get(cycle, 0) >= ports_width:
                cycle += 1
            ports_used[cycle] = ports_used.get(cycle, 0) + 1
            issue_cycle = cycle
            record_load_hist(issue_cycle - decode_cycle)
            pending_load_record = LoadRecord(
                seq=instruction.seq,
                address=instruction.address or 0,
                size=instruction.size,
                decode_cycle=decode_cycle,
                issue_cycle=issue_cycle,
                locality=HIGH,
            )
            outcome = load_issued(pending_load_record)
            latency = outcome.latency
            complete = issue_cycle + (latency if latency > 1 else 1)
            violation = outcome.violation
            squash_penalty = outcome.squash_penalty
        elif is_store:
            num_stores += 1
            record_store_hist(issue_cycle - decode_cycle)
            complete = issue_cycle if issue_cycle >= data_ready else data_ready
        elif iclass is BRANCH:
            complete = issue_cycle + branch_latency
        else:
            latency = instruction.latency
            if latency is None:
                latency = fp_alu_latency if iclass is FP_ALU else int_alu_latency
            complete = issue_cycle + latency

        dest = instruction.dest
        if dest is not None:
            regs[dest] = complete

        # ---------------- commit ----------------
        commit_ready = complete if complete >= commit_frontier else commit_frontier
        if commit_ready > commit_cur:
            commit_cur, commit_used = commit_ready, 1
        elif commit_used < commit_width:
            commit_used += 1
        else:
            commit_cur += 1
            commit_used = 1
        commit_cycle = commit_cur

        if is_store:
            store_record = StoreRecord(
                seq=instruction.seq,
                address=instruction.address or 0,
                size=instruction.size,
                decode_cycle=decode_cycle,
                addr_ready_cycle=issue_cycle,
                data_ready_cycle=issue_cycle if issue_cycle >= data_ready else data_ready,
                commit_cycle=commit_cycle,
                locality=HIGH,
            )
            store_outcome = store_issued(store_record)
            if store_outcome.squash_penalty > squash_penalty:
                squash_penalty = store_outcome.squash_penalty
            store_committed(store_record)
        elif pending_load_record is not None:
            pending_load_record.commit_cycle = commit_cycle
            commit_extra = load_committed(pending_load_record)
            if commit_extra.extra_latency:
                commit_cycle += commit_extra.extra_latency

        if commit_cycle > commit_frontier:
            commit_frontier = commit_cycle
        if commit_cycle > last_commit_cycle:
            last_commit_cycle = commit_cycle
        if rob_n == rob_cap:
            rob_buf[rob_i] = commit_cycle
            rob_i += 1
            if rob_i == rob_cap:
                rob_i = 0
        else:
            rob_buf[rob_n] = commit_cycle
            rob_n += 1
        if is_load:
            if lq_n == lq_cap:
                lq_buf[lq_i] = commit_cycle
                lq_i += 1
                if lq_i == lq_cap:
                    lq_i = 0
            else:
                lq_buf[lq_n] = commit_cycle
                lq_n += 1
        elif is_store:
            if sq_n == sq_cap:
                sq_buf[sq_i] = commit_cycle
                sq_i += 1
                if sq_i == sq_cap:
                    sq_i = 0
            else:
                sq_buf[sq_n] = commit_cycle
                sq_n += 1

        # ---------------- control / squash handling ----------------
        if iclass is BRANCH and instruction.mispredicted:
            resolve_cycle = complete + mispredict_penalty
            if resolve_cycle > fetch_resume_cycle:
                fetch_resume_cycle = resolve_cycle
            bump("core.branch_mispredicts")
            exposed = complete - fetch_cycle
            if exposed < 0:
                exposed = 0
            wrong_path = fetch_width * exposed
            if wrong_path > rob_cap:
                wrong_path = rob_cap
            wrong_path_estimate += wrong_path
        if violation:
            bump("core.violation_squashes")
            resume = complete + mispredict_penalty + _VIOLATION_EXTRA_PENALTY
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if squash_penalty:
            resume = issue_cycle + squash_penalty
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume

    committed = len(trace)
    total_cycles = max(1, last_commit_cycle)
    core._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
    policy.finalize(total_cycles, committed)
    stats.counter("core.cycles").add(total_cycles)
    stats.counter("core.committed_instructions").add(committed)

    return CoreResult(
        trace_name=trace.name,
        config_name=core.name,
        cycles=total_cycles,
        committed_instructions=committed,
        stats=stats.snapshot(),
    )


# ----------------------------------------------------------------------
# Fast drive loop: FMC large-window processor
# ----------------------------------------------------------------------


def run_fmc_fast(processor: FMCProcessor, trace: Trace) -> CoreResult:
    """Drive ``processor`` over ``trace`` -- bit-identical to ``processor.run``."""
    cp = processor.config.cache_processor
    me = processor.config.memory_engine
    stats = processor.stats
    policy = processor.policy
    threshold = processor.elsq_config.locality_threshold_cycles
    if processor.warm_caches and trace.regions:
        warm_hierarchy(processor.hierarchy, trace.regions)

    load_hist = stats.histogram(
        "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    store_hist = stats.histogram(
        "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    record_load_hist = load_hist.record
    record_store_hist = store_hist.record
    bump = stats.bump
    counter = stats.counter
    load_issued = policy.load_issued
    store_issued = policy.store_issued
    load_committed = policy.load_committed
    store_committed = policy.store_committed
    epoch_opened = policy.epoch_opened
    epoch_committed = policy.epoch_committed

    fetch_width = cp.fetch_width
    issue_width = cp.issue_width
    commit_width = cp.commit_width
    ports_width = processor.hierarchy.config.cache_ports
    decode_latency = cp.decode_latency
    branch_latency = cp.branch_latency
    int_alu_latency = cp.int_alu_latency
    fp_alu_latency = cp.fp_alu_latency
    mispredict_penalty = cp.branch_mispredict_penalty
    rob_cap = cp.rob_size
    me_max_instructions = me.max_instructions
    me_max_loads = me.max_loads
    me_max_stores = me.max_stores
    me_issue_width = me.issue_width
    cp_to_mp_latency = processor.config.interconnect.cp_to_mp_latency
    disambiguation = processor.elsq_config.disambiguation
    restricts_sac = disambiguation.restricts_store_address_calculation
    restricts_lac = disambiguation.restricts_load_address_calculation

    LOAD = InstrClass.LOAD
    STORE = InstrClass.STORE
    BRANCH = InstrClass.BRANCH
    FP_ALU = InstrClass.FP_ALU
    HIGH = Locality.HIGH
    LOW = Locality.LOW

    # Scalar frontier allocators (fetch / commit / migration are monotonic).
    fetch_cur, fetch_used = -1, 0
    commit_cur, commit_used = -1, 0
    migrate_cur, migrate_used = -1, 0
    # Demand-keyed allocators.
    cp_issue_used: Dict[int, int] = {}
    ports_used: Dict[int, int] = {}
    #: epoch id -> [current issue cycle, slots used, issue frontier] -- each
    #: memory engine's issue bandwidth is requested in non-decreasing order.
    epoch_issue: Dict[int, List[int]] = {}
    # Preallocated ring buffers.
    rob_buf = [0] * rob_cap
    rob_n = rob_i = 0
    hl_lq_cap = processor.elsq_config.hl_load_entries
    hl_lq_buf = [0] * hl_lq_cap
    hl_lq_n = hl_lq_i = 0
    hl_sq_cap = processor.elsq_config.hl_store_entries
    hl_sq_buf = [0] * hl_sq_cap
    hl_sq_n = hl_sq_i = 0
    pool_cap = processor.config.num_memory_engines
    pool_buf = [0] * pool_cap
    pool_n = pool_i = 0

    regs = [0] * NUM_ARCH_REGISTERS
    fetch_frontier = 0
    commit_frontier = 0
    migration_frontier = 0
    fetch_resume_cycle = 0
    migration_block_until = 0
    mp_active_until = 0
    ll_active_cycles = 0
    epoch_live_cycle_sum = 0
    next_epoch_id = 0
    # Current epoch book, inlined into scalars (None id = no open epoch).
    cur_epoch_id: Optional[int] = None
    cur_open = 0
    cur_instructions = 0
    cur_loads = 0
    cur_stores = 0
    cur_last_commit = 0
    num_loads = 0
    num_stores = 0
    wrong_path_estimate = 0.0
    last_commit_cycle = 0

    for instruction in trace:
        iclass = instruction.iclass
        is_load = iclass is LOAD
        is_store = iclass is STORE

        # ---------------- fetch / decode ----------------
        desired = fetch_resume_cycle
        if fetch_frontier > desired:
            desired = fetch_frontier
        constraint = rob_buf[rob_i] if rob_n == rob_cap else 0
        if constraint > desired:
            desired = constraint
        if is_load:
            constraint = hl_lq_buf[hl_lq_i] if hl_lq_n == hl_lq_cap else 0
            if constraint > desired:
                desired = constraint
        elif is_store:
            constraint = hl_sq_buf[hl_sq_i] if hl_sq_n == hl_sq_cap else 0
            if constraint > desired:
                desired = constraint
        if desired > fetch_cur:
            fetch_cur, fetch_used = desired, 1
        elif fetch_used < fetch_width:
            fetch_used += 1
        else:
            fetch_cur += 1
            fetch_used = 1
        fetch_cycle = fetch_cur
        fetch_frontier = fetch_cycle
        decode_cycle = fetch_cycle + decode_latency

        # ---------------- operand readiness ----------------
        srcs = instruction.srcs
        if is_store and srcs:
            address_srcs = srcs[:-1] or srcs
            data_srcs = srcs[-1:]
        else:
            address_srcs = srcs
            data_srcs = ()
        addr_ready = decode_cycle
        for src in address_srcs:
            ready = regs[src]
            if ready > addr_ready:
                addr_ready = ready
        data_ready = addr_ready
        for src in data_srcs:
            ready = regs[src]
            if ready > data_ready:
                data_ready = ready

        # ---------------- locality classification ----------------
        low_locality = addr_ready - decode_cycle > threshold
        migrates = decode_cycle < mp_active_until or low_locality

        # ---------------- epoch assignment / migration ----------------
        epoch_id: Optional[int] = None
        migration_cycle: Optional[int] = None
        if migrates:
            if (
                cur_epoch_id is None
                or cur_instructions >= me_max_instructions
                or (is_load and cur_loads >= me_max_loads)
                or (is_store and cur_stores >= me_max_stores)
            ):
                if cur_epoch_id is not None:
                    epoch_commit = cur_last_commit if cur_last_commit >= cur_open else cur_open
                    if pool_n == pool_cap:
                        pool_buf[pool_i] = epoch_commit
                        pool_i += 1
                        if pool_i == pool_cap:
                            pool_i = 0
                    else:
                        pool_buf[pool_n] = epoch_commit
                        pool_n += 1
                    epoch_committed(cur_epoch_id, epoch_commit)
                    epoch_live_cycle_sum += epoch_commit - cur_open
                pool_ready = pool_buf[pool_i] if pool_n == pool_cap else 0
                if pool_ready > decode_cycle:
                    counter("fmc.migration_stall_cycles").add(pool_ready - decode_cycle)
                    bump("fmc.migration_stalls")
                cur_epoch_id = next_epoch_id
                cur_open = decode_cycle if decode_cycle >= pool_ready else pool_ready
                cur_instructions = 0
                cur_loads = 0
                cur_stores = 0
                cur_last_commit = 0
                epoch_opened(cur_epoch_id, cur_open)
                next_epoch_id += 1
            epoch_id = cur_epoch_id
            migration_desired = decode_cycle + cp_to_mp_latency
            if migration_frontier > migration_desired:
                migration_desired = migration_frontier
            if cur_open > migration_desired:
                migration_desired = cur_open
            if (is_load or is_store) and migration_block_until > migration_desired:
                migration_desired = migration_block_until
            if migration_desired > migrate_cur:
                migrate_cur, migrate_used = migration_desired, 1
            elif migrate_used < fetch_width:
                migrate_used += 1
            else:
                migrate_cur += 1
                migrate_used = 1
            migration_cycle = migrate_cur
            migration_frontier = migration_cycle
            cur_instructions += 1
            if is_load:
                cur_loads += 1
            elif is_store:
                cur_stores += 1
            bump("fmc.migrated_instructions")

            if low_locality and is_store and restricts_sac:
                if addr_ready > migration_block_until:
                    migration_block_until = addr_ready
                bump("fmc.rsac_migration_blocks")
            if low_locality and is_load and restricts_lac:
                if addr_ready > migration_block_until:
                    migration_block_until = addr_ready
                bump("fmc.rlac_migration_blocks")

        # ---------------- issue and execute ----------------
        violation = False
        squash_penalty = 0
        insertion_stall = 0
        pending_load_record: Optional[LoadRecord] = None

        if low_locality and epoch_id is not None:
            engine = epoch_issue.get(epoch_id)
            if engine is None:
                engine = [-1, 0, 0]
                epoch_issue[epoch_id] = engine
            base = addr_ready
            migration_base = migration_cycle or addr_ready
            if migration_base > base:
                base = migration_base
            if engine[2] > base:
                base = engine[2]
            if base > engine[0]:
                engine[0] = base
                engine[1] = 1
            elif engine[1] < me_issue_width:
                engine[1] += 1
            else:
                engine[0] += 1
                engine[1] = 1
            issue_cycle = engine[0]
            engine[2] = issue_cycle
        else:
            cycle = addr_ready
            while cp_issue_used.get(cycle, 0) >= issue_width:
                cycle += 1
            cp_issue_used[cycle] = cp_issue_used.get(cycle, 0) + 1
            issue_cycle = cycle
            if is_load:
                cycle = issue_cycle
                while ports_used.get(cycle, 0) >= ports_width:
                    cycle += 1
                ports_used[cycle] = ports_used.get(cycle, 0) + 1
                issue_cycle = cycle

        if is_load:
            num_loads += 1
            record_load_hist(issue_cycle - decode_cycle)
            pending_load_record = LoadRecord(
                seq=instruction.seq,
                address=instruction.address or 0,
                size=instruction.size,
                decode_cycle=decode_cycle,
                issue_cycle=issue_cycle,
                locality=LOW if low_locality else HIGH,
                epoch_id=epoch_id,
                migration_cycle=migration_cycle,
            )
            outcome = load_issued(pending_load_record)
            latency = outcome.latency
            complete = issue_cycle + (latency if latency > 1 else 1)
            violation = outcome.violation
            squash_penalty = outcome.squash_penalty
        elif is_store:
            num_stores += 1
            record_store_hist(issue_cycle - decode_cycle)
            complete = issue_cycle if issue_cycle >= data_ready else data_ready
        elif iclass is BRANCH:
            complete = issue_cycle + branch_latency
        else:
            latency = instruction.latency
            if latency is None:
                latency = fp_alu_latency if iclass is FP_ALU else int_alu_latency
            complete = issue_cycle + latency

        dest = instruction.dest
        if dest is not None:
            regs[dest] = complete

        # ---------------- commit ----------------
        commit_ready = complete if complete >= commit_frontier else commit_frontier
        if commit_ready > commit_cur:
            commit_cur, commit_used = commit_ready, 1
        elif commit_used < commit_width:
            commit_used += 1
        else:
            commit_cur += 1
            commit_used = 1
        commit_cycle = commit_cur

        if is_store:
            store_record = StoreRecord(
                seq=instruction.seq,
                address=instruction.address or 0,
                size=instruction.size,
                decode_cycle=decode_cycle,
                addr_ready_cycle=issue_cycle,
                data_ready_cycle=issue_cycle if issue_cycle >= data_ready else data_ready,
                commit_cycle=commit_cycle,
                locality=LOW if low_locality else HIGH,
                epoch_id=epoch_id,
                migration_cycle=migration_cycle,
            )
            store_outcome = store_issued(store_record)
            if store_outcome.squash_penalty > squash_penalty:
                squash_penalty = store_outcome.squash_penalty
            insertion_stall = store_outcome.insertion_stall
            store_committed(store_record)
        elif pending_load_record is not None:
            pending_load_record.commit_cycle = commit_cycle
            commit_extra = load_committed(pending_load_record)
            if commit_extra.extra_latency:
                commit_cycle += commit_extra.extra_latency

        if commit_cycle > commit_frontier:
            commit_frontier = commit_cycle
        if commit_cycle > last_commit_cycle:
            last_commit_cycle = commit_cycle

        cp_leave_cycle = migration_cycle if migration_cycle is not None else commit_cycle
        if rob_n == rob_cap:
            rob_buf[rob_i] = cp_leave_cycle
            rob_i += 1
            if rob_i == rob_cap:
                rob_i = 0
        else:
            rob_buf[rob_n] = cp_leave_cycle
            rob_n += 1
        if is_load:
            if hl_lq_n == hl_lq_cap:
                hl_lq_buf[hl_lq_i] = cp_leave_cycle
                hl_lq_i += 1
                if hl_lq_i == hl_lq_cap:
                    hl_lq_i = 0
            else:
                hl_lq_buf[hl_lq_n] = cp_leave_cycle
                hl_lq_n += 1
        elif is_store:
            if hl_sq_n == hl_sq_cap:
                hl_sq_buf[hl_sq_i] = cp_leave_cycle
                hl_sq_i += 1
                if hl_sq_i == hl_sq_cap:
                    hl_sq_i = 0
            else:
                hl_sq_buf[hl_sq_n] = cp_leave_cycle
                hl_sq_n += 1

        if cur_epoch_id is not None and epoch_id == cur_epoch_id:
            if commit_cycle > cur_last_commit:
                cur_last_commit = commit_cycle

        # ---------------- Memory Processor activity ----------------
        if migrates and migration_cycle is not None:
            interval_start = (
                migration_cycle if migration_cycle >= mp_active_until else mp_active_until
            )
            if commit_cycle > interval_start:
                ll_active_cycles += commit_cycle - interval_start
                mp_active_until = commit_cycle

        # ---------------- control / squash handling ----------------
        if iclass is BRANCH and instruction.mispredicted:
            resolve_cycle = complete + mispredict_penalty
            if resolve_cycle > fetch_resume_cycle:
                fetch_resume_cycle = resolve_cycle
            bump("core.branch_mispredicts")
            exposed = complete - fetch_cycle
            if exposed < 0:
                exposed = 0
            wrong_path = fetch_width * exposed
            if wrong_path > _FMC_WRONG_PATH_CAP:
                wrong_path = _FMC_WRONG_PATH_CAP
            wrong_path_estimate += wrong_path
        if violation:
            bump("core.violation_squashes")
            resume = complete + mispredict_penalty + _VIOLATION_EXTRA_PENALTY
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if squash_penalty:
            resume = issue_cycle + squash_penalty
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if insertion_stall:
            blocked = issue_cycle + insertion_stall
            if blocked > migration_block_until:
                migration_block_until = blocked

    if cur_epoch_id is not None:
        epoch_commit = cur_last_commit if cur_last_commit >= cur_open else cur_open
        if pool_n == pool_cap:
            pool_buf[pool_i] = epoch_commit
            pool_i += 1
            if pool_i == pool_cap:
                pool_i = 0
        else:
            pool_buf[pool_n] = epoch_commit
            pool_n += 1
        epoch_committed(cur_epoch_id, epoch_commit)
        epoch_live_cycle_sum += epoch_commit - cur_open

    committed = len(trace)
    total_cycles = max(1, last_commit_cycle)
    processor._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
    policy.finalize(total_cycles, committed)
    stats.counter("core.cycles").add(total_cycles)
    stats.counter("core.committed_instructions").add(committed)
    stats.counter("fmc.ll_active_cycles").add(min(ll_active_cycles, total_cycles))
    stats.counter("fmc.epochs_allocated").add(next_epoch_id)

    high_locality_fraction = 1.0 - min(ll_active_cycles, total_cycles) / total_cycles
    mean_allocated_epochs = (
        epoch_live_cycle_sum / ll_active_cycles if ll_active_cycles > 0 else 0.0
    )

    return CoreResult(
        trace_name=trace.name,
        config_name=processor.name,
        cycles=total_cycles,
        committed_instructions=committed,
        stats=stats.snapshot(),
        high_locality_fraction=high_locality_fraction,
        mean_allocated_epochs=mean_allocated_epochs,
        extra={"epochs_opened": float(next_epoch_id)},
    )


class FastEngine:
    """Optimised drive loop over the reference processor and LSQ objects."""

    name = "fast"

    def run(self, machine, trace: Trace) -> CoreResult:
        """Simulate ``trace`` on ``machine`` with the optimised loop."""
        processor = machine.build()
        if isinstance(processor, FMCProcessor):
            return run_fmc_fast(processor, trace)
        return run_ooo_fast(processor, trace)

"""The ``fast`` engine: an optimised, bit-identical simulation drive loop.

The reference per-instruction walks (:meth:`OutOfOrderCore.run`,
:meth:`FMCProcessor.run`) are written for clarity: every structural resource
is an object with methods, every constraint a method call, every
configuration value an attribute chain.  That style costs real time in pure
Python -- profiling shows the per-cycle hot path spending most of its time in
attribute lookups, small-object churn and, above all, the functional cache
warm-up replay that precedes every timed run.

This module re-implements the *same algorithms* with the interpreter in mind:

* **Columnar drive loop.**  The loop walks the trace's structure-of-arrays
  form (:meth:`~repro.isa.trace.Trace.columns`) -- typed columns of class
  codes, registers, addresses, sizes and flags -- so no per-instruction
  object is ever touched, no source tuple sliced, no attribute chain walked.
  A trace loaded from the binary container or handed over shared memory
  drives the loop without a single ``Instruction`` being materialised.
* **Analytic region warm-up.**  The functional warm-up's final tag/LRU state
  is a pure function of the trace's region footprints and the cache
  geometry.  Because the replay inserts consecutive, non-overlapping lines
  into fresh caches, that state has a closed form (each insertion lands in a
  rotating way; the final LRU stack is the tail of the insertion sequence),
  which is computed directly -- per (regions, geometry) pair, memoised per
  process -- instead of replaying hundreds of thousands of accesses.
  Overlapping footprints fall back to the reference replay, so the captured
  state is identical in every case (``tests/test_engine_selection.py``
  asserts equality against :meth:`MemoryHierarchy.warm_up_regions` across
  all paper geometries).
* **Scalar frontier allocators.**  Fetch, commit, migration and per-engine
  issue bandwidth are requested in non-decreasing cycle order, so the
  reference allocator's per-cycle dictionary degenerates to a
  ``(cycle, used)`` pair that jumps straight to the next free cycle.
* **Preallocated ring buffers.**  Occupancy windows (ROB, load/store queues,
  the epoch pool) become fixed-size lists with a wrap index instead of
  deques, and the register scoreboard becomes a flat list indexed by
  architectural register number instead of a dictionary.

The LSQ policies, the memory hierarchy and the statistics registry are the
*same objects* the reference engine drives -- only the loop around them is
rewritten -- and the loop reproduces the reference computations expression
for expression.  ``tests/differential/`` asserts the result (every counter,
histogram bin, cycle count and derived float) is bit-identical to the
``reference`` engine across workload families, suites, seeds and fuzzed
configurations.

The loops also report per-phase wall time (``build`` / ``warmup`` /
``drive``) to :mod:`repro.common.phases`, which ``repro bench`` folds into
its artifact so speed-ups stay attributable.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.common import phases
from repro.common.errors import TraceError
from repro.core.records import Locality, LoadRecord, StoreRecord
from repro.fmc.processor import FMCProcessor
from repro.fmc.processor import _WRONG_PATH_CAP as _FMC_WRONG_PATH_CAP
from repro.isa.columns import (
    CODE_BRANCH,
    CODE_FP_ALU,
    CODE_LOAD,
    CODE_STORE,
    FLAG_HAS_LATENCY,
    FLAG_MISPREDICTED,
)
from repro.isa.instruction import NUM_ARCH_REGISTERS
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.ooo_core import (
    _LOCALITY_HISTOGRAM_BIN,
    _LOCALITY_HISTOGRAM_BINS,
    _VIOLATION_EXTRA_PENALTY,
    OutOfOrderCore,
)
from repro.uarch.result import CoreResult

# ----------------------------------------------------------------------
# Memoised functional cache warm-up
# ----------------------------------------------------------------------

#: (regions, l1 config, l2 config) -> captured post-warm-up cache state.
#: The warm-up never locks lines and records no statistics, so tags plus the
#: replacement policy's own capture() snapshot fully describe the state.  The
#: cache configs in the key carry ``replacement_policy``, so each policy gets
#: its own entry.
_WARM_MEMO: Dict[Tuple, Tuple] = {}
_WARM_MEMO_LIMIT = 32


def clear_warm_memo() -> None:
    """Drop the per-process warm-up memo.

    Cold-start timing harnesses call this (next to
    :func:`repro.exp.runner.clear_trace_memo`) so a measured run pays the
    full warm-up computation instead of reusing a previous run's state.
    """
    _WARM_MEMO.clear()


def _capture_cache(cache) -> Tuple:
    return (
        tuple(tuple(row) for row in cache._tags),
        tuple(policy.capture() for policy in cache._lru),
    )


def _restore_cache(cache, state: Tuple) -> None:
    tags, snapshots = state
    cache._tags = [list(row) for row in tags]
    policies = cache._lru
    for index, snapshot in enumerate(snapshots):
        policies[index].restore(snapshot)


def _warm_line_ranges(footprints, cache_config) -> List[Tuple[int, int]]:
    """The (first line, line count) each footprint inserts at this geometry.

    Mirrors the fill arithmetic of
    :meth:`~repro.memory.hierarchy.MemoryHierarchy.warm_up_regions`: a region
    replays its *last* ``min(region lines, cache lines)`` lines, which form a
    run of consecutive line numbers regardless of base-address alignment.
    """
    line_size = cache_config.line_size
    capacity_lines = cache_config.num_lines
    shift = line_size.bit_length() - 1
    ranges = []
    for region in footprints:
        lines_in_region = max(1, region.size_bytes // line_size)
        fill_lines = min(lines_in_region, capacity_lines)
        start = region.base_address + (lines_in_region - fill_lines) * line_size
        ranges.append((start >> shift, fill_lines))
    return ranges


def _warm_cache_state(footprints, cache_config) -> Optional[Tuple]:
    """Compute one level's post-warm-up (tags, LRU orders) in closed form.

    The warm-up inserts each footprint's lines in consecutive order into a
    fresh, lock-free cache.  When no line is inserted twice, the replay has
    a closed form: the ``j``-th insertion into a set lands in way
    ``assoc - 1 - (j % assoc)`` (a fresh LRU stack hands out ways from the
    top down, then cycles), so the final tags and recency stack of every set
    are determined by the tail of its insertion sequence -- and each set's
    insertion sequence is a concatenation of arithmetic progressions (one
    per footprint, stride ``num_sets``), so the tail is computed directly.

    Returns ``None`` when footprints' line ranges overlap (re-inserted lines
    would hit instead of allocate) or when the level runs a non-LRU
    replacement policy (the closed form encodes the LRU stack's way-handout
    order); the caller then falls back to the reference replay, which is
    exact for every policy.
    """
    if cache_config.replacement_policy != "lru":
        return None
    ranges = _warm_line_ranges(footprints, cache_config)
    spans = sorted((first, first + count) for first, count in ranges)
    for (_a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
        if b_start < a_end:
            return None

    num_sets = cache_config.num_sets
    assoc = cache_config.associativity
    num_ranges = len(ranges)
    tags: List[Tuple] = []
    orders: List[Tuple] = []
    counts = [0] * num_ranges
    for set_index in range(num_sets):
        inserted = 0
        for index in range(num_ranges):
            first_line, fill = ranges[index]
            offset = (set_index - first_line) % num_sets
            if offset < fill:
                count = (fill - offset - 1) // num_sets + 1
            else:
                count = 0
            counts[index] = count
            inserted += count
        want = assoc if inserted >= assoc else inserted
        # The last `want` lines inserted into this set, newest first.
        tail: List[int] = []
        for index in range(num_ranges - 1, -1, -1):
            count = counts[index]
            if not count:
                continue
            if len(tail) >= want:
                break
            first_line, _fill = ranges[index]
            offset = (set_index - first_line) % num_sets
            newest = first_line + offset + (count - 1) * num_sets
            take = want - len(tail)
            if take > count:
                take = count
            for step in range(take):
                tail.append(newest - step * num_sets)
        row: List[Optional[int]] = [None] * assoc
        order: List[int] = []
        for position in range(want):
            insertion = inserted - 1 - position
            way = assoc - 1 - (insertion % assoc)
            order.append(way)
            row[way] = tail[position]
        if inserted < assoc:
            # Untouched ways keep their original (ascending) recency order.
            order.extend(range(assoc - inserted))
        tags.append(tuple(row))
        orders.append(tuple(order))
    return tuple(tags), tuple(orders)


def _compute_warm_state(hierarchy: MemoryHierarchy, regions) -> Tuple:
    """The memoised (l1 state, l2 state) pair for one (regions, geometry) key."""
    footprints = sorted(regions, key=lambda region: region.access_density)
    config = hierarchy.config
    l1_state = _warm_cache_state(footprints, config.l1)
    l2_state = _warm_cache_state(footprints, config.l2)
    if l1_state is not None and l2_state is not None:
        return l1_state, l2_state
    # Overlapping footprints: replay the reference warm-up into a scratch
    # hierarchy and capture its state, which is identical by construction.
    scratch = MemoryHierarchy(config)
    scratch.warm_up_regions(regions)
    return _capture_cache(scratch.l1), _capture_cache(scratch.l2)


def warm_hierarchy(hierarchy: MemoryHierarchy, regions) -> None:
    """Bring ``hierarchy`` to the post-warm-up state for ``regions``.

    The first request for a (regions, geometry) pair computes the closed-form
    warm state (or, for overlapping footprints, captures a reference replay)
    and memoises it; every request restores the state into the fresh
    hierarchy as a plain array copy, skipping the replay entirely.
    """
    key = (regions, hierarchy.config.l1, hierarchy.config.l2)
    state = _WARM_MEMO.get(key)
    if state is None:
        state = _compute_warm_state(hierarchy, regions)
        if len(_WARM_MEMO) >= _WARM_MEMO_LIMIT:
            _WARM_MEMO.clear()
        _WARM_MEMO[key] = state
    _restore_cache(hierarchy.l1, state[0])
    _restore_cache(hierarchy.l2, state[1])


# ----------------------------------------------------------------------
# Fast drive loop: conventional out-of-order core
# ----------------------------------------------------------------------


def run_ooo_fast(core: OutOfOrderCore, trace: Trace) -> CoreResult:
    """Drive ``core`` over ``trace`` -- bit-identical to ``core.run(trace)``."""
    cfg = core.config
    stats = core.stats
    policy = core.policy
    warm_started = perf_counter()
    if core.warm_caches and trace.regions:
        warm_hierarchy(core.hierarchy, trace.regions)
    drive_started = perf_counter()
    phases.add("warmup", drive_started - warm_started)
    load_hist = stats.histogram(
        "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    store_hist = stats.histogram(
        "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    record_load_hist = load_hist.record
    record_store_hist = store_hist.record
    bump = stats.bump
    load_issued = policy.load_issued
    store_issued = policy.store_issued
    load_committed = policy.load_committed
    store_committed = policy.store_committed

    fetch_width = cfg.fetch_width
    issue_width = cfg.issue_width
    commit_width = cfg.commit_width
    ports_width = core.hierarchy.config.cache_ports
    decode_latency = cfg.decode_latency
    branch_latency = cfg.branch_latency
    int_alu_latency = cfg.int_alu_latency
    fp_alu_latency = cfg.fp_alu_latency
    mispredict_penalty = cfg.branch_mispredict_penalty
    rob_cap = cfg.rob_size

    columns = trace.columns()
    iclass_col = columns.iclass
    dest_col = columns.dest
    src0_col = columns.src0
    src1_col = columns.src1
    src2_col = columns.src2
    src3_col = columns.src3
    addr_col = columns.address
    size_col = columns.size
    flags_col = columns.flags
    latency_col = columns.latency

    LOAD = CODE_LOAD
    STORE = CODE_STORE
    BRANCH = CODE_BRANCH
    FP_ALU = CODE_FP_ALU
    MISPREDICTED = FLAG_MISPREDICTED
    HAS_LATENCY = FLAG_HAS_LATENCY
    HIGH = Locality.HIGH

    # Scalar frontier allocators (fetch/commit requests are non-decreasing).
    fetch_cur, fetch_used = -1, 0
    commit_cur, commit_used = -1, 0
    # Demand-keyed allocators (issue order follows operand readiness).
    issue_used: Dict[int, int] = {}
    ports_used: Dict[int, int] = {}
    # Preallocated ring buffers replacing the occupancy-window deques.
    rob_buf = [0] * rob_cap
    rob_n = rob_i = 0
    lq_cap = cfg.load_queue_entries
    lq_buf = [0] * lq_cap
    lq_n = lq_i = 0
    sq_cap = cfg.store_queue_entries
    sq_buf = [0] * sq_cap
    sq_n = sq_i = 0

    regs = [0] * NUM_ARCH_REGISTERS
    fetch_frontier = 0
    commit_frontier = 0
    fetch_resume_cycle = 0
    num_loads = 0
    num_stores = 0
    wrong_path_estimate = 0.0
    last_commit_cycle = 0

    for seq in range(len(iclass_col)):
        code = iclass_col[seq]
        is_load = code == LOAD
        is_store = code == STORE

        # ---------------- fetch / decode ----------------
        desired = fetch_resume_cycle
        if fetch_frontier > desired:
            desired = fetch_frontier
        constraint = rob_buf[rob_i] if rob_n == rob_cap else 0
        if constraint > desired:
            desired = constraint
        if is_load:
            constraint = lq_buf[lq_i] if lq_n == lq_cap else 0
            if constraint > desired:
                desired = constraint
        elif is_store:
            constraint = sq_buf[sq_i] if sq_n == sq_cap else 0
            if constraint > desired:
                desired = constraint
        if desired > fetch_cur:
            fetch_cur, fetch_used = desired, 1
        elif fetch_used < fetch_width:
            fetch_used += 1
        else:
            fetch_cur += 1
            fetch_used = 1
        fetch_cycle = fetch_cur
        fetch_frontier = fetch_cycle
        decode_cycle = fetch_cycle + decode_latency

        # ---------------- operand readiness ----------------
        # Sources are left-packed columns with -1 padding.  A store's last
        # source is its data operand; a single-source store uses that source
        # as both address and data (matching ``srcs[:-1] or srcs``).
        s0 = src0_col[seq]
        addr_ready = decode_cycle
        if is_store:
            s1 = src1_col[seq]
            if s1 < 0:
                if s0 >= 0:
                    ready = regs[s0]
                    if ready > addr_ready:
                        addr_ready = ready
                data_ready = addr_ready
            else:
                ready = regs[s0]
                if ready > addr_ready:
                    addr_ready = ready
                s2 = src2_col[seq]
                if s2 < 0:
                    data_src = s1
                else:
                    ready = regs[s1]
                    if ready > addr_ready:
                        addr_ready = ready
                    s3 = src3_col[seq]
                    if s3 < 0:
                        data_src = s2
                    else:
                        ready = regs[s2]
                        if ready > addr_ready:
                            addr_ready = ready
                        data_src = s3
                data_ready = regs[data_src]
                if data_ready < addr_ready:
                    data_ready = addr_ready
        else:
            if s0 >= 0:
                ready = regs[s0]
                if ready > addr_ready:
                    addr_ready = ready
                s1 = src1_col[seq]
                if s1 >= 0:
                    ready = regs[s1]
                    if ready > addr_ready:
                        addr_ready = ready
                    s2 = src2_col[seq]
                    if s2 >= 0:
                        ready = regs[s2]
                        if ready > addr_ready:
                            addr_ready = ready
                        s3 = src3_col[seq]
                        if s3 >= 0:
                            ready = regs[s3]
                            if ready > addr_ready:
                                addr_ready = ready
            data_ready = addr_ready

        # ---------------- issue and execute ----------------
        violation = False
        squash_penalty = 0
        cycle = addr_ready
        while issue_used.get(cycle, 0) >= issue_width:
            cycle += 1
        issue_used[cycle] = issue_used.get(cycle, 0) + 1
        issue_cycle = cycle
        pending_load_record: Optional[LoadRecord] = None
        if is_load:
            num_loads += 1
            cycle = issue_cycle
            while ports_used.get(cycle, 0) >= ports_width:
                cycle += 1
            ports_used[cycle] = ports_used.get(cycle, 0) + 1
            issue_cycle = cycle
            record_load_hist(issue_cycle - decode_cycle)
            pending_load_record = LoadRecord(
                seq=seq,
                address=addr_col[seq],
                size=size_col[seq],
                decode_cycle=decode_cycle,
                issue_cycle=issue_cycle,
                locality=HIGH,
            )
            outcome = load_issued(pending_load_record)
            latency = outcome.latency
            complete = issue_cycle + (latency if latency > 1 else 1)
            violation = outcome.violation
            squash_penalty = outcome.squash_penalty
        elif is_store:
            num_stores += 1
            record_store_hist(issue_cycle - decode_cycle)
            complete = issue_cycle if issue_cycle >= data_ready else data_ready
        elif code == BRANCH:
            complete = issue_cycle + branch_latency
        else:
            if flags_col[seq] & HAS_LATENCY:
                latency = latency_col[seq]
            else:
                latency = fp_alu_latency if code == FP_ALU else int_alu_latency
            complete = issue_cycle + latency

        dest = dest_col[seq]
        if dest >= 0:
            regs[dest] = complete

        # ---------------- commit ----------------
        commit_ready = complete if complete >= commit_frontier else commit_frontier
        if commit_ready > commit_cur:
            commit_cur, commit_used = commit_ready, 1
        elif commit_used < commit_width:
            commit_used += 1
        else:
            commit_cur += 1
            commit_used = 1
        commit_cycle = commit_cur

        if is_store:
            store_record = StoreRecord(
                seq=seq,
                address=addr_col[seq],
                size=size_col[seq],
                decode_cycle=decode_cycle,
                addr_ready_cycle=issue_cycle,
                data_ready_cycle=issue_cycle if issue_cycle >= data_ready else data_ready,
                commit_cycle=commit_cycle,
                locality=HIGH,
            )
            store_outcome = store_issued(store_record)
            if store_outcome.squash_penalty > squash_penalty:
                squash_penalty = store_outcome.squash_penalty
            store_committed(store_record)
        elif pending_load_record is not None:
            pending_load_record.commit_cycle = commit_cycle
            commit_extra = load_committed(pending_load_record)
            if commit_extra.extra_latency:
                commit_cycle += commit_extra.extra_latency

        if commit_cycle > commit_frontier:
            commit_frontier = commit_cycle
        if commit_cycle > last_commit_cycle:
            last_commit_cycle = commit_cycle
        if rob_n == rob_cap:
            rob_buf[rob_i] = commit_cycle
            rob_i += 1
            if rob_i == rob_cap:
                rob_i = 0
        else:
            rob_buf[rob_n] = commit_cycle
            rob_n += 1
        if is_load:
            if lq_n == lq_cap:
                lq_buf[lq_i] = commit_cycle
                lq_i += 1
                if lq_i == lq_cap:
                    lq_i = 0
            else:
                lq_buf[lq_n] = commit_cycle
                lq_n += 1
        elif is_store:
            if sq_n == sq_cap:
                sq_buf[sq_i] = commit_cycle
                sq_i += 1
                if sq_i == sq_cap:
                    sq_i = 0
            else:
                sq_buf[sq_n] = commit_cycle
                sq_n += 1

        # ---------------- control / squash handling ----------------
        if code == BRANCH and flags_col[seq] & MISPREDICTED:
            resolve_cycle = complete + mispredict_penalty
            if resolve_cycle > fetch_resume_cycle:
                fetch_resume_cycle = resolve_cycle
            bump("core.branch_mispredicts")
            exposed = complete - fetch_cycle
            if exposed < 0:
                exposed = 0
            wrong_path = fetch_width * exposed
            if wrong_path > rob_cap:
                wrong_path = rob_cap
            wrong_path_estimate += wrong_path
        if violation:
            bump("core.violation_squashes")
            resume = complete + mispredict_penalty + _VIOLATION_EXTRA_PENALTY
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if squash_penalty:
            resume = issue_cycle + squash_penalty
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume

    committed = len(trace)
    total_cycles = max(1, last_commit_cycle)
    core._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
    policy.finalize(total_cycles, committed)
    stats.counter("core.cycles").add(total_cycles)
    stats.counter("core.committed_instructions").add(committed)
    phases.add("drive", perf_counter() - drive_started)

    return CoreResult(
        trace_name=trace.name,
        config_name=core.name,
        cycles=total_cycles,
        committed_instructions=committed,
        stats=stats.snapshot(),
    )


# ----------------------------------------------------------------------
# Fast drive loop: FMC large-window processor
# ----------------------------------------------------------------------


def run_fmc_fast(processor: FMCProcessor, trace: Trace) -> CoreResult:
    """Drive ``processor`` over ``trace`` -- bit-identical to ``processor.run``."""
    cp = processor.config.cache_processor
    me = processor.config.memory_engine
    stats = processor.stats
    policy = processor.policy
    threshold = processor.elsq_config.locality_threshold_cycles
    warm_started = perf_counter()
    if processor.warm_caches and trace.regions:
        warm_hierarchy(processor.hierarchy, trace.regions)
    drive_started = perf_counter()
    phases.add("warmup", drive_started - warm_started)

    load_hist = stats.histogram(
        "decode_to_address.loads", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    store_hist = stats.histogram(
        "decode_to_address.stores", _LOCALITY_HISTOGRAM_BIN, _LOCALITY_HISTOGRAM_BINS
    )
    record_load_hist = load_hist.record
    record_store_hist = store_hist.record
    bump = stats.bump
    counter = stats.counter
    load_issued = policy.load_issued
    store_issued = policy.store_issued
    load_committed = policy.load_committed
    store_committed = policy.store_committed
    epoch_opened = policy.epoch_opened
    epoch_committed = policy.epoch_committed

    fetch_width = cp.fetch_width
    issue_width = cp.issue_width
    commit_width = cp.commit_width
    ports_width = processor.hierarchy.config.cache_ports
    decode_latency = cp.decode_latency
    branch_latency = cp.branch_latency
    int_alu_latency = cp.int_alu_latency
    fp_alu_latency = cp.fp_alu_latency
    mispredict_penalty = cp.branch_mispredict_penalty
    rob_cap = cp.rob_size
    me_max_instructions = me.max_instructions
    me_max_loads = me.max_loads
    me_max_stores = me.max_stores
    me_issue_width = me.issue_width
    cp_to_mp_latency = processor.config.interconnect.cp_to_mp_latency
    disambiguation = processor.elsq_config.disambiguation
    restricts_sac = disambiguation.restricts_store_address_calculation
    restricts_lac = disambiguation.restricts_load_address_calculation

    columns = trace.columns()
    iclass_col = columns.iclass
    dest_col = columns.dest
    src0_col = columns.src0
    src1_col = columns.src1
    src2_col = columns.src2
    src3_col = columns.src3
    addr_col = columns.address
    size_col = columns.size
    flags_col = columns.flags
    latency_col = columns.latency

    LOAD = CODE_LOAD
    STORE = CODE_STORE
    BRANCH = CODE_BRANCH
    FP_ALU = CODE_FP_ALU
    MISPREDICTED = FLAG_MISPREDICTED
    HAS_LATENCY = FLAG_HAS_LATENCY
    HIGH = Locality.HIGH
    LOW = Locality.LOW

    # Scalar frontier allocators (fetch / commit / migration are monotonic).
    fetch_cur, fetch_used = -1, 0
    commit_cur, commit_used = -1, 0
    migrate_cur, migrate_used = -1, 0
    # Demand-keyed allocators.
    cp_issue_used: Dict[int, int] = {}
    ports_used: Dict[int, int] = {}
    #: epoch id -> [current issue cycle, slots used, issue frontier] -- each
    #: memory engine's issue bandwidth is requested in non-decreasing order.
    epoch_issue: Dict[int, List[int]] = {}
    # Preallocated ring buffers.
    rob_buf = [0] * rob_cap
    rob_n = rob_i = 0
    hl_lq_cap = processor.elsq_config.hl_load_entries
    hl_lq_buf = [0] * hl_lq_cap
    hl_lq_n = hl_lq_i = 0
    hl_sq_cap = processor.elsq_config.hl_store_entries
    hl_sq_buf = [0] * hl_sq_cap
    hl_sq_n = hl_sq_i = 0
    pool_cap = processor.config.num_memory_engines
    pool_buf = [0] * pool_cap
    pool_n = pool_i = 0

    regs = [0] * NUM_ARCH_REGISTERS
    fetch_frontier = 0
    commit_frontier = 0
    migration_frontier = 0
    fetch_resume_cycle = 0
    migration_block_until = 0
    mp_active_until = 0
    ll_active_cycles = 0
    epoch_live_cycle_sum = 0
    next_epoch_id = 0
    # Current epoch book, inlined into scalars (None id = no open epoch).
    cur_epoch_id: Optional[int] = None
    cur_open = 0
    cur_instructions = 0
    cur_loads = 0
    cur_stores = 0
    cur_last_commit = 0
    num_loads = 0
    num_stores = 0
    wrong_path_estimate = 0.0
    last_commit_cycle = 0

    for seq in range(len(iclass_col)):
        code = iclass_col[seq]
        is_load = code == LOAD
        is_store = code == STORE

        # ---------------- fetch / decode ----------------
        desired = fetch_resume_cycle
        if fetch_frontier > desired:
            desired = fetch_frontier
        constraint = rob_buf[rob_i] if rob_n == rob_cap else 0
        if constraint > desired:
            desired = constraint
        if is_load:
            constraint = hl_lq_buf[hl_lq_i] if hl_lq_n == hl_lq_cap else 0
            if constraint > desired:
                desired = constraint
        elif is_store:
            constraint = hl_sq_buf[hl_sq_i] if hl_sq_n == hl_sq_cap else 0
            if constraint > desired:
                desired = constraint
        if desired > fetch_cur:
            fetch_cur, fetch_used = desired, 1
        elif fetch_used < fetch_width:
            fetch_used += 1
        else:
            fetch_cur += 1
            fetch_used = 1
        fetch_cycle = fetch_cur
        fetch_frontier = fetch_cycle
        decode_cycle = fetch_cycle + decode_latency

        # ---------------- operand readiness ----------------
        # Same left-packed source convention as the conventional loop.
        s0 = src0_col[seq]
        addr_ready = decode_cycle
        if is_store:
            s1 = src1_col[seq]
            if s1 < 0:
                if s0 >= 0:
                    ready = regs[s0]
                    if ready > addr_ready:
                        addr_ready = ready
                data_ready = addr_ready
            else:
                ready = regs[s0]
                if ready > addr_ready:
                    addr_ready = ready
                s2 = src2_col[seq]
                if s2 < 0:
                    data_src = s1
                else:
                    ready = regs[s1]
                    if ready > addr_ready:
                        addr_ready = ready
                    s3 = src3_col[seq]
                    if s3 < 0:
                        data_src = s2
                    else:
                        ready = regs[s2]
                        if ready > addr_ready:
                            addr_ready = ready
                        data_src = s3
                data_ready = regs[data_src]
                if data_ready < addr_ready:
                    data_ready = addr_ready
        else:
            if s0 >= 0:
                ready = regs[s0]
                if ready > addr_ready:
                    addr_ready = ready
                s1 = src1_col[seq]
                if s1 >= 0:
                    ready = regs[s1]
                    if ready > addr_ready:
                        addr_ready = ready
                    s2 = src2_col[seq]
                    if s2 >= 0:
                        ready = regs[s2]
                        if ready > addr_ready:
                            addr_ready = ready
                        s3 = src3_col[seq]
                        if s3 >= 0:
                            ready = regs[s3]
                            if ready > addr_ready:
                                addr_ready = ready
            data_ready = addr_ready

        # ---------------- locality classification ----------------
        low_locality = addr_ready - decode_cycle > threshold
        migrates = decode_cycle < mp_active_until or low_locality

        # ---------------- epoch assignment / migration ----------------
        epoch_id: Optional[int] = None
        migration_cycle: Optional[int] = None
        if migrates:
            if (
                cur_epoch_id is None
                or cur_instructions >= me_max_instructions
                or (is_load and cur_loads >= me_max_loads)
                or (is_store and cur_stores >= me_max_stores)
            ):
                if cur_epoch_id is not None:
                    epoch_commit = cur_last_commit if cur_last_commit >= cur_open else cur_open
                    if pool_n == pool_cap:
                        pool_buf[pool_i] = epoch_commit
                        pool_i += 1
                        if pool_i == pool_cap:
                            pool_i = 0
                    else:
                        pool_buf[pool_n] = epoch_commit
                        pool_n += 1
                    epoch_committed(cur_epoch_id, epoch_commit)
                    epoch_live_cycle_sum += epoch_commit - cur_open
                pool_ready = pool_buf[pool_i] if pool_n == pool_cap else 0
                if pool_ready > decode_cycle:
                    counter("fmc.migration_stall_cycles").add(pool_ready - decode_cycle)
                    bump("fmc.migration_stalls")
                cur_epoch_id = next_epoch_id
                cur_open = decode_cycle if decode_cycle >= pool_ready else pool_ready
                cur_instructions = 0
                cur_loads = 0
                cur_stores = 0
                cur_last_commit = 0
                epoch_opened(cur_epoch_id, cur_open)
                next_epoch_id += 1
            epoch_id = cur_epoch_id
            migration_desired = decode_cycle + cp_to_mp_latency
            if migration_frontier > migration_desired:
                migration_desired = migration_frontier
            if cur_open > migration_desired:
                migration_desired = cur_open
            if (is_load or is_store) and migration_block_until > migration_desired:
                migration_desired = migration_block_until
            if migration_desired > migrate_cur:
                migrate_cur, migrate_used = migration_desired, 1
            elif migrate_used < fetch_width:
                migrate_used += 1
            else:
                migrate_cur += 1
                migrate_used = 1
            migration_cycle = migrate_cur
            migration_frontier = migration_cycle
            cur_instructions += 1
            if is_load:
                cur_loads += 1
            elif is_store:
                cur_stores += 1
            bump("fmc.migrated_instructions")

            if low_locality and is_store and restricts_sac:
                if addr_ready > migration_block_until:
                    migration_block_until = addr_ready
                bump("fmc.rsac_migration_blocks")
            if low_locality and is_load and restricts_lac:
                if addr_ready > migration_block_until:
                    migration_block_until = addr_ready
                bump("fmc.rlac_migration_blocks")

        # ---------------- issue and execute ----------------
        violation = False
        squash_penalty = 0
        insertion_stall = 0
        pending_load_record: Optional[LoadRecord] = None

        if low_locality and epoch_id is not None:
            engine = epoch_issue.get(epoch_id)
            if engine is None:
                engine = [-1, 0, 0]
                epoch_issue[epoch_id] = engine
            base = addr_ready
            migration_base = migration_cycle or addr_ready
            if migration_base > base:
                base = migration_base
            if engine[2] > base:
                base = engine[2]
            if base > engine[0]:
                engine[0] = base
                engine[1] = 1
            elif engine[1] < me_issue_width:
                engine[1] += 1
            else:
                engine[0] += 1
                engine[1] = 1
            issue_cycle = engine[0]
            engine[2] = issue_cycle
        else:
            cycle = addr_ready
            while cp_issue_used.get(cycle, 0) >= issue_width:
                cycle += 1
            cp_issue_used[cycle] = cp_issue_used.get(cycle, 0) + 1
            issue_cycle = cycle
            if is_load:
                cycle = issue_cycle
                while ports_used.get(cycle, 0) >= ports_width:
                    cycle += 1
                ports_used[cycle] = ports_used.get(cycle, 0) + 1
                issue_cycle = cycle

        if is_load:
            num_loads += 1
            record_load_hist(issue_cycle - decode_cycle)
            pending_load_record = LoadRecord(
                seq=seq,
                address=addr_col[seq],
                size=size_col[seq],
                decode_cycle=decode_cycle,
                issue_cycle=issue_cycle,
                locality=LOW if low_locality else HIGH,
                epoch_id=epoch_id,
                migration_cycle=migration_cycle,
            )
            outcome = load_issued(pending_load_record)
            latency = outcome.latency
            complete = issue_cycle + (latency if latency > 1 else 1)
            violation = outcome.violation
            squash_penalty = outcome.squash_penalty
        elif is_store:
            num_stores += 1
            record_store_hist(issue_cycle - decode_cycle)
            complete = issue_cycle if issue_cycle >= data_ready else data_ready
        elif code == BRANCH:
            complete = issue_cycle + branch_latency
        else:
            if flags_col[seq] & HAS_LATENCY:
                latency = latency_col[seq]
            else:
                latency = fp_alu_latency if code == FP_ALU else int_alu_latency
            complete = issue_cycle + latency

        dest = dest_col[seq]
        if dest >= 0:
            regs[dest] = complete

        # ---------------- commit ----------------
        commit_ready = complete if complete >= commit_frontier else commit_frontier
        if commit_ready > commit_cur:
            commit_cur, commit_used = commit_ready, 1
        elif commit_used < commit_width:
            commit_used += 1
        else:
            commit_cur += 1
            commit_used = 1
        commit_cycle = commit_cur

        if is_store:
            store_record = StoreRecord(
                seq=seq,
                address=addr_col[seq],
                size=size_col[seq],
                decode_cycle=decode_cycle,
                addr_ready_cycle=issue_cycle,
                data_ready_cycle=issue_cycle if issue_cycle >= data_ready else data_ready,
                commit_cycle=commit_cycle,
                locality=LOW if low_locality else HIGH,
                epoch_id=epoch_id,
                migration_cycle=migration_cycle,
            )
            store_outcome = store_issued(store_record)
            if store_outcome.squash_penalty > squash_penalty:
                squash_penalty = store_outcome.squash_penalty
            insertion_stall = store_outcome.insertion_stall
            store_committed(store_record)
        elif pending_load_record is not None:
            pending_load_record.commit_cycle = commit_cycle
            commit_extra = load_committed(pending_load_record)
            if commit_extra.extra_latency:
                commit_cycle += commit_extra.extra_latency

        if commit_cycle > commit_frontier:
            commit_frontier = commit_cycle
        if commit_cycle > last_commit_cycle:
            last_commit_cycle = commit_cycle

        cp_leave_cycle = migration_cycle if migration_cycle is not None else commit_cycle
        if rob_n == rob_cap:
            rob_buf[rob_i] = cp_leave_cycle
            rob_i += 1
            if rob_i == rob_cap:
                rob_i = 0
        else:
            rob_buf[rob_n] = cp_leave_cycle
            rob_n += 1
        if is_load:
            if hl_lq_n == hl_lq_cap:
                hl_lq_buf[hl_lq_i] = cp_leave_cycle
                hl_lq_i += 1
                if hl_lq_i == hl_lq_cap:
                    hl_lq_i = 0
            else:
                hl_lq_buf[hl_lq_n] = cp_leave_cycle
                hl_lq_n += 1
        elif is_store:
            if hl_sq_n == hl_sq_cap:
                hl_sq_buf[hl_sq_i] = cp_leave_cycle
                hl_sq_i += 1
                if hl_sq_i == hl_sq_cap:
                    hl_sq_i = 0
            else:
                hl_sq_buf[hl_sq_n] = cp_leave_cycle
                hl_sq_n += 1

        if cur_epoch_id is not None and epoch_id == cur_epoch_id:
            if commit_cycle > cur_last_commit:
                cur_last_commit = commit_cycle

        # ---------------- Memory Processor activity ----------------
        if migrates and migration_cycle is not None:
            interval_start = (
                migration_cycle if migration_cycle >= mp_active_until else mp_active_until
            )
            if commit_cycle > interval_start:
                ll_active_cycles += commit_cycle - interval_start
                mp_active_until = commit_cycle

        # ---------------- control / squash handling ----------------
        if code == BRANCH and flags_col[seq] & MISPREDICTED:
            resolve_cycle = complete + mispredict_penalty
            if resolve_cycle > fetch_resume_cycle:
                fetch_resume_cycle = resolve_cycle
            bump("core.branch_mispredicts")
            exposed = complete - fetch_cycle
            if exposed < 0:
                exposed = 0
            wrong_path = fetch_width * exposed
            if wrong_path > _FMC_WRONG_PATH_CAP:
                wrong_path = _FMC_WRONG_PATH_CAP
            wrong_path_estimate += wrong_path
        if violation:
            bump("core.violation_squashes")
            resume = complete + mispredict_penalty + _VIOLATION_EXTRA_PENALTY
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if squash_penalty:
            resume = issue_cycle + squash_penalty
            if resume > fetch_resume_cycle:
                fetch_resume_cycle = resume
        if insertion_stall:
            blocked = issue_cycle + insertion_stall
            if blocked > migration_block_until:
                migration_block_until = blocked

    if cur_epoch_id is not None:
        epoch_commit = cur_last_commit if cur_last_commit >= cur_open else cur_open
        if pool_n == pool_cap:
            pool_buf[pool_i] = epoch_commit
            pool_i += 1
            if pool_i == pool_cap:
                pool_i = 0
        else:
            pool_buf[pool_n] = epoch_commit
            pool_n += 1
        epoch_committed(cur_epoch_id, epoch_commit)
        epoch_live_cycle_sum += epoch_commit - cur_open

    committed = len(trace)
    total_cycles = max(1, last_commit_cycle)
    processor._account_wrong_path(wrong_path_estimate, committed, num_loads, num_stores)
    policy.finalize(total_cycles, committed)
    stats.counter("core.cycles").add(total_cycles)
    stats.counter("core.committed_instructions").add(committed)
    stats.counter("fmc.ll_active_cycles").add(min(ll_active_cycles, total_cycles))
    stats.counter("fmc.epochs_allocated").add(next_epoch_id)

    high_locality_fraction = 1.0 - min(ll_active_cycles, total_cycles) / total_cycles
    mean_allocated_epochs = (
        epoch_live_cycle_sum / ll_active_cycles if ll_active_cycles > 0 else 0.0
    )
    phases.add("drive", perf_counter() - drive_started)

    return CoreResult(
        trace_name=trace.name,
        config_name=processor.name,
        cycles=total_cycles,
        committed_instructions=committed,
        stats=stats.snapshot(),
        high_locality_fraction=high_locality_fraction,
        mean_allocated_epochs=mean_allocated_epochs,
        extra={"epochs_opened": float(next_epoch_id)},
    )


class FastEngine:
    """Optimised columnar drive loop over the reference processor objects."""

    name = "fast"

    def run(self, machine, trace: Trace) -> CoreResult:
        """Simulate ``trace`` on ``machine`` with the optimised loop."""
        try:
            trace.columns()
        except (TraceError, OverflowError):
            # Streams outside the columnar envelope -- hand-built
            # instructions with more than four sources (TraceError) or with
            # fields exceeding the column typecodes' fixed widths, e.g. an
            # access size above 65535 (OverflowError from array.append) --
            # take the reference walk, which is bit-identical by definition.
            return machine.build().run(trace)
        build_started = perf_counter()
        processor = machine.build()
        phases.add("build", perf_counter() - build_started)
        if isinstance(processor, FMCProcessor):
            return run_fmc_fast(processor, trace)
        return run_ooo_fast(processor, trace)

"""The reference engine: the processor models' own per-instruction walk.

This engine is the semantic ground truth of the library.  It contains no
optimisation machinery at all: it builds the processor a
:class:`~repro.sim.configs.MachineConfig` describes and calls its ``run``
method, exactly as every caller did before engines existed.  The ``fast``
engine (:mod:`repro.sim.engine.fast`) is verified bit-identical against this
path by the differential suite (``tests/differential/``).
"""

from __future__ import annotations


class ReferenceEngine:
    """Build the configured processor and let it drive the trace itself."""

    name = "reference"

    def run(self, machine, trace):
        """Simulate ``trace`` with the processor's original ``run`` loop."""
        return machine.build().run(trace)
